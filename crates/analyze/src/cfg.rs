//! Control-flow graph construction over m-operation programs.
//!
//! Instructions are partitioned into basic blocks (maximal straight-line
//! runs); edges follow fall-through and jump targets. Construction is
//! *path-sensitive* for statically decidable branches: a `JumpIf` whose
//! comparison can be folded (both operands immediate, or syntactically
//! identical operands) contributes only its feasible edge. This is what
//! lets the analyzer prove that e.g. a branch guarding an unreachable
//! write can never be taken.

use moc_core::program::{CmpOp, Instr, Operand, Program};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction in the block.
    pub start: usize,
    /// One past the index of the last instruction in the block.
    pub end: usize,
    /// Successor blocks (after branch folding).
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices belonging to this block.
    pub fn instrs(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Control-flow graph of a validated [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks ordered by start index; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Block index containing each instruction.
    pub block_of: Vec<usize>,
    /// Per-block reachability from the entry (after branch folding).
    pub reachable: Vec<bool>,
    /// DFS back edges `(from_block, to_block)` within the reachable
    /// subgraph; non-empty iff the program can loop.
    pub back_edges: Vec<(usize, usize)>,
}

/// Statically decides a `JumpIf`: `Some(taken)` when the branch always
/// goes one way, `None` when both edges are feasible.
pub fn fold_branch(lhs: &Operand, cmp: CmpOp, rhs: &Operand) -> Option<bool> {
    if let (Operand::Imm(a), Operand::Imm(b)) = (lhs, rhs) {
        return Some(cmp.holds(*a, *b));
    }
    if lhs == rhs {
        // `x op x` for any register or argument x.
        return Some(matches!(cmp, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
    }
    None
}

impl Cfg {
    /// Builds the CFG of `program` with feasible-edge branch folding.
    pub fn build(program: &Program) -> Cfg {
        let instrs = program.instrs();
        let n = instrs.len();
        assert!(n > 0, "validated programs are non-empty");

        // Leaders: entry, every jump target, every instruction after a
        // terminator. Leaders are computed without folding so folded-away
        // targets still start their own (unreachable) block.
        let mut is_leader = vec![false; n];
        is_leader[0] = true;
        for (i, ins) in instrs.iter().enumerate() {
            match ins {
                Instr::Jump { target } | Instr::JumpIf { target, .. } => {
                    is_leader[*target] = true;
                    if i + 1 < n {
                        is_leader[i + 1] = true;
                    }
                }
                Instr::Return { .. } if i + 1 < n => is_leader[i + 1] = true,
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for i in 1..=n {
            if i == n || is_leader[i] {
                let b = blocks.len();
                for j in start..i {
                    block_of[j] = b;
                }
                blocks.push(BasicBlock {
                    start,
                    end: i,
                    succs: Vec::new(),
                });
                start = i;
            }
        }

        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let mut succs = Vec::new();
            match &instrs[last] {
                Instr::Return { .. } => {}
                Instr::Jump { target } => succs.push(block_of[*target]),
                Instr::JumpIf {
                    lhs,
                    cmp,
                    rhs,
                    target,
                    ..
                } => match fold_branch(lhs, *cmp, rhs) {
                    Some(true) => succs.push(block_of[*target]),
                    Some(false) => {
                        if last + 1 < n {
                            succs.push(block_of[last + 1]);
                        }
                    }
                    None => {
                        if last + 1 < n {
                            succs.push(block_of[last + 1]);
                        }
                        if !succs.contains(&block_of[*target]) {
                            succs.push(block_of[*target]);
                        }
                    }
                },
                _ => {
                    // Straight-line fall-through. `last + 1 == n` only in
                    // unreachable dead tails (validation rejects reachable
                    // fall-off), which simply get no successor.
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
            }
            blocks[b].succs = succs;
        }

        // Reachability over folded edges.
        let mut reachable = vec![false; blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            stack.extend(blocks[b].succs.iter().copied());
        }

        // Back edges via iterative DFS (grey/black colouring) restricted
        // to the reachable subgraph.
        let mut back_edges = Vec::new();
        let mut colour = vec![0u8; blocks.len()]; // 0 white, 1 grey, 2 black
        let mut dfs: Vec<(usize, usize)> = vec![(0, 0)]; // (block, next succ idx)
        colour[0] = 1;
        while let Some((b, si)) = dfs.last_mut() {
            if let Some(&s) = blocks[*b].succs.get(*si) {
                *si += 1;
                match colour[s] {
                    0 => {
                        colour[s] = 1;
                        dfs.push((s, 0));
                    }
                    1 => back_edges.push((*b, s)),
                    _ => {}
                }
            } else {
                colour[*b] = 2;
                dfs.pop();
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            back_edges,
        }
    }

    /// Per-instruction reachability from the entry.
    pub fn reachable_instrs(&self) -> Vec<bool> {
        let mut r = vec![false; self.block_of.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            if self.reachable[b] {
                for i in block.instrs() {
                    r[i] = true;
                }
            }
        }
        r
    }

    /// Whether every execution terminates without relying on fuel: true
    /// iff the reachable subgraph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.back_edges.is_empty()
    }

    /// Upper bound on instructions executed by any run, when the CFG is
    /// acyclic (`None` if the program can loop). This is the longest
    /// entry-to-exit path measured in instructions — a static fuel bound.
    pub fn max_path_len(&self) -> Option<u64> {
        if !self.is_acyclic() {
            return None;
        }
        // Longest path over the reachable DAG via DFS postorder.
        let mut order = Vec::new();
        let mut state = vec![0u8; self.blocks.len()];
        let mut dfs: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some((b, si)) = dfs.last_mut() {
            if let Some(&s) = self.blocks[*b].succs.get(*si) {
                *si += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    dfs.push((s, 0));
                }
            } else {
                order.push(*b);
                state[*b] = 2;
                dfs.pop();
            }
        }
        let mut dp = vec![0u64; self.blocks.len()];
        for &b in &order {
            let tail = self.blocks[b]
                .succs
                .iter()
                .map(|&s| dp[s])
                .max()
                .unwrap_or(0);
            dp[b] = self.blocks[b].len() as u64 + tail;
        }
        Some(dp[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::ObjectId;
    use moc_core::program::{arg, imm, reg, ProgramBuilder};

    fn dcas() -> Program {
        let x = ObjectId::new(0);
        let y = ObjectId::new(1);
        let mut b = ProgramBuilder::new("dcas");
        let fail = b.fresh_label();
        b.read(x, 0)
            .read(y, 1)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
            .write(x, arg(2))
            .write(y, arg(3))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        b.build().unwrap()
    }

    #[test]
    fn dcas_blocks_and_reachability() {
        let p = dcas();
        let cfg = Cfg::build(&p);
        // Blocks: [0..3), [3..4), [4..7), [7..8).
        assert_eq!(cfg.blocks.len(), 4);
        assert!(cfg.reachable.iter().all(|&r| r));
        assert!(cfg.is_acyclic());
        // Longest path: 3 + 1 + 3 = 7 instructions.
        assert_eq!(cfg.max_path_len(), Some(7));
    }

    #[test]
    fn folded_branch_prunes_edge() {
        // jump_if 0 == 0 always takes the branch; the fall-through block
        // is unreachable.
        let mut b = ProgramBuilder::new("folded");
        let l = b.fresh_label();
        b.jump_if(imm(0), CmpOp::Eq, imm(0), l);
        b.write(ObjectId::new(0), imm(9)).ret(vec![]);
        b.bind(l);
        b.ret(vec![imm(1)]);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let r = cfg.reachable_instrs();
        assert!(r[0] && r[3]);
        assert!(!r[1] && !r[2], "fall-through arm should be pruned");
    }

    #[test]
    fn same_operand_branch_folds() {
        assert_eq!(fold_branch(&reg(3), CmpOp::Eq, &reg(3)), Some(true));
        assert_eq!(fold_branch(&reg(3), CmpOp::Lt, &reg(3)), Some(false));
        assert_eq!(fold_branch(&arg(1), CmpOp::Ge, &arg(1)), Some(true));
        assert_eq!(fold_branch(&reg(0), CmpOp::Eq, &reg(1)), None);
        assert_eq!(fold_branch(&imm(2), CmpOp::Gt, &imm(1)), Some(true));
    }

    #[test]
    fn loop_has_back_edge() {
        let mut b = ProgramBuilder::new("sum5");
        let top = b.fresh_label();
        let done = b.fresh_label();
        b.mov(0, imm(0)).mov(1, imm(1));
        b.bind(top);
        b.jump_if(reg(1), CmpOp::Gt, imm(5), done)
            .add(0, reg(0), reg(1))
            .add(1, reg(1), imm(1))
            .jump(top);
        b.bind(done);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert!(!cfg.is_acyclic());
        assert_eq!(cfg.back_edges.len(), 1);
        assert_eq!(cfg.max_path_len(), None);
    }
}
