//! Simulation harness: hosts protocol replicas on `moc-sim`, drives
//! scripted clients, and emits validated histories plus metrics.
//!
//! Each process is a replica with a co-located client (the paper's model:
//! processes are sequential and manipulate objects through m-operations,
//! alternately issuing an invocation and receiving the response). The
//! client issues the next m-operation of its script only after the previous
//! one responded, optionally after a think-time delay.
//!
//! Invocation and response events are stamped with virtual time, so the
//! resulting [`History`] carries the exact real-time order `~t` needed to
//! check m-linearizability.

use std::collections::VecDeque;
use std::sync::Arc;

use moc_abcast::Outbox;
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::program::Program;
use moc_core::value::Value;
use moc_sim::{Context, NetworkConfig, Node, RunStats, TimerId, World};

use crate::{MOperation, ReplicaMetrics, ReplicaProtocol};

/// One m-operation of a client script.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// The program to invoke.
    pub program: Arc<Program>,
    /// Its arguments.
    pub args: Vec<Value>,
}

impl OpSpec {
    /// Creates an op spec.
    pub fn new(program: Arc<Program>, args: Vec<Value>) -> Self {
        OpSpec { program, args }
    }
}

/// The sequence of m-operations one process will issue.
#[derive(Debug, Clone, Default)]
pub struct ClientScript {
    /// Operations in issue order.
    pub ops: Vec<OpSpec>,
    /// Virtual-time delay before the first invocation (ns).
    pub start_delay_ns: u64,
    /// Think time between a response and the next invocation (ns).
    pub think_ns: u64,
}

impl ClientScript {
    /// A script issuing `ops` back-to-back.
    pub fn new(ops: Vec<OpSpec>) -> Self {
        ClientScript {
            ops,
            start_delay_ns: 1,
            think_ns: 1,
        }
    }

    /// Sets the start delay.
    pub fn starting_at(mut self, ns: u64) -> Self {
        self.start_delay_ns = ns;
        self
    }

    /// Sets the think time.
    pub fn with_think_time(mut self, ns: u64) -> Self {
        self.think_ns = ns;
        self
    }
}

/// Cluster-level configuration for a harness run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Network delay model.
    pub network: NetworkConfig,
    /// Simulator seed (runs are deterministic per seed).
    pub seed: u64,
    /// Safety bound on simulator events.
    pub max_events: u64,
}

impl ClusterConfig {
    /// A config with the default network and a generous event bound.
    pub fn new(num_objects: usize, seed: u64) -> Self {
        ClusterConfig {
            num_objects,
            network: NetworkConfig::default(),
            seed,
            max_events: 20_000_000,
        }
    }

    /// Overrides the network model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }
}

/// The outcome of a harness run: the recorded history plus metrics.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Short name of the protocol that ran.
    pub protocol: &'static str,
    /// The validated execution history (one record per completed
    /// m-operation, with real invocation/response times).
    pub history: History,
    /// Response time of every completed m-operation, by class (ns).
    pub latencies: Vec<(MOpClass, u64)>,
    /// Per-replica message counters.
    pub replica_metrics: Vec<ReplicaMetrics>,
    /// Simulator counters (total messages, events, virtual duration).
    pub sim: RunStats,
    /// The agreed atomic-broadcast delivery order of update m-operations
    /// (the protocol's `~ww` order), identical at every replica.
    pub update_order: Vec<MOpId>,
    /// Each replica's object store at quiescence. Once every broadcast has
    /// been delivered everywhere, all stores must agree (replica
    /// convergence) — asserted by the Theorem 15/20 tests.
    pub final_stores: Vec<crate::store::ReplicaStore>,
}

impl RunReport {
    /// Mean response time over completed m-operations of `class`, in
    /// nanoseconds; `None` if none completed.
    pub fn mean_latency(&self, class: MOpClass) -> Option<f64> {
        let xs: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|&(_, l)| l)
            .collect();
        if xs.is_empty() {
            return None;
        }
        Some(xs.iter().sum::<u64>() as f64 / xs.len() as f64)
    }

    /// The p-th percentile (0..=100) response time for `class`.
    pub fn percentile_latency(&self, class: MOpClass, p: f64) -> Option<u64> {
        let mut xs: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|&(_, l)| l)
            .collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        let rank = ((p / 100.0) * (xs.len() - 1) as f64).round() as usize;
        Some(xs[rank.min(xs.len() - 1)])
    }

    /// Total network messages sent during the run.
    pub fn total_messages(&self) -> u64 {
        self.sim.messages_sent
    }

    /// The relation `~p ∪ ~rf ∪ ~ww` over the recorded history: the base
    /// m-sequential-consistency relation extended with the broadcast order.
    /// By construction it satisfies the WW-constraint, so Theorem 7's
    /// polynomial checker applies to it.
    pub fn ww_relation(&self) -> moc_core::relations::Relation {
        use moc_core::relations::{process_order, reads_from};
        let mut rel = process_order(&self.history).union(&reads_from(&self.history));
        for pair in self.update_order.windows(2) {
            if let (Some(a), Some(b)) = (self.history.idx_of(pair[0]), self.history.idx_of(pair[1]))
            {
                rel.add(a, b);
            }
        }
        rel
    }
}

/// A replica plus its scripted client, hosted as one simulator node.
struct ProtoNode<R: ReplicaProtocol> {
    me: ProcessId,
    n: usize,
    replica: R,
    script: VecDeque<OpSpec>,
    think_ns: u64,
    start_delay_ns: u64,
    next_seq: u32,
    inflight: Option<(MOpId, u64)>,
    records: Vec<MOpRecord>,
    latencies: Vec<(MOpClass, u64)>,
}

impl<R: ReplicaProtocol> ProtoNode<R> {
    fn relay(&mut self, out: &mut Outbox<R::Msg>, ctx: &mut Context<'_, R::Msg>) {
        for (to, m) in out.drain() {
            ctx.send(to, m);
        }
    }

    fn invoke_next(&mut self, ctx: &mut Context<'_, R::Msg>) {
        let Some(spec) = self.script.pop_front() else {
            return;
        };
        let id = MOpId::new(self.me, self.next_seq);
        self.next_seq += 1;
        debug_assert!(self.inflight.is_none(), "processes are sequential");
        self.inflight = Some((id, ctx.now().as_nanos()));
        let mop = MOperation::new(id, spec.program, spec.args);
        let mut out = Outbox::new(self.n);
        self.replica.invoke(mop, &mut out);
        self.relay(&mut out, ctx);
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Context<'_, R::Msg>) {
        for c in self.replica.drain_completions() {
            let (id, invoked_ns) = self
                .inflight
                .take()
                .expect("completion without an inflight m-operation");
            assert_eq!(c.id, id, "completions must match the inflight op");
            let now = ctx.now().as_nanos();
            self.records.push(MOpRecord {
                id,
                invoked_at: EventTime::from_nanos(invoked_ns),
                responded_at: EventTime::from_nanos(now),
                ops: c.ops,
                outputs: c.outputs,
                treated_as: c.treated_as,
                label: c.label,
            });
            self.latencies.push((c.treated_as, now - invoked_ns));
            if !self.script.is_empty() {
                ctx.set_timer(self.think_ns.max(1));
            }
        }
    }
}

impl<R: ReplicaProtocol> Node for ProtoNode<R> {
    type Msg = R::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        if !self.script.is_empty() {
            ctx.set_timer(self.start_delay_ns.max(1));
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new(self.n);
        self.replica.on_message(from, msg, &mut out);
        self.relay(&mut out, ctx);
        self.drain(ctx);
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        self.invoke_next(ctx);
    }
}

/// Runs protocol `R` over the given client scripts (one per process; the
/// cluster size is `scripts.len()`) and returns the recorded history and
/// metrics.
///
/// # Panics
///
/// Panics if the simulation exceeds `config.max_events` (a liveness bug) or
/// if the recorded history fails validation (a safety bug in the replica
/// implementation) — both indicate defects in this crate, not user error.
pub fn run_cluster<R: ReplicaProtocol + 'static>(
    config: &ClusterConfig,
    scripts: Vec<ClientScript>,
) -> RunReport {
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let nodes: Vec<ProtoNode<R>> = scripts
        .into_iter()
        .enumerate()
        .map(|(p, script)| ProtoNode {
            me: ProcessId::new(p as u32),
            n,
            replica: R::new(ProcessId::new(p as u32), n, config.num_objects),
            script: script.ops.into(),
            think_ns: script.think_ns,
            start_delay_ns: script.start_delay_ns,
            next_seq: 0,
            inflight: None,
            records: Vec::new(),
            latencies: Vec::new(),
        })
        .collect();
    let mut world = World::new(nodes, config.network, config.seed);
    let sim = world.run_until_quiescent(config.max_events);
    let nodes = world.into_nodes();

    let mut records = Vec::new();
    let mut latencies = Vec::new();
    let mut replica_metrics = Vec::new();
    let update_order: Vec<MOpId> = nodes[0].replica.delivery_log().to_vec();
    // Agreement is asserted per ordering channel: for single-order
    // broadcasts this is the whole delivery log; a sharded broadcast may
    // interleave commuting channels differently per replica, but every
    // channel's own log must be identical everywhere.
    let reference_channels = nodes[0].replica.channel_logs();
    for node in &nodes {
        assert_eq!(
            node.replica.channel_logs(),
            reference_channels,
            "replicas disagree on a channel's broadcast order"
        );
    }
    let mut final_stores = Vec::new();
    for node in nodes {
        assert!(
            node.script.is_empty() && node.inflight.is_none(),
            "client script did not finish: protocol lost an operation"
        );
        records.extend(node.records);
        latencies.extend(node.latencies);
        replica_metrics.push(node.replica.metrics());
        final_stores.push(node.replica.store().clone());
    }
    let history =
        History::new(config.num_objects, records).expect("protocol produced an invalid history");
    RunReport {
        protocol: R::protocol_name(),
        history,
        latencies,
        replica_metrics,
        sim,
        update_order,
        final_stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MlinOverSequencer, MscOverSequencer};
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_sim::DelayModel;

    fn write_x() -> Arc<Program> {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), moc_core::program::arg(0))
            .ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn read_x() -> Arc<Program> {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    fn inc_x() -> Arc<Program> {
        let mut b = ProgramBuilder::new("inc");
        b.read(ObjectId::new(0), 0)
            .add(0, reg(0), imm(1))
            .write(ObjectId::new(0), reg(0))
            .ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn msc_cluster_runs_and_records() {
        let config = ClusterConfig::new(1, 7);
        let scripts = vec![
            ClientScript::new(vec![
                OpSpec::new(write_x(), vec![5]),
                OpSpec::new(read_x(), vec![]),
            ]),
            ClientScript::new(vec![OpSpec::new(read_x(), vec![])]),
        ];
        let report = run_cluster::<MscOverSequencer>(&config, scripts);
        assert_eq!(report.protocol, "msc");
        assert_eq!(report.history.len(), 3);
        assert_eq!(report.latencies.len(), 3);
        assert!(report.mean_latency(MOpClass::Update).is_some());
        assert!(report.mean_latency(MOpClass::Query).is_some());
        assert!(report.total_messages() > 0);
        // msc queries are local: query latency is (essentially) zero.
        assert_eq!(report.percentile_latency(MOpClass::Query, 100.0), Some(0));
    }

    #[test]
    fn mlin_queries_cost_a_round_trip() {
        let config = ClusterConfig::new(1, 7)
            .with_network(NetworkConfig::with_delay(DelayModel::Fixed(1_000)));
        let scripts = vec![
            ClientScript::new(vec![OpSpec::new(read_x(), vec![])]),
            ClientScript::new(vec![]),
        ];
        let report = run_cluster::<MlinOverSequencer>(&config, scripts);
        let q = report.mean_latency(MOpClass::Query).unwrap();
        assert!(q >= 2_000.0, "round trip over 1000ns links, got {q}");
    }

    #[test]
    fn concurrent_increments_serialize() {
        // 4 processes increment x 5 times each; the final value must be 20
        // on every replica (increments re-execute deterministically in the
        // agreed order, so none is lost).
        let config = ClusterConfig::new(1, 3);
        let scripts = (0..4)
            .map(|_| ClientScript::new(vec![OpSpec::new(inc_x(), vec![]); 5]))
            .collect();
        let report = run_cluster::<MscOverSequencer>(&config, scripts);
        let finals: Vec<i64> = report
            .history
            .records()
            .iter()
            .filter(|r| r.label == "inc")
            .flat_map(|r| r.outputs.clone())
            .collect();
        assert_eq!(finals.len(), 20);
        let max = finals.iter().max().unwrap();
        assert_eq!(*max, 20, "no increment lost");
        // All outputs distinct: each increment saw a distinct state.
        let mut sorted = finals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
    }

    #[test]
    fn determinism_across_runs() {
        let mk = || {
            let config = ClusterConfig::new(2, 99);
            let scripts = vec![
                ClientScript::new(vec![OpSpec::new(inc_x(), vec![]); 3]),
                ClientScript::new(vec![OpSpec::new(read_x(), vec![]); 3]),
            ];
            run_cluster::<MlinOverSequencer>(&config, scripts)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.history.records(), b.history.records());
        assert_eq!(a.latencies, b.latencies);
    }
}
