//! Figure 4: the m-sequential-consistency protocol.
//!
//! Three actions, each local and atomic:
//!
//! * **A1** — on invocation of a (potentially) update m-operation,
//!   atomically broadcast it to all processes.
//! * **A2** — on delivery of an atomic broadcast, apply the m-operation to
//!   the local copy, bumping `ts[x]` for every written `x`; if this replica
//!   issued it, generate the response.
//! * **A3** — on invocation of a query m-operation, apply it to the local
//!   copy immediately and respond.
//!
//! Theorem 15: all executions are m-sequentially consistent. The protocol
//! is an extension of Attiya & Welch's sequentially consistent
//! implementation to operations spanning multiple objects.

use std::collections::VecDeque;

use moc_abcast::{Abcast, Outbox};
use moc_core::ids::ProcessId;
use moc_core::mop::MOpClass;

use crate::store::ReplicaStore;
use crate::{Completion, MOperation, ProtocolMsg, ReplicaMetrics, ReplicaProtocol};

/// One process's replica running the Figure 4 protocol over atomic
/// broadcast implementation `A`.
#[derive(Debug, Clone)]
pub struct MscReplica<A: Abcast<MOperation>> {
    me: ProcessId,
    n: usize,
    store: ReplicaStore,
    abcast: A,
    completions: VecDeque<Completion>,
    delivery_log: Vec<moc_core::ids::MOpId>,
    metrics: ReplicaMetrics,
}

impl<A: Abcast<MOperation>> MscReplica<A> {
    /// Relays buffered abcast sends into the protocol outbox, then applies
    /// any deliveries (action A2).
    fn pump_abcast(
        &mut self,
        ab_out: &mut Outbox<A::Msg>,
        out: &mut Outbox<ProtocolMsg<A::Msg>>,
        class: MOpClass,
    ) {
        for (to, m) in ab_out.drain() {
            match class {
                MOpClass::Update => self.metrics.update_msgs_sent += 1,
                MOpClass::Query => self.metrics.query_msgs_sent += 1,
            }
            out.send(to, ProtocolMsg::Abcast(m));
        }
        for d in self.abcast.drain_delivered() {
            self.delivery_log.push(d.item.id);
            let rec = self.store.apply(&d.item);
            self.metrics.updates_applied += 1;
            if d.item.id.process == self.me {
                self.completions.push_back(Completion {
                    id: d.item.id,
                    outputs: rec.outputs,
                    ops: rec.ops,
                    treated_as: MOpClass::Update,
                    label: d.item.program.name().to_string(),
                });
            }
        }
    }
}

impl<A: Abcast<MOperation>> ReplicaProtocol for MscReplica<A> {
    type Msg = ProtocolMsg<A::Msg>;

    fn new(me: ProcessId, n: usize, num_objects: usize) -> Self {
        MscReplica {
            me,
            n,
            store: ReplicaStore::new(num_objects),
            abcast: A::new(me, n),
            completions: VecDeque::new(),
            delivery_log: Vec::new(),
            metrics: ReplicaMetrics::default(),
        }
    }

    fn protocol_name() -> &'static str {
        "msc"
    }

    fn invoke(&mut self, mop: MOperation, out: &mut Outbox<Self::Msg>) {
        if mop.is_update() {
            // A1: atomically broadcast.
            let mut ab_out = Outbox::new(self.n);
            self.abcast.broadcast(mop, &mut ab_out);
            self.pump_abcast(&mut ab_out, out, MOpClass::Update);
        } else {
            // A3: query runs against the local copy, responding at once.
            let rec = self.store.apply(&mop);
            self.metrics.queries_completed += 1;
            self.completions.push_back(Completion {
                id: mop.id,
                outputs: rec.outputs,
                ops: rec.ops,
                treated_as: MOpClass::Query,
                label: mop.program.name().to_string(),
            });
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            ProtocolMsg::Abcast(am) => {
                let mut ab_out = Outbox::new(self.n);
                self.abcast.on_message(from, am, &mut ab_out);
                self.pump_abcast(&mut ab_out, out, MOpClass::Update);
            }
            other => {
                debug_assert!(
                    false,
                    "msc replica received a non-abcast message: {other:?}"
                );
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    fn store(&self) -> &ReplicaStore {
        &self.store
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.metrics
    }

    fn delivery_log(&self) -> &[moc_core::ids::MOpId] {
        &self.delivery_log
    }

    fn abcast_deadline(&self) -> Option<u64> {
        self.abcast.next_deadline()
    }

    fn on_abcast_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_tick(now_ns, &mut ab_out);
        // Ticks can complete a view change, which can release deliveries.
        self.pump_abcast(&mut ab_out, out, MOpClass::Update);
    }

    fn on_abcast_restart(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_restart(now_ns, &mut ab_out);
        self.pump_abcast(&mut ab_out, out, MOpClass::Update);
    }

    fn set_failover_timeouts(&mut self, base_ns: u64, max_ns: u64) {
        self.abcast.set_failover_timeouts(base_ns, max_ns);
    }

    fn abcast_transcript(&self) -> Vec<String> {
        self.abcast.transcript()
    }

    fn set_shard_plan(&mut self, plan: moc_core::shard::ShardPlan) {
        self.abcast.set_shard_plan(plan);
    }

    fn set_commute_plan(&mut self, plan: moc_core::commute::CommutePlan) {
        self.abcast.set_commute_plan(plan);
    }

    fn commute_fast_applied(&self) -> u64 {
        self.abcast.commute_fast_applied()
    }

    fn set_batching(&mut self, cfg: moc_abcast::BatchConfig) {
        self.abcast.set_batching(cfg);
    }

    fn batch_stats(&self) -> moc_abcast::BatchStats {
        self.abcast.batch_stats()
    }

    fn channel_logs(&self) -> Vec<Vec<moc_core::ids::MOpId>> {
        crate::split_channel_logs(&self.delivery_log, self.abcast.delivery_channels())
    }

    fn private_channel(&self) -> Option<u32> {
        self.abcast.private_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_abcast::SequencerAbcast;
    use moc_core::ids::{MOpId, ObjectId};
    use moc_core::program::{reg, ProgramBuilder};
    use std::sync::Arc;

    type Replica = MscReplica<SequencerAbcast<MOperation>>;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn write_x(val: i64) -> MOperation {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), moc_core::program::imm(val))
            .ret(vec![]);
        MOperation::new(MOpId::new(pid(1), 0), Arc::new(b.build().unwrap()), vec![])
    }

    fn read_x(p: u32, seq: u32) -> MOperation {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        MOperation::new(
            MOpId::new(pid(p), seq),
            Arc::new(b.build().unwrap()),
            vec![],
        )
    }

    /// Queries complete synchronously against the local copy (A3), even
    /// before any update arrives — the stale-read behaviour that makes
    /// this protocol m-sequentially consistent but not m-linearizable.
    #[test]
    fn queries_are_local_and_immediate() {
        let mut r = Replica::new(pid(1), 2, 1);
        let mut out = Outbox::new(2);
        r.invoke(read_x(1, 0), &mut out);
        assert!(out.is_empty(), "no messages for a query");
        let done = r.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outputs, vec![0]);
        assert_eq!(done[0].treated_as, MOpClass::Query);
        assert_eq!(r.metrics().queries_completed, 1);
        assert_eq!(r.metrics().query_msgs_sent, 0);
    }

    /// Updates respond only once their broadcast is delivered back (A2).
    #[test]
    fn updates_complete_at_own_delivery() {
        let mut r = Replica::new(pid(1), 2, 1);
        let mut out = Outbox::new(2);
        r.invoke(write_x(5), &mut out);
        // Submit went to the sequencer; nothing completed yet.
        assert_eq!(out.len(), 1);
        assert!(r.drain_completions().is_empty());

        // Simulate the sequencer (process 0) ordering the submission.
        let mut seq = Replica::new(pid(0), 2, 1);
        let submissions = out.drain();
        let mut seq_out = Outbox::new(2);
        let ProtocolMsg::Abcast(am) = submissions[0].1.clone() else {
            panic!("expected abcast submit");
        };
        seq.on_message(pid(1), ProtocolMsg::Abcast(am), &mut seq_out);
        let ordered = seq_out.drain();
        assert_eq!(ordered.len(), 2, "Ordered fans out to both");

        // Deliver the ordered copy back to P1: now it completes.
        let mut out2 = Outbox::new(2);
        for (to, m) in ordered {
            if to == pid(1) {
                r.on_message(pid(0), m, &mut out2);
            }
        }
        let done = r.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].treated_as, MOpClass::Update);
        assert_eq!(r.store().get(ObjectId::new(0)).value, 5);
        assert_eq!(r.store().ts().as_slice(), &[1]);
        assert_eq!(r.metrics().updates_applied, 1);
    }
}
