//! # moc-protocol
//!
//! The consistency protocols of Mittal & Garg (1998), Section 5, as pure
//! state machines over an [`moc_abcast::Abcast`] substrate:
//!
//! * [`MscReplica`] — Figure 4: m-sequential consistency. Update
//!   m-operations are atomically broadcast and applied at delivery; query
//!   m-operations read the local copy immediately. Theorem 15: every
//!   execution is m-sequentially consistent.
//! * [`MlinReplica`] — Figure 6: m-linearizability in a fully
//!   *asynchronous* system (no clock synchrony, no delay bound — the
//!   improvement over Attiya–Welch the paper emphasizes). Updates as in
//!   Figure 4; a query asks every process for its copy and timestamp,
//!   keeps the maximal-timestamp snapshot, and reads from it once all `n`
//!   responses arrived. Theorem 20: every execution is m-linearizable.
//! * [`AggregateReplica`] — the baseline the introduction argues against:
//!   model multi-methods by one aggregate object, i.e. route *every*
//!   m-operation (queries included) through atomic broadcast. Correct but
//!   sacrifices the locality and concurrency of queries.
//!
//! Every replica keeps a full local copy of the shared objects
//! ([`store::ReplicaStore`]) together with the per-object version vector
//! `ts` the correctness proofs revolve around (P 5.3–P 5.8).
//!
//! [`harness`] hosts any of these replicas on the deterministic simulator,
//! co-locating a scripted client with each replica, and emits a validated
//! [`moc_core::History`] plus latency and message metrics — the raw
//! material for the Theorem 15/20 validation tests and the benchmark
//! suite.

use std::fmt;
use std::sync::Arc;

use moc_core::ids::{MOpId, ProcessId, QueryId};
use moc_core::mop::MOpClass;
use moc_core::op::CompletedOp;
use moc_core::program::Program;
use moc_core::value::{Value, Versioned};
use moc_core::vv::VersionVector;

pub mod aggregate;
pub mod chaos;
pub mod harness;
pub mod mlin;
pub mod msc;
pub mod store;

pub use aggregate::AggregateReplica;
pub use chaos::{run_chaos_cluster, ChaosAnomalies, ChaosConfig, ChaosRunReport};
pub use harness::{run_cluster, ClientScript, ClusterConfig, OpSpec, RunReport};
pub use mlin::{MlinReplica, QueryScope};
pub use msc::MscReplica;
pub use store::{ExecRecord, ReplicaStore};

use moc_abcast::Outbox;

/// An invoked m-operation: the deterministic program, its arguments, and
/// the identity assigned by the issuing process.
///
/// This is the unit the protocols atomically broadcast; every replica
/// re-executes the program against its own copy, deterministically
/// obtaining the same reads and writes.
#[derive(Debug, Clone)]
pub struct MOperation {
    /// Identity: issuing process + per-process sequence number.
    pub id: MOpId,
    /// The deterministic procedure to run.
    pub program: Arc<Program>,
    /// Invocation arguments (`arg` of `α(arg, res)`).
    pub args: Vec<Value>,
    /// Cached protocol classification, decided at construction.
    class: MOpClass,
}

/// Programs above this size skip the refined dataflow classification and
/// fall back to the paper's syntactic rule (the analysis is linear-ish,
/// but there is no point scanning a pathological instruction stream per
/// invocation).
const ANALYZE_LIMIT: usize = 4096;

/// Classifies a program for protocol purposes.
///
/// The paper's conservative rule treats an m-operation as an update iff
/// it *potentially* writes (Section 5). The analyzer refines this: a
/// write that control flow provably cannot reach does not force the
/// update path, so e.g. a "write guarded by a constant-false branch"
/// program runs as a local query. The refinement is sound — the refined
/// `may_write` still over-approximates every dynamic write set — and for
/// oversized programs we conservatively fall back to the syntactic rule.
fn classify(program: &Program) -> MOpClass {
    let update = if program.instrs().len() > ANALYZE_LIMIT {
        program.is_potential_update()
    } else {
        moc_analyze::analyze_program(program).summary.is_update()
    };
    if update {
        MOpClass::Update
    } else {
        MOpClass::Query
    }
}

impl MOperation {
    /// Creates an m-operation, classifying its program (see [`MOperation::class`]).
    pub fn new(id: MOpId, program: Arc<Program>, args: Vec<Value>) -> Self {
        let class = classify(&program);
        MOperation {
            id,
            program,
            args,
            class,
        }
    }

    /// Whether the protocols must route this m-operation through atomic
    /// broadcast. Refined from the paper's syntactic potential-write rule
    /// by reachability analysis; still an over-approximation of the
    /// dynamic write set, so the Section 5 safety arguments carry over.
    pub fn is_update(&self) -> bool {
        self.class == MOpClass::Update
    }

    /// The protocol class this m-operation is handled as.
    pub fn class(&self) -> MOpClass {
        self.class
    }
}

impl moc_core::shard::Footprinted for MOperation {
    /// The syntactic object footprint used for shard routing. This
    /// over-approximates the dynamic footprint, so routing stays sound:
    /// an object the refined analysis would exclude can only push the
    /// m-operation toward the conservative global channel.
    fn footprint(&self) -> Vec<moc_core::ids::ObjectId> {
        self.program.referenced_objects().into_iter().collect()
    }

    /// The syntactic may-write set. Tighter than the default (the full
    /// footprint) yet still a sound over-approximation of what any
    /// execution can write, so a commute certificate's delivery plan may
    /// compare it against claimed shard footprints without re-running
    /// the refinement analysis at delivery time.
    fn write_footprint(&self) -> Vec<moc_core::ids::ObjectId> {
        self.program.potential_writes().into_iter().collect()
    }
}

impl fmt::Display for MOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}{:?}", self.id, self.program.name(), self.args)
    }
}

/// Wire messages exchanged by the protocol replicas.
#[derive(Debug, Clone)]
pub enum ProtocolMsg<A> {
    /// A message of the underlying atomic broadcast (actions A1/A2).
    Abcast(A),
    /// "query" (Figure 6, action A3): the sender asks for a copy of the
    /// shared objects and their timestamps.
    Query {
        /// Identifies the query round at the issuing process.
        qid: QueryId,
        /// `None` asks for the full object array (the Figure 6 pseudocode);
        /// `Some(objs)` asks only for the listed objects — the end-of-
        /// Section-5.2 optimization enabled by [`QueryScope::Relevant`].
        objects: Option<Vec<moc_core::ids::ObjectId>>,
    },
    /// "query response" (Figure 6, action A4): a copy of (a projection of)
    /// the responder's objects plus its `myts`.
    QueryResponse {
        /// The query round being answered.
        qid: QueryId,
        /// Object states; the full array, or only the objects the query
        /// references under [`QueryScope::Relevant`].
        state: Vec<(moc_core::ids::ObjectId, Versioned)>,
        /// The responder's version vector at answer time.
        ts: VersionVector,
    },
}

/// A finished m-operation surfaced by a replica to its co-located client.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The m-operation that completed.
    pub id: MOpId,
    /// Values returned by the program.
    pub outputs: Vec<Value>,
    /// The completed operations, with read provenance, as executed at the
    /// issuing replica.
    pub ops: Vec<CompletedOp>,
    /// How the protocol classified the m-operation.
    pub treated_as: MOpClass,
    /// The program name, used as the history label.
    pub label: String,
}

/// Per-replica message-count metrics, split by operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Messages this replica sent on behalf of update m-operations
    /// (including abcast internals it initiated).
    pub update_msgs_sent: u64,
    /// Messages sent on behalf of query m-operations.
    pub query_msgs_sent: u64,
    /// Update m-operations applied to the local store.
    pub updates_applied: u64,
    /// Query m-operations completed locally.
    pub queries_completed: u64,
    /// Object values shipped in query responses (payload size proxy for
    /// the Full-vs-Relevant comparison of Section 5.2's closing remark).
    pub query_values_sent: u64,
}

/// A consistency-protocol replica: one per process, co-located with the
/// client that issues that process's m-operations.
///
/// Replicas are pure state machines: [`ReplicaProtocol::invoke`] and
/// [`ReplicaProtocol::on_message`] buffer sends in an [`Outbox`] and
/// surface finished operations via [`ReplicaProtocol::drain_completions`].
pub trait ReplicaProtocol {
    /// Wire message type.
    type Msg: Clone + fmt::Debug;

    /// Creates the replica for process `me` of `n`, over `num_objects`
    /// shared objects.
    fn new(me: ProcessId, n: usize, num_objects: usize) -> Self;

    /// A short name for reports ("msc", "mlin", "aggregate").
    fn protocol_name() -> &'static str;

    /// The co-located client invokes `mop` (the invocation event).
    fn invoke(&mut self, mop: MOperation, out: &mut Outbox<Self::Msg>);

    /// A protocol message arrives.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Drains m-operations that completed since the last call; the harness
    /// stamps their response events.
    fn drain_completions(&mut self) -> Vec<Completion>;

    /// The local object store (for invariant assertions in tests).
    fn store(&self) -> &ReplicaStore;

    /// Message-count metrics.
    fn metrics(&self) -> ReplicaMetrics;

    /// The m-operations this replica has applied via atomic broadcast, in
    /// delivery order — the protocol's `~ww` order. Atomic broadcast
    /// guarantees all replicas report the same log (asserted by the
    /// harness).
    fn delivery_log(&self) -> &[MOpId];

    /// Earliest absolute time (ns) the underlying broadcast wants a tick
    /// (crash-suspicion deadlines), or `None`. Static broadcasts never
    /// request ticks.
    fn abcast_deadline(&self) -> Option<u64> {
        None
    }

    /// Advances the broadcast's clock and fires its expired deadlines
    /// (e.g. sequencer-failover suspicion). Harmless when called early.
    fn on_abcast_tick(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {}

    /// The hosting process restarted after a crash; forwarded to the
    /// broadcast so failover protocols can react.
    fn on_abcast_restart(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {}

    /// Overrides the broadcast's failover timeouts (suspicion base and
    /// cap, ns). No-op for broadcasts without failover machinery.
    fn set_failover_timeouts(&mut self, _base_ns: u64, _max_ns: u64) {}

    /// The broadcast's view-change transcript (empty for static
    /// broadcasts); deterministic, for replay comparison and reports.
    fn abcast_transcript(&self) -> Vec<String> {
        Vec::new()
    }

    /// Installs a certified shard partition on the underlying broadcast.
    /// Only conflict-sharded broadcasts react; the default ignores it.
    fn set_shard_plan(&mut self, _plan: moc_core::shard::ShardPlan) {}

    /// Installs a commute certificate's delivery plan on the underlying
    /// broadcast, unlocking its out-of-order fast paths. Only broadcasts
    /// with such fast paths react; the default ignores it.
    fn set_commute_plan(&mut self, _plan: moc_core::commute::CommutePlan) {}

    /// Deliveries the underlying broadcast applied through a commute
    /// fast path (0 for broadcasts without one).
    fn commute_fast_applied(&self) -> u64 {
        0
    }

    /// Installs a group-commit batching configuration on the underlying
    /// broadcast. Must be called before any traffic; broadcasts without
    /// batched stamping ignore it.
    fn set_batching(&mut self, _cfg: moc_abcast::BatchConfig) {}

    /// Group-commit counters from the underlying broadcast (zeroed for
    /// broadcasts without batched stamping).
    fn batch_stats(&self) -> moc_abcast::BatchStats {
        moc_abcast::BatchStats::default()
    }

    /// The delivery log split by ordering channel, trailing empty
    /// channels trimmed. Single-order protocols report one channel (the
    /// whole log); sharded protocols report one log per channel. Within
    /// a channel the log is an agreed total order, so the harness
    /// compares replicas per channel, not on the merged log.
    fn channel_logs(&self) -> Vec<Vec<MOpId>> {
        vec![self.delivery_log().to_vec()]
    }

    /// The index of the underlying broadcast's replica-private read-only
    /// fast-path channel, when one is armed (see
    /// [`moc_abcast::Abcast::private_channel`]). Harnesses must exclude
    /// this channel from cross-replica agreement checks and instead
    /// verify each entry is locally issued and write-free.
    fn private_channel(&self) -> Option<u32> {
        None
    }
}

/// Splits a merged delivery log by per-delivery channel tags (the shape
/// [`moc_abcast::Abcast::delivery_channels`] reports), trimming trailing
/// empty channels. `None` tags mean a single global channel.
pub(crate) fn split_channel_logs(log: &[MOpId], channels: Option<Vec<u32>>) -> Vec<Vec<MOpId>> {
    match channels {
        None => vec![log.to_vec()],
        Some(channels) => {
            debug_assert_eq!(channels.len(), log.len());
            let mut logs: Vec<Vec<MOpId>> = Vec::new();
            for (id, c) in log.iter().zip(channels) {
                let c = c as usize;
                if logs.len() <= c {
                    logs.resize(c + 1, Vec::new());
                }
                logs[c].push(*id);
            }
            while logs.last().is_some_and(|l| l.is_empty()) {
                logs.pop();
            }
            logs
        }
    }
}

/// Convenience alias: Figure 4 over the fixed-sequencer broadcast.
pub type MscOverSequencer = MscReplica<moc_abcast::SequencerAbcast<MOperation>>;
/// Convenience alias: Figure 4 over ISIS broadcast.
pub type MscOverIsis = MscReplica<moc_abcast::IsisAbcast<MOperation>>;
/// Convenience alias: Figure 6 over the fixed-sequencer broadcast.
pub type MlinOverSequencer = MlinReplica<moc_abcast::SequencerAbcast<MOperation>>;
/// Convenience alias: Figure 6 over ISIS broadcast.
pub type MlinOverIsis = MlinReplica<moc_abcast::IsisAbcast<MOperation>>;
/// Convenience alias: Figure 6 over the sequencer with the relevant-objects
/// query optimization enabled.
pub type MlinRelevantOverSequencer = mlin::MlinRelevant<moc_abcast::SequencerAbcast<MOperation>>;
/// Convenience alias: the aggregate-object baseline over the sequencer.
pub type AggregateOverSequencer = AggregateReplica<moc_abcast::SequencerAbcast<MOperation>>;
/// Convenience alias: the aggregate baseline over the conflict-sharded
/// broadcast. With a commute plan installed its broadcast queries take
/// the replica-private read-only fast path — the live exercise of the
/// harness's private-channel verification.
pub type AggregateOverSharded = AggregateReplica<moc_abcast::ShardedAbcast<MOperation>>;
/// Convenience alias: Figure 4 over the conflict-sharded broadcast, which
/// routes single-shard updates through shard-local sequencers (install a
/// certified partition with [`ReplicaProtocol::set_shard_plan`]).
pub type MscOverSharded = MscReplica<moc_abcast::ShardedAbcast<MOperation>>;
/// Convenience alias: Figure 4 over the view-based failover broadcast,
/// which survives sequencer (leader) crashes.
pub type MscOverView = MscReplica<moc_abcast::ViewAbcast<MOperation>>;
/// Convenience alias: Figure 6 over the view-based failover broadcast.
pub type MlinOverView = MlinReplica<moc_abcast::ViewAbcast<MOperation>>;

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::ProgramBuilder;

    #[test]
    fn unreachable_write_is_refined_to_query() {
        // Syntactically this "potentially writes"; the analyzer proves
        // the write unreachable, so the protocol runs it as a query.
        let mut b = ProgramBuilder::new("maybe-write");
        let skip = b.fresh_label();
        b.jump(skip); // the write below is unreachable
        b.write(moc_core::ids::ObjectId::new(0), moc_core::program::imm(1));
        b.bind(skip);
        b.ret(vec![]);
        let p = Arc::new(b.build().unwrap());
        assert!(p.is_potential_update(), "syntactic rule says update");
        let mop = MOperation::new(MOpId::new(ProcessId::new(0), 0), p, vec![]);
        assert!(!mop.is_update(), "refined rule says query");
        assert_eq!(mop.class(), MOpClass::Query);
    }

    #[test]
    fn reachable_conditional_write_stays_update() {
        // A failed-CAS-style branch may skip the write dynamically, but
        // the write is statically reachable: still an update.
        use moc_core::program::{arg, imm, reg, CmpOp};
        let x = moc_core::ids::ObjectId::new(0);
        let mut b = ProgramBuilder::new("cas");
        let fail = b.fresh_label();
        b.read(x, 0)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .write(x, arg(1))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        let mop = MOperation::new(
            MOpId::new(ProcessId::new(0), 0),
            Arc::new(b.build().unwrap()),
            vec![0, 1],
        );
        assert!(mop.is_update());
    }

    #[test]
    fn moperation_display() {
        let mut b = ProgramBuilder::new("noop");
        b.ret(vec![]);
        let mop = MOperation::new(
            MOpId::new(ProcessId::new(1), 2),
            Arc::new(b.build().unwrap()),
            vec![3],
        );
        assert_eq!(mop.to_string(), "P1#2:noop[3]");
    }
}
