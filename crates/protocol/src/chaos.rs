//! Chaos harness: hosts protocol replicas on the fault-injecting
//! simulator, with the [`moc_abcast::ReliableLink`] sublayer between the
//! replicas and the wire.
//!
//! This is [`crate::harness`] hardened for hostile networks. The stack is
//!
//! ```text
//!   client script  →  replica protocol (msc / mlin / aggregate)
//!                  →  reliable link (seq/ack/retransmit/dedup/rejoin)
//!                  →  moc-sim network with a FaultPlan (drop/dup/
//!                     partition/crash)
//! ```
//!
//! The link re-establishes the paper's reliable-reordering-channel
//! contract, so the Theorem 15/20 guarantees must survive any
//! *recoverable* fault plan (all partitions heal, all crashes restart,
//! drop probability < 1): the recorded history must still check out as
//! m-sequentially consistent / m-linearizable. The chaos conformance
//! suite sweeps seeds × plans and verifies exactly that, auditing every
//! certificate independently.
//!
//! Unlike the fair-weather harness, nothing here panics on protocol
//! misbehavior: a sabotaged link ([`moc_abcast::LinkConfig::sabotaged`])
//! is *expected* to corrupt executions, and the interesting output is the
//! anomaly tally plus a history the checker can refute. Orphaned
//! completions, unfinished scripts, delivery-log divergence and
//! non-quiescence are all recorded in [`ChaosAnomalies`] instead of
//! tripping asserts.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

pub use moc_abcast::{LinkConfig, LinkStats};
use moc_abcast::{LinkMsg, Outbox, ReliableLink};
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_monitor::OnlineMonitor;
pub use moc_monitor::{MonitorConfig, MonitorRunSummary};
use moc_sim::{Context, FaultPlan, NetworkConfig, Node, RunStats, TimerId, World};

use crate::harness::{ClientScript, OpSpec};
use crate::{MOperation, ReplicaMetrics, ReplicaProtocol};

/// Configuration of a chaos run: the cluster, the fault plan, and the
/// link-layer tuning.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Network delay model.
    pub network: NetworkConfig,
    /// The fault schedule (deterministic per `(seed, faults)`).
    pub faults: FaultPlan,
    /// Reliable-link tuning (or [`LinkConfig::sabotaged`]).
    pub link: LinkConfig,
    /// Simulator seed.
    pub seed: u64,
    /// Event budget; exceeding it sets [`ChaosAnomalies::stalled`] rather
    /// than panicking (a plan that never lets the run quiesce is data,
    /// not a crash).
    pub max_events: u64,
    /// Failover suspicion timeouts `(base_ns, max_ns)` applied to every
    /// replica's broadcast before the run, if set. Ignored by broadcasts
    /// without failover (the fixed sequencer).
    pub failover_timeouts: Option<(u64, u64)>,
    /// A certified shard partition installed on every replica's broadcast
    /// before the run, if set. Ignored by single-order broadcasts.
    pub shard_plan: Option<moc_core::shard::ShardPlan>,
    /// A commute certificate's delivery plan installed on every replica's
    /// broadcast before the run, if set. Ignored by broadcasts without
    /// commutativity fast paths.
    pub commute_plan: Option<moc_core::commute::CommutePlan>,
    /// A group-commit batching configuration installed on every replica's
    /// broadcast before the run, if set. Ignored by broadcasts without
    /// batched stamping.
    pub batching: Option<moc_abcast::BatchConfig>,
    /// When set, an [`OnlineMonitor`] sentinel rides along: every
    /// invocation and completion is streamed into it as it happens (in
    /// simulated time), and the run report carries the rolling
    /// certificates, verdict timeline and any latched violation.
    pub monitor: Option<MonitorConfig>,
}

impl ChaosConfig {
    /// A config with default network, benign faults and default link.
    pub fn new(num_objects: usize, seed: u64) -> Self {
        ChaosConfig {
            num_objects,
            network: NetworkConfig::default(),
            faults: FaultPlan::default(),
            link: LinkConfig::default(),
            seed,
            max_events: 20_000_000,
            failover_timeouts: None,
            shard_plan: None,
            commute_plan: None,
            batching: None,
            monitor: None,
        }
    }

    /// Overrides the network model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Installs a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the link configuration.
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Overrides the event budget. Negative controls that crash the fixed
    /// sequencer *expect* a stall; a small budget keeps them fast.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets the failover suspicion timeouts (base and cap of the
    /// exponential backoff) applied to every replica's broadcast.
    pub fn with_failover_timeouts(mut self, base_ns: u64, max_ns: u64) -> Self {
        self.failover_timeouts = Some((base_ns, max_ns));
        self
    }

    /// Installs a shard partition on every replica's broadcast (see
    /// [`crate::ReplicaProtocol::set_shard_plan`]).
    pub fn with_shard_plan(mut self, plan: moc_core::shard::ShardPlan) -> Self {
        self.shard_plan = Some(plan);
        self
    }

    /// Installs a commute certificate's delivery plan on every replica's
    /// broadcast (see [`crate::ReplicaProtocol::set_commute_plan`]).
    pub fn with_commute_plan(mut self, plan: moc_core::commute::CommutePlan) -> Self {
        self.commute_plan = Some(plan);
        self
    }

    /// Installs a group-commit batching configuration on every replica's
    /// broadcast (see [`crate::ReplicaProtocol::set_batching`]).
    pub fn with_batching(mut self, cfg: moc_abcast::BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Attaches an online consistency sentinel to the run (see
    /// [`ChaosRunReport::monitor`]).
    pub fn with_monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = Some(monitor);
        self
    }
}

/// Irregularities observed during a chaos run. All zero/false on a
/// healthy stack with a recoverable plan; a sabotaged link is expected to
/// light these up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosAnomalies {
    /// Completions that did not match the client's inflight m-operation
    /// (e.g. double application of a duplicated broadcast frame).
    pub orphan_completions: u64,
    /// Scripted m-operations that never finished (still queued or
    /// inflight at the end of the run).
    pub unfinished_ops: u64,
    /// Replicas disagreed on the atomic-broadcast delivery order (for
    /// sharded broadcasts: on some channel's order).
    pub delivery_divergence: bool,
    /// Replica object stores did not converge at the end of the run. On
    /// a quiescent run with every update delivered everywhere, stores
    /// must agree; divergence is how a *mis-sharded* partition (two
    /// conflicting writers routed to different shard channels) surfaces
    /// even when every individual channel's order is agreed.
    pub store_divergence: bool,
    /// Entries on a replica-private read-only fast-path channel that
    /// violated its contract: issued by another process, never completed
    /// at the owning replica, or — the dangerous case — containing a
    /// write that bypassed the agreed order. The private channel is
    /// excluded from [`ChaosAnomalies::delivery_divergence`] (its
    /// contents legitimately differ per replica), so this counter is
    /// what keeps a misbehaving commute fast path from slipping past
    /// the harness.
    pub fast_path_violations: u64,
    /// The run exhausted its event budget before quiescing.
    pub stalled: bool,
}

impl ChaosAnomalies {
    /// Whether the run completed with no irregularities.
    pub fn is_clean(&self) -> bool {
        *self == ChaosAnomalies::default()
    }
}

/// The outcome of a chaos run: the (attempted) history plus metrics and
/// the anomaly tally.
#[derive(Debug, Clone)]
pub struct ChaosRunReport {
    /// Short name of the protocol that ran.
    pub protocol: &'static str,
    /// The recorded history, or the validation error if the run produced
    /// structurally invalid records (possible — and itself evidence —
    /// under a sabotaged link).
    pub history: Result<History, String>,
    /// Response time of every completed m-operation, by class (ns).
    pub latencies: Vec<(MOpClass, u64)>,
    /// Per-replica protocol message counters.
    pub replica_metrics: Vec<ReplicaMetrics>,
    /// Per-replica link counters (retransmissions, dedup discards, …).
    pub link_stats: Vec<LinkStats>,
    /// Simulator counters, including fault counters (drops, duplicates,
    /// crashes).
    pub sim: RunStats,
    /// Replica 0's atomic-broadcast delivery order.
    pub update_order: Vec<MOpId>,
    /// Replica 0's delivery order split by ordering channel (trailing
    /// empty channels trimmed; see
    /// [`crate::ReplicaProtocol::channel_logs`]). One entry — the whole
    /// log — for single-order broadcasts.
    pub channel_logs: Vec<Vec<MOpId>>,
    /// Per-replica logs of the replica-private read-only fast-path
    /// channel (empty when no broadcast arms one). These legitimately
    /// differ across replicas; the harness verifies each entry's
    /// contract instead of comparing them (see
    /// [`ChaosAnomalies::fast_path_violations`]).
    pub private_fast_logs: Vec<Vec<MOpId>>,
    /// Irregularities observed during the run.
    pub anomalies: ChaosAnomalies,
    /// Per-replica broadcast transcripts (view changes, failover events).
    /// Empty vectors for static broadcasts; deterministic per seed, so
    /// replays must produce identical transcripts.
    pub view_transcripts: Vec<Vec<String>>,
    /// Per-replica count of deliveries the broadcast applied through a
    /// commute fast path (all zero without a commute plan installed).
    pub commute_fast_applied: Vec<u64>,
    /// Per-replica group-commit counters from the broadcast (all zero
    /// without batching installed).
    pub batch_stats: Vec<moc_abcast::BatchStats>,
    /// The online sentinel's run summary — rolling certificates, verdict
    /// timeline, and any latched violation with its detection latency —
    /// when [`ChaosConfig::monitor`] was set. `None` otherwise.
    pub monitor: Option<MonitorRunSummary>,
}

impl ChaosRunReport {
    /// The history fingerprint (replay identity), when the history is
    /// valid.
    pub fn fingerprint(&self) -> Option<u64> {
        self.history.as_ref().ok().map(moc_core::codec::fingerprint)
    }

    /// The p-th percentile (0..=100) response time for `class`.
    pub fn percentile_latency(&self, class: MOpClass, p: f64) -> Option<u64> {
        let mut xs: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|&(_, l)| l)
            .collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        let rank = ((p / 100.0) * (xs.len() - 1) as f64).round() as usize;
        Some(xs[rank.min(xs.len() - 1)])
    }

    /// Aggregated group-commit counters across all replicas.
    pub fn total_batch_stats(&self) -> moc_abcast::BatchStats {
        let mut t = moc_abcast::BatchStats::default();
        for s in &self.batch_stats {
            t.merge(*s);
        }
        t
    }

    /// Aggregated link counters across all replicas.
    pub fn total_link_stats(&self) -> LinkStats {
        let mut t = LinkStats::default();
        for s in &self.link_stats {
            t.data_sent += s.data_sent;
            t.data_received += s.data_received;
            t.delivered += s.delivered;
            t.duplicates_discarded += s.duplicates_discarded;
            t.retransmissions += s.retransmissions;
            t.acks_sent += s.acks_sent;
            t.acks_received += s.acks_received;
            t.rejoins += s.rejoins;
        }
        t
    }

    /// The relation `~p ∪ ~rf ∪ ~ww` over the recorded history (see
    /// [`crate::harness::RunReport::ww_relation`]). `None` when the
    /// history is invalid.
    pub fn ww_relation(&self) -> Option<moc_core::relations::Relation> {
        use moc_core::relations::{process_order, reads_from};
        let h = self.history.as_ref().ok()?;
        let mut rel = process_order(h).union(&reads_from(h));
        for pair in self.update_order.windows(2) {
            if let (Some(a), Some(b)) = (h.idx_of(pair[0]), h.idx_of(pair[1])) {
                rel.add(a, b);
            }
        }
        Some(rel)
    }
}

/// A replica + scripted client + reliable-link endpoint, hosted as one
/// fault-tolerant simulator node.
struct ChaosNode<R: ReplicaProtocol> {
    me: ProcessId,
    n: usize,
    replica: R,
    link: ReliableLink<R::Msg>,
    script: VecDeque<OpSpec>,
    think_ns: u64,
    start_delay_ns: u64,
    next_seq: u32,
    inflight: Option<(MOpId, u64)>,
    records: Vec<MOpRecord>,
    latencies: Vec<(MOpClass, u64)>,
    /// The currently armed think timer; any other timer is a link tick.
    think_timer: Option<TimerId>,
    /// The earliest link deadline a tick timer is armed for.
    tick_deadline: Option<u64>,
    orphan_completions: u64,
    /// The run-wide online sentinel, shared by every node (the simulator
    /// is single-threaded, so a `Rc<RefCell<..>>` suffices).
    monitor: Option<Rc<RefCell<OnlineMonitor>>>,
}

impl<R: ReplicaProtocol> ChaosNode<R> {
    /// Frames the replica's outbox through the link and hands the wire
    /// traffic to the simulator.
    fn relay(&mut self, out: &mut Outbox<R::Msg>, ctx: &mut Context<'_, LinkMsg<R::Msg>>) {
        let now = ctx.now().as_nanos();
        let mut wire = Vec::new();
        for (to, m) in out.drain() {
            self.link.send(to, m, now, &mut wire);
        }
        for (to, f) in wire {
            ctx.send(to, f);
        }
    }

    /// Arms a tick timer for the earliest pending deadline — link
    /// retransmission or broadcast failover suspicion, whichever comes
    /// first — unless one at least as early is already armed. Superseded
    /// timers still fire and run a (harmless, idempotent) early tick.
    fn arm_tick(&mut self, ctx: &mut Context<'_, LinkMsg<R::Msg>>) {
        let d = match (self.link.next_deadline(), self.replica.abcast_deadline()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return,
        };
        if self.tick_deadline.is_none_or(|armed| armed > d) {
            let delay = d.saturating_sub(ctx.now().as_nanos()).max(1);
            ctx.set_timer(delay);
            self.tick_deadline = Some(d);
        }
    }

    fn invoke_next(&mut self, ctx: &mut Context<'_, LinkMsg<R::Msg>>) {
        if self.inflight.is_some() {
            // A stale think timer (e.g. re-armed across a crash window):
            // the previous m-operation is still being recovered.
            return;
        }
        let Some(spec) = self.script.pop_front() else {
            return;
        };
        let id = MOpId::new(self.me, self.next_seq);
        self.next_seq += 1;
        self.inflight = Some((id, ctx.now().as_nanos()));
        if let Some(m) = &self.monitor {
            m.borrow_mut().on_invoke(id, ctx.now().as_nanos());
        }
        let mop = MOperation::new(id, spec.program, spec.args);
        let mut out = Outbox::new(self.n);
        self.replica.invoke(mop, &mut out);
        self.relay(&mut out, ctx);
        self.drain(ctx);
        self.arm_tick(ctx);
    }

    fn drain(&mut self, ctx: &mut Context<'_, LinkMsg<R::Msg>>) {
        for c in self.replica.drain_completions() {
            match self.inflight {
                Some((id, invoked_ns)) if c.id == id => {
                    self.inflight = None;
                    let now = ctx.now().as_nanos();
                    let record = MOpRecord {
                        id,
                        invoked_at: EventTime::from_nanos(invoked_ns),
                        responded_at: EventTime::from_nanos(now),
                        ops: c.ops,
                        outputs: c.outputs,
                        treated_as: c.treated_as,
                        label: c.label,
                    };
                    if let Some(m) = &self.monitor {
                        m.borrow_mut().on_complete(record.clone(), now);
                    }
                    self.latencies.push((record.treated_as, now - invoked_ns));
                    self.records.push(record);
                    if !self.script.is_empty() {
                        self.think_timer = Some(ctx.set_timer(self.think_ns.max(1)));
                    }
                }
                // A completion with no (or the wrong) inflight op: a
                // duplicated broadcast frame was applied twice. Tally it;
                // the history keeps the first completion only.
                _ => self.orphan_completions += 1,
            }
        }
    }
}

impl<R: ReplicaProtocol> Node for ChaosNode<R> {
    type Msg = LinkMsg<R::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        if !self.script.is_empty() {
            self.think_timer = Some(ctx.set_timer(self.start_delay_ns.max(1)));
        }
    }

    fn on_message(&mut self, from: ProcessId, frame: Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let now = ctx.now().as_nanos();
        let mut wire = Vec::new();
        let ready = self.link.on_wire(from, frame, now, &mut wire);
        for (to, f) in wire {
            ctx.send(to, f);
        }
        for m in ready {
            let mut out = Outbox::new(self.n);
            self.replica.on_message(from, m, &mut out);
            self.relay(&mut out, ctx);
        }
        self.drain(ctx);
        self.arm_tick(ctx);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        if self.think_timer == Some(timer) {
            self.think_timer = None;
            self.invoke_next(ctx);
        } else {
            // A link/abcast tick (possibly superseded or early — both
            // on_tick hooks only act on deadlines that are actually due).
            self.tick_deadline = None;
            let now = ctx.now().as_nanos();
            let mut wire = Vec::new();
            self.link.on_tick(now, &mut wire);
            for (to, f) in wire {
                ctx.send(to, f);
            }
            // A due suspicion timer can start or escalate a view change,
            // and a completed change can release buffered deliveries.
            let mut out = Outbox::new(self.n);
            self.replica.on_abcast_tick(now, &mut out);
            self.relay(&mut out, ctx);
            self.drain(ctx);
            self.arm_tick(ctx);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // Timers armed before the outage were suppressed with it; the
        // link's rejoin handshake recovers in-flight protocol traffic.
        let now = ctx.now().as_nanos();
        let mut wire = Vec::new();
        self.link.on_restart(now, &mut wire);
        for (to, f) in wire {
            ctx.send(to, f);
        }
        // Let the broadcast react to its own outage: a restarted fixed
        // sequencer fail-stops, a view-based one resyncs its suspicion
        // clock and catches up as a follower.
        let mut out = Outbox::new(self.n);
        self.replica.on_abcast_restart(now, &mut out);
        self.relay(&mut out, ctx);
        self.drain(ctx);
        self.think_timer = None;
        self.tick_deadline = None;
        self.arm_tick(ctx);
        if self.inflight.is_none() && !self.script.is_empty() {
            self.think_timer = Some(ctx.set_timer(self.think_ns.max(1)));
        }
    }
}

/// Splits one replica's channel logs into the shared (wire-agreed)
/// channels and the log of its private read-only fast-path channel, if
/// the broadcast arms one.
fn split_private_channel<R: ReplicaProtocol>(node: &ChaosNode<R>) -> (Vec<Vec<MOpId>>, Vec<MOpId>) {
    let mut logs = node.replica.channel_logs();
    let mut private_log = Vec::new();
    if let Some(c) = node.replica.private_channel() {
        let c = c as usize;
        if c < logs.len() {
            private_log = std::mem::take(&mut logs[c]);
            while logs.last().is_some_and(|l| l.is_empty()) {
                logs.pop();
            }
        }
    }
    (logs, private_log)
}

/// Verifies one replica's private fast-path channel log against its
/// contract: every entry must have been issued by the owning replica
/// itself and must correspond to a completed m-operation that performed
/// no writes (a write applied outside the agreed order is exactly the
/// corruption the fast path must never introduce). Returns the number of
/// violating entries.
fn private_channel_violations(me: ProcessId, log: &[MOpId], records: &[MOpRecord]) -> u64 {
    log.iter()
        .map(|id| {
            if id.process != me {
                return 1;
            }
            match records.iter().find(|r| r.id == *id) {
                None => 1,
                Some(r) => u64::from(
                    r.ops
                        .iter()
                        .any(|op| op.kind == moc_core::op::OpKind::Write),
                ),
            }
        })
        .sum()
}

/// Runs protocol `R` over `scripts` (one per process) on the
/// fault-injecting simulator with the reliable link in between, and
/// reports everything observed. Never panics on protocol misbehavior —
/// see [`ChaosAnomalies`].
pub fn run_chaos_cluster<R: ReplicaProtocol + 'static>(
    config: &ChaosConfig,
    scripts: Vec<ClientScript>,
) -> ChaosRunReport {
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let sentinel = config
        .monitor
        .clone()
        .map(|mc| Rc::new(RefCell::new(OnlineMonitor::new(config.num_objects, mc))));
    let nodes: Vec<ChaosNode<R>> = scripts
        .into_iter()
        .enumerate()
        .map(|(p, script)| ChaosNode {
            me: ProcessId::new(p as u32),
            n,
            replica: {
                let mut r = R::new(ProcessId::new(p as u32), n, config.num_objects);
                if let Some((base, max)) = config.failover_timeouts {
                    r.set_failover_timeouts(base, max);
                }
                if let Some(plan) = &config.shard_plan {
                    r.set_shard_plan(plan.clone());
                }
                if let Some(plan) = &config.commute_plan {
                    r.set_commute_plan(plan.clone());
                }
                if let Some(cfg) = config.batching {
                    r.set_batching(cfg);
                }
                r
            },
            link: ReliableLink::new(ProcessId::new(p as u32), n, config.link),
            script: script.ops.into(),
            think_ns: script.think_ns,
            start_delay_ns: script.start_delay_ns,
            next_seq: 0,
            inflight: None,
            records: Vec::new(),
            latencies: Vec::new(),
            think_timer: None,
            tick_deadline: None,
            orphan_completions: 0,
            monitor: sentinel.clone(),
        })
        .collect();
    let mut world = World::with_faults(nodes, config.network, config.faults.clone(), config.seed);
    let mut events = 0u64;
    let mut stalled = true;
    while events < config.max_events {
        if !world.step() {
            stalled = false;
            break;
        }
        events += 1;
    }
    let sim = world.stats();
    let nodes = world.into_nodes();

    let mut anomalies = ChaosAnomalies {
        stalled,
        ..ChaosAnomalies::default()
    };
    let update_order: Vec<MOpId> = nodes[0].replica.delivery_log().to_vec();
    // Agreement is per ordering channel: single-order broadcasts report
    // one channel (the whole log, so this is the old whole-log check);
    // sharded broadcasts may legitimately interleave commuting channels
    // differently per replica, but each channel's log must be identical.
    // The replica-private read-only fast-path channel is split off first:
    // its contents never cross the wire and legitimately differ per
    // replica, so it is verified entry-by-entry instead of compared.
    let (reference_channels, _) = split_private_channel(&nodes[0]);
    let mut private_fast_logs = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let (shared, private_log) = split_private_channel(node);
        if shared != reference_channels {
            anomalies.delivery_divergence = true;
        }
        anomalies.fast_path_violations +=
            private_channel_violations(node.me, &private_log, &node.records);
        private_fast_logs.push(private_log);
        if node.replica.store() != nodes[0].replica.store() {
            anomalies.store_divergence = true;
        }
    }
    let mut records = Vec::new();
    let mut latencies = Vec::new();
    let mut replica_metrics = Vec::new();
    let mut link_stats = Vec::new();
    let mut view_transcripts = Vec::new();
    let mut commute_fast_applied = Vec::new();
    let mut batch_stats = Vec::new();
    let mut end_ns = 0u64;
    for node in nodes {
        anomalies.orphan_completions += node.orphan_completions;
        anomalies.unfinished_ops += node.script.len() as u64 + u64::from(node.inflight.is_some());
        for r in &node.records {
            end_ns = end_ns.max(r.responded_at.as_nanos());
        }
        records.extend(node.records);
        latencies.extend(node.latencies);
        replica_metrics.push(node.replica.metrics());
        link_stats.push(node.link.stats());
        view_transcripts.push(node.replica.abcast_transcript());
        commute_fast_applied.push(node.replica.commute_fast_applied());
        batch_stats.push(node.replica.batch_stats());
    }
    let history = History::new(config.num_objects, records).map_err(|e| e.to_string());
    // All node clones of the sentinel were dropped when the nodes were
    // consumed above, so the unwrap cannot fail.
    let monitor = sentinel.map(|m| {
        let mut mon = Rc::try_unwrap(m)
            .unwrap_or_else(|_| unreachable!("nodes consumed"))
            .into_inner();
        mon.flush(end_ns + 1);
        mon.into_summary()
    });
    ChaosRunReport {
        protocol: R::protocol_name(),
        history,
        latencies,
        replica_metrics,
        link_stats,
        sim,
        update_order,
        channel_logs: reference_channels,
        private_fast_logs,
        anomalies,
        view_transcripts,
        commute_fast_applied,
        batch_stats,
        monitor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MlinOverSequencer, MscOverSequencer, MscOverSharded, MscOverView};
    use moc_core::ids::ObjectId;
    use moc_core::program::{reg, ProgramBuilder};
    use moc_sim::DelayModel;
    use std::sync::Arc;

    fn write_x() -> Arc<moc_core::program::Program> {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), moc_core::program::arg(0))
            .ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn read_x() -> Arc<moc_core::program::Program> {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    fn scripts() -> Vec<ClientScript> {
        vec![
            ClientScript::new(vec![
                OpSpec::new(write_x(), vec![5]),
                OpSpec::new(read_x(), vec![]),
            ]),
            ClientScript::new(vec![
                OpSpec::new(read_x(), vec![]),
                OpSpec::new(write_x(), vec![9]),
            ]),
            ClientScript::new(vec![OpSpec::new(read_x(), vec![])]),
        ]
    }

    #[test]
    fn benign_chaos_run_matches_fair_weather_expectations() {
        let cfg = ChaosConfig::new(1, 11);
        let report = run_chaos_cluster::<MscOverSequencer>(&cfg, scripts());
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let h = report.history.as_ref().expect("valid history");
        assert_eq!(h.len(), 5);
        assert_eq!(report.sim.messages_dropped, 0);
        assert!(report.total_link_stats().retransmissions == 0);
    }

    #[test]
    fn msc_completes_under_drops_and_duplicates() {
        let cfg = ChaosConfig::new(1, 23)
            .with_network(NetworkConfig::with_delay(DelayModel::Uniform {
                lo: 50,
                hi: 2_000,
            }))
            .with_faults(FaultPlan::lossy(0.25).with_dup(0.15))
            .with_link(LinkConfig {
                rto_ns: 10_000,
                max_rto_ns: 160_000,
                ..LinkConfig::default()
            });
        let report = run_chaos_cluster::<MscOverSequencer>(&cfg, scripts());
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let h = report.history.as_ref().expect("valid history");
        assert_eq!(h.len(), 5, "every scripted op completed despite faults");
        assert!(report.sim.messages_dropped > 0, "the plan actually dropped");
        assert!(
            report.total_link_stats().retransmissions > 0,
            "losses were recovered by retransmission"
        );
    }

    #[test]
    fn mlin_completes_across_a_crash_window() {
        let cfg = ChaosConfig::new(1, 5)
            .with_network(NetworkConfig::fifo(1_000))
            .with_faults(FaultPlan::default().with_crash(ProcessId::new(2), 3_000, 500_000))
            .with_link(LinkConfig {
                rto_ns: 20_000,
                max_rto_ns: 320_000,
                ..LinkConfig::default()
            });
        let report = run_chaos_cluster::<MlinOverSequencer>(&cfg, scripts());
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let h = report.history.as_ref().expect("valid history");
        assert_eq!(h.len(), 5);
        assert_eq!(report.sim.crashes, 1);
        assert_eq!(report.sim.restarts, 1);
        let link = report.total_link_stats();
        assert!(
            link.rejoins > 0,
            "the crashed replica ran the rejoin handshake"
        );
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let mk = || {
            let cfg = ChaosConfig::new(1, 77).with_faults(FaultPlan::lossy(0.2).with_dup(0.1));
            run_chaos_cluster::<MscOverSequencer>(&cfg, scripts())
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.sim, b.sim);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().is_some());
        assert_eq!(a.latencies, b.latencies);
    }

    /// Like [`scripts`], but paced so the second round of updates is
    /// still in flight when a crash at ~5µs lands.
    fn slow_scripts() -> Vec<ClientScript> {
        scripts()
            .into_iter()
            .map(|s| s.with_think_time(10_000))
            .collect()
    }

    #[test]
    fn view_abcast_survives_a_leader_crash() {
        // Crash the initial leader (P0) mid-run. The survivors must
        // suspect it, install view 1 under P1, re-propose anything
        // unordered, and finish every scripted op; P0 rejoins through
        // the link handshake and catches up as a follower.
        let cfg = ChaosConfig::new(1, 13)
            .with_network(NetworkConfig::fifo(1_000))
            .with_faults(FaultPlan::default().with_crash(ProcessId::new(0), 5_000, 600_000))
            .with_link(LinkConfig {
                rto_ns: 20_000,
                max_rto_ns: 320_000,
                ..LinkConfig::default()
            });
        let report = run_chaos_cluster::<MscOverView>(&cfg, slow_scripts());
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let h = report.history.as_ref().expect("valid history");
        assert_eq!(h.len(), 5, "every scripted op completed across failover");
        let survivors_changed_view = report.view_transcripts[1..].iter().all(|t| {
            t.iter()
                .any(|line| line.contains("install v1") || line.contains("adopt v1"))
        });
        assert!(
            survivors_changed_view,
            "survivors moved to view 1: {:?}",
            report.view_transcripts
        );
    }

    #[test]
    fn crashed_fixed_sequencer_is_detected_not_silent() {
        // The same crash under the fixed sequencer: the restarted
        // sequencer fail-stops instead of restamping from a stale
        // counter, so the run surfaces unfinished updates rather than a
        // silently forked order.
        let cfg = ChaosConfig::new(1, 13)
            .with_network(NetworkConfig::fifo(1_000))
            .with_faults(FaultPlan::default().with_crash(ProcessId::new(0), 5_000, 600_000))
            .with_link(LinkConfig {
                rto_ns: 20_000,
                max_rto_ns: 320_000,
                ..LinkConfig::default()
            });
        let report = run_chaos_cluster::<MscOverSequencer>(&cfg, slow_scripts());
        assert!(
            !report.anomalies.is_clean(),
            "a dead coordinator must be detectable: {:?}",
            report.anomalies
        );
        assert!(report.anomalies.unfinished_ops > 0 || report.anomalies.stalled);
        assert!(
            report.view_transcripts[0]
                .iter()
                .any(|line| line.contains("halted")),
            "the restarted sequencer recorded its fail-stop: {:?}",
            report.view_transcripts
        );
        assert!(
            !report.anomalies.delivery_divergence,
            "fail-stop prevents order corruption"
        );
    }

    #[test]
    fn sabotaged_link_surfaces_anomalies() {
        // With dedup off, duplicated frames reach the protocol; somewhere
        // in this seed range a duplicate Submit double-applies an update.
        let mut saw_orphans = false;
        for seed in 0..40 {
            let cfg = ChaosConfig::new(1, seed)
                .with_network(NetworkConfig::with_delay(DelayModel::Uniform {
                    lo: 50,
                    hi: 5_000,
                }))
                .with_faults(FaultPlan::default().with_dup(0.5))
                .with_link(LinkConfig::sabotaged());
            let report = run_chaos_cluster::<MscOverSequencer>(&cfg, scripts());
            if report.anomalies.orphan_completions > 0 {
                saw_orphans = true;
                break;
            }
        }
        assert!(saw_orphans, "sabotage never produced a double application");
    }

    /// Contract check for the private fast-path channel, in isolation: a
    /// foreign id, a never-completed id, and a write-carrying entry are
    /// each one violation; a locally completed read-only entry is none.
    #[test]
    fn private_channel_contract_flags_foreign_missing_and_writing_entries() {
        use moc_core::op::CompletedOp;
        let me = ProcessId::new(1);
        let x = ObjectId::new(0);
        let mk_rec = |id: MOpId, ops: Vec<CompletedOp>| MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(1),
            ops,
            outputs: vec![],
            treated_as: MOpClass::Query,
            label: "t".to_string(),
        };
        let mine_ro = MOpId::new(me, 0);
        let mine_w = MOpId::new(me, 1);
        let foreign = MOpId::new(ProcessId::new(2), 0);
        let missing = MOpId::new(me, 9);
        let records = vec![
            mk_rec(mine_ro, vec![CompletedOp::read(x, 0, MOpId::INITIAL, 0)]),
            mk_rec(mine_w, vec![CompletedOp::write(x, 5, mine_w, 1)]),
        ];
        assert_eq!(private_channel_violations(me, &[mine_ro], &records), 0);
        assert_eq!(
            private_channel_violations(me, &[foreign], &records),
            1,
            "an entry issued elsewhere cannot be a local self-delivery"
        );
        assert_eq!(
            private_channel_violations(me, &[missing], &records),
            1,
            "an entry with no completion record is unaccounted for"
        );
        assert_eq!(
            private_channel_violations(me, &[mine_w], &records),
            1,
            "a write smuggled past the agreed order is the critical case"
        );
        assert_eq!(
            private_channel_violations(me, &[mine_ro, foreign, mine_w], &records),
            2
        );
    }

    /// Live exercise of the private-channel verification: the aggregate
    /// baseline over the conflict-sharded broadcast *broadcasts its
    /// queries*, so with a certified commute plan installed they take the
    /// replica-private read-only fast path. The harness must treat those
    /// replica-local logs as legitimate (no divergence false-positive)
    /// while still verifying every entry's read-only contract.
    #[test]
    fn aggregate_fast_path_queries_are_verified_not_flagged() {
        use crate::AggregateOverSharded;
        let write_y = || {
            let mut b = ProgramBuilder::new("wy");
            b.write(ObjectId::new(1), moc_core::program::arg(0))
                .ret(vec![]);
            Arc::new(b.build().unwrap())
        };
        let read_y = || {
            let mut b = ProgramBuilder::new("ry");
            b.read(ObjectId::new(1), 0).ret(vec![reg(0)]);
            Arc::new(b.build().unwrap())
        };
        let programs = [write_x(), write_y(), read_x(), read_y()];
        let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
        let shard_plan = moc_core::shard::ShardPlan::new(vec![0, 1]).unwrap();
        let analysis = moc_analyze::commute_set(&refs, 2);
        let commute_plan = analysis.cert.delivery_plan(&shard_plan);
        let scripts = vec![
            ClientScript::new(vec![
                OpSpec::new(write_x(), vec![5]),
                OpSpec::new(read_y(), vec![]),
            ]),
            ClientScript::new(vec![
                OpSpec::new(write_y(), vec![7]),
                OpSpec::new(read_x(), vec![]),
            ]),
            ClientScript::new(vec![
                OpSpec::new(read_x(), vec![]),
                OpSpec::new(read_y(), vec![]),
            ]),
        ];
        let cfg = ChaosConfig::new(2, 41)
            .with_shard_plan(shard_plan)
            .with_commute_plan(commute_plan);
        let report = run_chaos_cluster::<AggregateOverSharded>(&cfg, scripts);
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let h = report.history.as_ref().expect("valid history");
        assert_eq!(h.len(), 6, "every scripted op completed");
        assert!(
            report.commute_fast_applied.iter().sum::<u64>() >= 4,
            "every broadcast query should self-deliver: {:?}",
            report.commute_fast_applied
        );
        let private_entries: usize = report.private_fast_logs.iter().map(|l| l.len()).sum();
        assert!(
            private_entries >= 4,
            "private logs must surface the fast-path deliveries: {:?}",
            report.private_fast_logs
        );
        for (p, log) in report.private_fast_logs.iter().enumerate() {
            assert!(
                log.iter().all(|id| id.process.index() == p),
                "replica {p} private log must be self-issued: {log:?}"
            );
        }
    }

    /// The online sentinel rides along on a faulty-but-recoverable run:
    /// the stream must stay clean (no latched violation), emit at least
    /// one rolling certificate, and its verdict timeline must cover the
    /// whole run (every completion was ingested).
    #[test]
    fn monitored_chaos_run_reports_clean_timeline() {
        use moc_checker::Condition;
        let cfg = ChaosConfig::new(1, 23)
            .with_network(NetworkConfig::with_delay(DelayModel::Uniform {
                lo: 50,
                hi: 2_000,
            }))
            .with_faults(FaultPlan::lossy(0.25).with_dup(0.15))
            .with_link(LinkConfig {
                rto_ns: 10_000,
                max_rto_ns: 160_000,
                ..LinkConfig::default()
            })
            .with_monitor(MonitorConfig::new(Condition::MSequentialConsistency).with_window(2));
        let report = run_chaos_cluster::<MscOverSequencer>(&cfg, scripts());
        assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
        let summary = report.monitor.as_ref().expect("sentinel attached");
        assert!(
            summary.violation.is_none(),
            "clean run latched: {:?}",
            summary.violation
        );
        assert_eq!(summary.stats.completions, 5, "every completion streamed");
        assert_eq!(summary.stats.invocations, 5);
        assert!(
            !summary.certs.is_empty(),
            "quiescence points must emit rolling certificates"
        );
        assert!(summary.certs.iter().all(|c| c.admissible));
        // Monitored and unmonitored runs are the same execution: the
        // sentinel only observes.
        let bare = run_chaos_cluster::<MscOverSequencer>(
            &ChaosConfig {
                monitor: None,
                ..cfg.clone()
            },
            scripts(),
        );
        assert_eq!(report.fingerprint(), bare.fingerprint());
    }

    /// Three clients, two writes each: an update burst that gives the
    /// group-commit window something to group.
    fn update_scripts() -> Vec<ClientScript> {
        (0..3i64)
            .map(|p| {
                ClientScript::new(vec![
                    OpSpec::new(write_x(), vec![p * 10 + 1]),
                    OpSpec::new(write_x(), vec![p * 10 + 2]),
                ])
            })
            .collect()
    }

    /// The monitored conformance sweep with group-commit batching on:
    /// every backend must finish every scripted op with a clean anomaly
    /// tally, a violation-free sentinel timeline, admissible rolling
    /// certificates, and batches that actually group (occupancy > 1).
    #[test]
    fn monitored_chaos_sweep_passes_with_batching_enabled() {
        use moc_checker::Condition;
        // The 5µs group-commit window exceeds the 50ns..2µs network
        // spread, so the initial burst of submissions lands in one batch.
        let batch = moc_abcast::BatchConfig {
            max_batch: 4,
            max_delay_ns: 5_000,
        };
        let cfg_for = |seed: u64| {
            ChaosConfig::new(1, seed)
                .with_network(NetworkConfig::with_delay(DelayModel::Uniform {
                    lo: 50,
                    hi: 2_000,
                }))
                .with_faults(FaultPlan::lossy(0.15).with_dup(0.1))
                .with_link(LinkConfig {
                    rto_ns: 10_000,
                    max_rto_ns: 160_000,
                    ..LinkConfig::default()
                })
                .with_batching(batch)
                .with_monitor(MonitorConfig::new(Condition::MSequentialConsistency).with_window(2))
        };
        let check = |report: &ChaosRunReport| {
            assert!(
                report.anomalies.is_clean(),
                "{}: {:?}",
                report.protocol,
                report.anomalies
            );
            let h = report.history.as_ref().expect("valid history");
            assert_eq!(
                h.len(),
                6,
                "{}: every scripted op completed",
                report.protocol
            );
            let summary = report.monitor.as_ref().expect("sentinel attached");
            assert!(
                summary.violation.is_none(),
                "{}: clean run latched: {:?}",
                report.protocol,
                summary.violation
            );
            assert_eq!(summary.stats.completions, 6);
            assert!(summary.certs.iter().all(|c| c.admissible));
            let stats = report.total_batch_stats();
            assert_eq!(stats.items_stamped, 6, "{}: {stats:?}", report.protocol);
            assert!(
                stats.occupancy() > 1.0,
                "{}: batches must group: {:?}",
                report.protocol,
                stats
            );
        };
        for seed in [23u64, 51, 87] {
            check(&run_chaos_cluster::<MscOverSequencer>(
                &cfg_for(seed),
                update_scripts(),
            ));
            check(&run_chaos_cluster::<MscOverView>(
                &cfg_for(seed),
                update_scripts(),
            ));
        }
        // The sharded backend batches per ordering channel.
        for seed in [23u64, 51] {
            let cfg = ChaosConfig::new(1, seed)
                .with_batching(batch)
                .with_shard_plan(moc_core::shard::ShardPlan::new(vec![0]).unwrap())
                .with_monitor(MonitorConfig::new(Condition::MSequentialConsistency).with_window(2));
            let report = run_chaos_cluster::<MscOverSharded>(&cfg, update_scripts());
            assert!(report.anomalies.is_clean(), "{:?}", report.anomalies);
            let h = report.history.as_ref().expect("valid history");
            assert_eq!(h.len(), 6);
            let summary = report.monitor.as_ref().expect("sentinel attached");
            assert!(summary.violation.is_none(), "{:?}", summary.violation);
            assert!(summary.certs.iter().all(|c| c.admissible));
            let stats = report.total_batch_stats();
            assert_eq!(stats.items_stamped, 6, "{stats:?}");
            assert!(stats.occupancy() > 1.0, "{stats:?}");
        }
    }
}
