//! The aggregate-object baseline.
//!
//! The introduction warns against modeling multi-methods "by defining an
//! aggregate object that represents the state of all objects": it forces
//! every access — queries included — through the single object's
//! serialization point, losing locality and concurrency. This replica makes
//! that strawman concrete so the benchmarks can quantify the loss: *every*
//! m-operation is atomically broadcast and applied at delivery, exactly as
//! if the whole store were one concurrent object.
//!
//! The result is trivially m-linearizable (all operations share one total
//! order consistent with real time), but a query now costs a full broadcast
//! round and is applied by all `n` replicas, instead of costing zero
//! messages (Figure 4) or one round of `2n` point-to-point messages
//! (Figure 6).

use std::collections::VecDeque;

use moc_abcast::{Abcast, Outbox};
use moc_core::ids::ProcessId;

use crate::store::ReplicaStore;
use crate::{Completion, MOperation, ProtocolMsg, ReplicaMetrics, ReplicaProtocol};

/// One process's replica of the aggregate-object baseline over atomic
/// broadcast implementation `A`.
#[derive(Debug, Clone)]
pub struct AggregateReplica<A: Abcast<MOperation>> {
    me: ProcessId,
    n: usize,
    store: ReplicaStore,
    abcast: A,
    completions: VecDeque<Completion>,
    delivery_log: Vec<moc_core::ids::MOpId>,
    metrics: ReplicaMetrics,
}

impl<A: Abcast<MOperation>> AggregateReplica<A> {
    fn pump_abcast(
        &mut self,
        ab_out: &mut Outbox<A::Msg>,
        out: &mut Outbox<ProtocolMsg<A::Msg>>,
        from_update: bool,
    ) {
        for (to, m) in ab_out.drain() {
            if from_update {
                self.metrics.update_msgs_sent += 1;
            } else {
                self.metrics.query_msgs_sent += 1;
            }
            out.send(to, ProtocolMsg::Abcast(m));
        }
        for d in self.abcast.drain_delivered() {
            self.delivery_log.push(d.item.id);
            let class = d.item.class();
            let rec = self.store.apply(&d.item);
            match class {
                moc_core::mop::MOpClass::Update => self.metrics.updates_applied += 1,
                moc_core::mop::MOpClass::Query => self.metrics.queries_completed += 1,
            }
            if d.item.id.process == self.me {
                self.completions.push_back(Completion {
                    id: d.item.id,
                    outputs: rec.outputs,
                    ops: rec.ops,
                    treated_as: class,
                    label: d.item.program.name().to_string(),
                });
            }
        }
    }
}

impl<A: Abcast<MOperation>> ReplicaProtocol for AggregateReplica<A> {
    type Msg = ProtocolMsg<A::Msg>;

    fn new(me: ProcessId, n: usize, num_objects: usize) -> Self {
        AggregateReplica {
            me,
            n,
            store: ReplicaStore::new(num_objects),
            abcast: A::new(me, n),
            completions: VecDeque::new(),
            delivery_log: Vec::new(),
            metrics: ReplicaMetrics::default(),
        }
    }

    fn protocol_name() -> &'static str {
        "aggregate"
    }

    fn invoke(&mut self, mop: MOperation, out: &mut Outbox<Self::Msg>) {
        // Everything — update or query — goes through the total order.
        let from_update = mop.is_update();
        let mut ab_out = Outbox::new(self.n);
        self.abcast.broadcast(mop, &mut ab_out);
        self.pump_abcast(&mut ab_out, out, from_update);
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            ProtocolMsg::Abcast(am) => {
                let mut ab_out = Outbox::new(self.n);
                self.abcast.on_message(from, am, &mut ab_out);
                self.pump_abcast(&mut ab_out, out, true);
            }
            other => {
                debug_assert!(
                    false,
                    "aggregate replica received a non-abcast message: {other:?}"
                );
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    fn store(&self) -> &ReplicaStore {
        &self.store
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.metrics
    }

    fn delivery_log(&self) -> &[moc_core::ids::MOpId] {
        &self.delivery_log
    }

    fn abcast_deadline(&self) -> Option<u64> {
        self.abcast.next_deadline()
    }

    fn on_abcast_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_tick(now_ns, &mut ab_out);
        self.pump_abcast(&mut ab_out, out, true);
    }

    fn on_abcast_restart(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_restart(now_ns, &mut ab_out);
        self.pump_abcast(&mut ab_out, out, true);
    }

    fn set_failover_timeouts(&mut self, base_ns: u64, max_ns: u64) {
        self.abcast.set_failover_timeouts(base_ns, max_ns);
    }

    fn abcast_transcript(&self) -> Vec<String> {
        self.abcast.transcript()
    }

    fn set_shard_plan(&mut self, plan: moc_core::shard::ShardPlan) {
        self.abcast.set_shard_plan(plan);
    }

    fn set_commute_plan(&mut self, plan: moc_core::commute::CommutePlan) {
        self.abcast.set_commute_plan(plan);
    }

    fn commute_fast_applied(&self) -> u64 {
        self.abcast.commute_fast_applied()
    }

    fn set_batching(&mut self, cfg: moc_abcast::BatchConfig) {
        self.abcast.set_batching(cfg);
    }

    fn batch_stats(&self) -> moc_abcast::BatchStats {
        self.abcast.batch_stats()
    }

    fn channel_logs(&self) -> Vec<Vec<moc_core::ids::MOpId>> {
        crate::split_channel_logs(&self.delivery_log, self.abcast.delivery_channels())
    }

    fn private_channel(&self) -> Option<u32> {
        self.abcast.private_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_abcast::SequencerAbcast;
    use moc_core::ids::{MOpId, ObjectId};
    use moc_core::program::{reg, ProgramBuilder};
    use std::sync::Arc;

    type Replica = AggregateReplica<SequencerAbcast<MOperation>>;

    #[test]
    fn even_queries_are_broadcast() {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        let q = MOperation::new(
            MOpId::new(ProcessId::new(1), 0),
            Arc::new(b.build().unwrap()),
            vec![],
        );
        let mut r = Replica::new(ProcessId::new(1), 2, 1);
        let mut out = Outbox::new(2);
        r.invoke(q, &mut out);
        assert_eq!(out.len(), 1, "query submitted to the sequencer");
        assert!(
            r.drain_completions().is_empty(),
            "query must wait for the total order"
        );
        assert_eq!(r.metrics().query_msgs_sent, 1);
    }
}
