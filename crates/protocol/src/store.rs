//! The replicated object store: each process's local copy of the shared
//! objects plus its version vector.
//!
//! Applying an m-operation implements the body of action A2 (Figures 4 and
//! 6): execute the deterministic program against the local copy, then bump
//! `ts[x]` once for every object `x` the m-operation wrote. Version
//! provenance is recorded on every read and write so that executions yield
//! exact reads-from information (D 5.1 / D 5.6: `α` reads the version of
//! `x` that `β` wrote iff `ts(finish(β))[x] = ts(start(α))[x]`).

use moc_core::ids::ObjectId;
use moc_core::op::CompletedOp;
use moc_core::program::{execute, MContext, ProgramError, DEFAULT_FUEL};
use moc_core::value::{Value, Versioned};
use moc_core::vv::VersionVector;

use crate::MOperation;

/// The result of applying an m-operation to a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecRecord {
    /// Completed operations in program order, with provenance.
    pub ops: Vec<CompletedOp>,
    /// The program's return values.
    pub outputs: Vec<Value>,
}

/// One process's copy of every shared object, with versions (`X` and `ts`
/// / `myX` and `myts` in the paper's pseudocode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStore {
    values: Vec<Versioned>,
    ts: VersionVector,
}

impl ReplicaStore {
    /// A fresh store: every object at its initial value, version vector
    /// zero.
    pub fn new(num_objects: usize) -> Self {
        ReplicaStore {
            values: vec![Versioned::INITIAL; num_objects],
            ts: VersionVector::new(num_objects),
        }
    }

    /// Reconstructs a store from a query-response snapshot: `state` holds
    /// (a projection of) the objects, `ts` the responder's version vector.
    /// Objects absent from `state` stay at their initial value — valid only
    /// if the query never touches them (guaranteed under
    /// [`crate::QueryScope::Relevant`]).
    pub fn from_snapshot(
        num_objects: usize,
        state: &[(ObjectId, Versioned)],
        ts: VersionVector,
    ) -> Self {
        let mut values = vec![Versioned::INITIAL; num_objects];
        for &(obj, v) in state {
            values[obj.index()] = v;
        }
        ReplicaStore { values, ts }
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.values.len()
    }

    /// The version vector (`ts` / `myts`).
    pub fn ts(&self) -> &VersionVector {
        &self.ts
    }

    /// The current state of `object`.
    pub fn get(&self, object: ObjectId) -> Versioned {
        self.values[object.index()]
    }

    /// All object states, e.g. for a full query response.
    pub fn snapshot_full(&self) -> Vec<(ObjectId, Versioned)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (ObjectId::new(i as u32), v))
            .collect()
    }

    /// Only the listed objects, for a [`crate::QueryScope::Relevant`]
    /// response — the optimization the paper notes at the end of
    /// Section 5.2.
    pub fn snapshot_of(&self, objects: &[ObjectId]) -> Vec<(ObjectId, Versioned)> {
        objects
            .iter()
            .map(|&o| (o, self.values[o.index()]))
            .collect()
    }

    /// Applies `mop` to this store: executes the program and, per action
    /// A2, bumps `ts[x]` for every written object, installing the final
    /// written values as the new versions.
    ///
    /// # Panics
    ///
    /// Panics if the program faults (references a missing argument or
    /// exhausts its fuel). Programs are validated at build time and the
    /// protocols re-execute only programs that already ran at the issuing
    /// process, so a fault here is a determinism bug, not an input error —
    /// and silently diverging replicas would be far worse than a crash.
    pub fn apply(&mut self, mop: &MOperation) -> ExecRecord {
        self.try_apply(mop)
            .unwrap_or_else(|e| panic!("m-operation {} faulted during apply: {e}", mop.id))
    }

    /// Non-panicking variant of [`ReplicaStore::apply`]. On error the store
    /// is left unchanged.
    pub fn try_apply(&mut self, mop: &MOperation) -> Result<ExecRecord, ProgramError> {
        let mut ctx = RecordingContext {
            values: self.values.clone(),
            ts: &self.ts,
            mop,
            ops: Vec::new(),
            written: vec![false; self.values.len()],
        };
        let outcome = execute(&mop.program, &mop.args, &mut ctx, DEFAULT_FUEL)?;
        // Commit: install final values and bump versions once per written
        // object (A2: ∀x ∈ wobjects(α): ts[x]++).
        let RecordingContext {
            values,
            ops,
            written,
            ..
        } = ctx;
        self.values = values;
        for (i, was_written) in written.iter().enumerate() {
            if *was_written {
                let obj = ObjectId::new(i as u32);
                let version = self.ts.bump(obj);
                let v = &mut self.values[i];
                v.version = version;
                v.writer = mop.id;
            }
        }
        Ok(ExecRecord {
            ops,
            outputs: outcome.outputs,
        })
    }
}

/// Records provenance while a program executes against a store copy.
struct RecordingContext<'a> {
    values: Vec<Versioned>,
    ts: &'a VersionVector,
    mop: &'a MOperation,
    ops: Vec<CompletedOp>,
    written: Vec<bool>,
}

impl MContext for RecordingContext<'_> {
    fn read(&mut self, object: ObjectId) -> Value {
        let i = object.index();
        let op = if self.written[i] {
            // Internal read of this m-operation's own pending write: the
            // anticipated version is the current one plus one.
            CompletedOp::read(
                object,
                self.values[i].value,
                self.mop.id,
                self.ts.get(object) + 1,
            )
        } else {
            let v = self.values[i];
            CompletedOp::read(object, v.value, v.writer, v.version)
        };
        self.ops.push(op);
        op.value
    }

    fn write(&mut self, object: ObjectId, value: Value) {
        let i = object.index();
        self.values[i].value = value;
        self.written[i] = true;
        self.ops.push(CompletedOp::write(
            object,
            value,
            self.mop.id,
            self.ts.get(object) + 1,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::{MOpId, ProcessId};
    use moc_core::op::OpKind;
    use moc_core::program::{arg, imm, reg, CmpOp, ProgramBuilder};
    use std::sync::Arc;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn mid(p: u32, s: u32) -> MOpId {
        MOpId::new(ProcessId::new(p), s)
    }

    fn write_xy() -> Arc<moc_core::program::Program> {
        let mut b = ProgramBuilder::new("wxy");
        b.write(oid(0), arg(0)).write(oid(1), arg(1)).ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn read_xy() -> Arc<moc_core::program::Program> {
        let mut b = ProgramBuilder::new("rxy");
        b.read(oid(0), 0).read(oid(1), 1).ret(vec![reg(0), reg(1)]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn apply_bumps_versions_once_per_object() {
        let mut s = ReplicaStore::new(2);
        let m = MOperation::new(mid(0, 0), write_xy(), vec![10, 20]);
        let rec = s.apply(&m);
        assert_eq!(rec.ops.len(), 2);
        assert_eq!(s.get(oid(0)), Versioned::new(10, 1, mid(0, 0)));
        assert_eq!(s.get(oid(1)), Versioned::new(20, 1, mid(0, 0)));
        assert_eq!(s.ts().as_slice(), &[1, 1]);
    }

    #[test]
    fn double_write_bumps_once() {
        let mut b = ProgramBuilder::new("ww");
        b.write(oid(0), imm(1)).write(oid(0), imm(2)).ret(vec![]);
        let m = MOperation::new(mid(0, 0), Arc::new(b.build().unwrap()), vec![]);
        let mut s = ReplicaStore::new(1);
        s.apply(&m);
        assert_eq!(s.get(oid(0)).value, 2);
        assert_eq!(s.get(oid(0)).version, 1, "one version per m-operation");
    }

    #[test]
    fn reads_record_provenance() {
        let mut s = ReplicaStore::new(2);
        let w = MOperation::new(mid(0, 0), write_xy(), vec![10, 20]);
        s.apply(&w);
        let r = MOperation::new(mid(1, 0), read_xy(), vec![]);
        let rec = s.apply(&r);
        assert_eq!(rec.outputs, vec![10, 20]);
        assert!(rec.ops.iter().all(|op| op.kind == OpKind::Read));
        assert!(rec.ops.iter().all(|op| op.writer == mid(0, 0)));
        assert!(rec.ops.iter().all(|op| op.version == 1));
        // Queries leave ts untouched.
        assert_eq!(s.ts().as_slice(), &[1, 1]);
    }

    #[test]
    fn internal_read_attributed_to_self() {
        let mut b = ProgramBuilder::new("w-then-r");
        b.write(oid(0), imm(5)).read(oid(0), 0).ret(vec![reg(0)]);
        let m = MOperation::new(mid(2, 3), Arc::new(b.build().unwrap()), vec![]);
        let mut s = ReplicaStore::new(1);
        let rec = s.apply(&m);
        assert_eq!(rec.outputs, vec![5]);
        let read = &rec.ops[1];
        assert_eq!(read.writer, mid(2, 3));
        assert_eq!(read.version, 1, "anticipated post-bump version");
    }

    #[test]
    fn failed_dcas_leaves_store_unchanged() {
        let mut b = ProgramBuilder::new("dcas");
        let fail = b.fresh_label();
        b.read(oid(0), 0)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .write(oid(0), arg(1))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        let p = Arc::new(b.build().unwrap());
        let mut s = ReplicaStore::new(1);
        // Expect old value 9 (actual 0): fails.
        let m = MOperation::new(mid(0, 0), p, vec![9, 7]);
        let rec = s.apply(&m);
        assert_eq!(rec.outputs, vec![0]);
        assert_eq!(s.get(oid(0)), Versioned::INITIAL);
        assert_eq!(s.ts().as_slice(), &[0]);
    }

    #[test]
    fn deterministic_replay_across_replicas() {
        // Two stores applying the same m-operations in the same order end
        // identical — the property atomic delivery relies on.
        let ops = vec![
            MOperation::new(mid(0, 0), write_xy(), vec![1, 2]),
            MOperation::new(mid(1, 0), write_xy(), vec![3, 4]),
            MOperation::new(mid(0, 1), read_xy(), vec![]),
        ];
        let mut a = ReplicaStore::new(2);
        let mut b = ReplicaStore::new(2);
        for m in &ops {
            let ra = a.apply(m);
            let rb = b.apply(m);
            assert_eq!(ra, rb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = ReplicaStore::new(3);
        s.apply(&MOperation::new(mid(0, 0), write_xy(), vec![7, 8]));
        let snap = s.snapshot_full();
        let s2 = ReplicaStore::from_snapshot(3, &snap, s.ts().clone());
        assert_eq!(s, s2);
        let partial = s.snapshot_of(&[oid(1)]);
        assert_eq!(partial, vec![(oid(1), Versioned::new(8, 1, mid(0, 0)))]);
        let s3 = ReplicaStore::from_snapshot(3, &partial, s.ts().clone());
        assert_eq!(s3.get(oid(1)), s.get(oid(1)));
        assert_eq!(s3.get(oid(0)), Versioned::INITIAL);
    }

    #[test]
    fn try_apply_surfaces_program_faults() {
        let mut b = ProgramBuilder::new("needs-arg");
        b.write(oid(0), arg(0)).ret(vec![]);
        let m = MOperation::new(mid(0, 0), Arc::new(b.build().unwrap()), vec![]);
        let mut s = ReplicaStore::new(1);
        assert!(s.try_apply(&m).is_err());
        assert_eq!(s.get(oid(0)), Versioned::INITIAL, "store unchanged");
    }
}
