//! Figure 6: the m-linearizability protocol.
//!
//! Updates follow Figure 4 (A1/A2: atomic broadcast, apply at delivery).
//! Queries must not read stale values, so (A3) the issuing process sends a
//! "query" to all processes; (A4) each answers with its copy of the shared
//! objects and its `myts`; (A5) the issuer keeps the response with the
//! maximal timestamp; and (A6) once all `n` responses arrived, the query
//! executes against the retained snapshot and responds.
//!
//! Theorem 20: all executions are m-linearizable. Unlike the Attiya–Welch
//! linearizable implementation, no clock synchronization or message-delay
//! bound is assumed — the protocol is correct in a fully asynchronous
//! system.
//!
//! The paper notes (end of Section 5.2) that responders may send only the
//! objects the query touches; [`QueryScope::Relevant`] enables that
//! optimization, [`QueryScope::Full`] matches the pseudocode verbatim.

use std::collections::{HashMap, VecDeque};

use moc_abcast::{Abcast, Outbox};
use moc_core::ids::{ObjectId, ProcessId, QueryId};
use moc_core::mop::MOpClass;
use moc_core::value::Versioned;
use moc_core::vv::VersionVector;

use crate::store::ReplicaStore;
use crate::{Completion, MOperation, ProtocolMsg, ReplicaMetrics, ReplicaProtocol};

/// How much state a "query response" (action A4) carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryScope {
    /// The whole object array, as in the Figure 6 pseudocode.
    #[default]
    Full,
    /// Only the objects the query's program references — the optimization
    /// the paper points out is "easy to verify" correct.
    Relevant,
}

#[derive(Debug, Clone)]
struct PendingQuery {
    mop: MOperation,
    /// Best snapshot so far (`othX`, `othts`); `None` until the first
    /// response.
    best: Option<(Vec<(ObjectId, Versioned)>, VersionVector)>,
    responses: usize,
}

/// One process's replica running the Figure 6 protocol over atomic
/// broadcast implementation `A`.
#[derive(Debug, Clone)]
pub struct MlinReplica<A: Abcast<MOperation>> {
    me: ProcessId,
    n: usize,
    store: ReplicaStore,
    abcast: A,
    completions: VecDeque<Completion>,
    delivery_log: Vec<moc_core::ids::MOpId>,
    pending: HashMap<QueryId, PendingQuery>,
    next_query: u64,
    scope: QueryScope,
    metrics: ReplicaMetrics,
}

impl<A: Abcast<MOperation>> MlinReplica<A> {
    /// Switches the query-response payload policy (default
    /// [`QueryScope::Full`]).
    pub fn set_query_scope(&mut self, scope: QueryScope) {
        self.scope = scope;
    }

    /// Number of query rounds currently awaiting responses.
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    fn pump_abcast(&mut self, ab_out: &mut Outbox<A::Msg>, out: &mut Outbox<ProtocolMsg<A::Msg>>) {
        for (to, m) in ab_out.drain() {
            self.metrics.update_msgs_sent += 1;
            out.send(to, ProtocolMsg::Abcast(m));
        }
        for d in self.abcast.drain_delivered() {
            self.delivery_log.push(d.item.id);
            let rec = self.store.apply(&d.item);
            self.metrics.updates_applied += 1;
            if d.item.id.process == self.me {
                self.completions.push_back(Completion {
                    id: d.item.id,
                    outputs: rec.outputs,
                    ops: rec.ops,
                    treated_as: MOpClass::Update,
                    label: d.item.program.name().to_string(),
                });
            }
        }
    }

    /// A6: all responses received — run the query on the retained snapshot.
    fn finish_query(&mut self, qid: QueryId) {
        let pq = self.pending.remove(&qid).expect("pending query exists");
        let (state, ts) = pq
            .best
            .expect("n >= 1 responses implies a snapshot was retained");
        let mut snapshot = ReplicaStore::from_snapshot(self.store.num_objects(), &state, ts);
        let rec = snapshot.apply(&pq.mop);
        debug_assert!(
            rec.ops.iter().all(|op| op.is_read()),
            "query m-operations must not write"
        );
        self.metrics.queries_completed += 1;
        self.completions.push_back(Completion {
            id: pq.mop.id,
            outputs: rec.outputs,
            ops: rec.ops,
            treated_as: MOpClass::Query,
            label: pq.mop.program.name().to_string(),
        });
    }
}

impl<A: Abcast<MOperation>> ReplicaProtocol for MlinReplica<A> {
    type Msg = ProtocolMsg<A::Msg>;

    fn new(me: ProcessId, n: usize, num_objects: usize) -> Self {
        MlinReplica {
            me,
            n,
            store: ReplicaStore::new(num_objects),
            abcast: A::new(me, n),
            completions: VecDeque::new(),
            delivery_log: Vec::new(),
            pending: HashMap::new(),
            next_query: 0,
            scope: QueryScope::default(),
            metrics: ReplicaMetrics::default(),
        }
    }

    fn protocol_name() -> &'static str {
        "mlin"
    }

    fn invoke(&mut self, mop: MOperation, out: &mut Outbox<Self::Msg>) {
        if mop.is_update() {
            // A1: atomically broadcast.
            let mut ab_out = Outbox::new(self.n);
            self.abcast.broadcast(mop, &mut ab_out);
            self.pump_abcast(&mut ab_out, out);
        } else {
            // A3: othts := 0; send "query" to all processes.
            let qid = QueryId::new(self.me, self.next_query);
            self.next_query += 1;
            self.pending.insert(
                qid,
                PendingQuery {
                    mop,
                    best: None,
                    responses: 0,
                },
            );
            let objects = match self.scope {
                QueryScope::Full => None,
                QueryScope::Relevant => Some(
                    self.pending[&qid]
                        .mop
                        .program
                        .referenced_objects()
                        .into_iter()
                        .collect::<Vec<_>>(),
                ),
            };
            self.metrics.query_msgs_sent += self.n as u64;
            for p in 0..self.n {
                out.send(
                    ProcessId::new(p as u32),
                    ProtocolMsg::Query {
                        qid,
                        objects: objects.clone(),
                    },
                );
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            ProtocolMsg::Abcast(am) => {
                let mut ab_out = Outbox::new(self.n);
                self.abcast.on_message(from, am, &mut ab_out);
                self.pump_abcast(&mut ab_out, out);
            }
            ProtocolMsg::Query { qid, objects } => {
                // A4: answer with ⟨myX, myts⟩, projected to the requested
                // objects when the issuer asked for a subset.
                let state = match objects {
                    None => self.store.snapshot_full(),
                    Some(objs) => self.store.snapshot_of(&objs),
                };
                self.metrics.query_msgs_sent += 1;
                self.metrics.query_values_sent += state.len() as u64;
                out.send(
                    from,
                    ProtocolMsg::QueryResponse {
                        qid,
                        state,
                        ts: self.store.ts().clone(),
                    },
                );
            }
            ProtocolMsg::QueryResponse { qid, state, ts } => {
                let Some(pq) = self.pending.get_mut(&qid) else {
                    // A response for a query we no longer (or never) track.
                    // Over the paper's reliable channels this cannot
                    // happen; under an imperfect link (dedup disabled —
                    // the chaos suite's sabotage mode) late or duplicated
                    // responses do arrive, and dropping them silently is
                    // the robust choice.
                    return;
                };
                // A5: keep the maximal-timestamp response. Replica states
                // are prefixes of one total broadcast order, so timestamps
                // are totally ordered componentwise.
                let replace = match &pq.best {
                    None => true,
                    Some((_, best_ts)) => best_ts.lt(&ts),
                };
                if replace {
                    pq.best = Some((state, ts));
                }
                pq.responses += 1;
                if pq.responses == self.n {
                    self.finish_query(qid);
                }
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    fn store(&self) -> &ReplicaStore {
        &self.store
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.metrics
    }

    fn delivery_log(&self) -> &[moc_core::ids::MOpId] {
        &self.delivery_log
    }

    fn abcast_deadline(&self) -> Option<u64> {
        self.abcast.next_deadline()
    }

    fn on_abcast_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_tick(now_ns, &mut ab_out);
        // Ticks can complete a view change, which can release deliveries.
        self.pump_abcast(&mut ab_out, out);
    }

    fn on_abcast_restart(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        let mut ab_out = Outbox::new(self.n);
        self.abcast.on_restart(now_ns, &mut ab_out);
        self.pump_abcast(&mut ab_out, out);
    }

    fn set_failover_timeouts(&mut self, base_ns: u64, max_ns: u64) {
        self.abcast.set_failover_timeouts(base_ns, max_ns);
    }

    fn set_batching(&mut self, cfg: moc_abcast::BatchConfig) {
        self.abcast.set_batching(cfg);
    }

    fn batch_stats(&self) -> moc_abcast::BatchStats {
        self.abcast.batch_stats()
    }

    fn abcast_transcript(&self) -> Vec<String> {
        self.abcast.transcript()
    }
}

/// [`MlinReplica`] with [`QueryScope::Relevant`] baked in at construction,
/// so it can be used wherever a [`ReplicaProtocol`] type is expected (the
/// harness constructs replicas itself).
#[derive(Debug, Clone)]
pub struct MlinRelevant<A: Abcast<MOperation>>(MlinReplica<A>);

impl<A: Abcast<MOperation>> ReplicaProtocol for MlinRelevant<A> {
    type Msg = ProtocolMsg<A::Msg>;

    fn new(me: ProcessId, n: usize, num_objects: usize) -> Self {
        let mut inner = MlinReplica::new(me, n, num_objects);
        inner.set_query_scope(QueryScope::Relevant);
        MlinRelevant(inner)
    }

    fn protocol_name() -> &'static str {
        "mlin-relevant"
    }

    fn invoke(&mut self, mop: MOperation, out: &mut Outbox<Self::Msg>) {
        self.0.invoke(mop, out);
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        self.0.on_message(from, msg, out);
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        self.0.drain_completions()
    }

    fn store(&self) -> &ReplicaStore {
        self.0.store()
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.0.metrics()
    }

    fn delivery_log(&self) -> &[moc_core::ids::MOpId] {
        self.0.delivery_log()
    }

    fn abcast_deadline(&self) -> Option<u64> {
        self.0.abcast_deadline()
    }

    fn on_abcast_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        self.0.on_abcast_tick(now_ns, out);
    }

    fn on_abcast_restart(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        self.0.on_abcast_restart(now_ns, out);
    }

    fn set_failover_timeouts(&mut self, base_ns: u64, max_ns: u64) {
        self.0.set_failover_timeouts(base_ns, max_ns);
    }

    fn set_batching(&mut self, cfg: moc_abcast::BatchConfig) {
        self.0.set_batching(cfg);
    }

    fn batch_stats(&self) -> moc_abcast::BatchStats {
        self.0.batch_stats()
    }

    fn abcast_transcript(&self) -> Vec<String> {
        self.0.abcast_transcript()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_abcast::SequencerAbcast;
    use moc_core::ids::MOpId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use std::sync::Arc;

    type Replica = MlinReplica<SequencerAbcast<MOperation>>;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn read_x(p: u32, seq: u32) -> MOperation {
        let mut b = ProgramBuilder::new("rx");
        b.read(oid(0), 0).ret(vec![reg(0)]);
        MOperation::new(
            MOpId::new(pid(p), seq),
            Arc::new(b.build().unwrap()),
            vec![],
        )
    }

    /// A query fans out n "query" messages and completes only after all n
    /// responses, reading from the freshest snapshot.
    #[test]
    fn query_waits_for_all_responses_and_takes_max() {
        let n = 3;
        let mut r = Replica::new(pid(1), n, 1);
        let mut out = Outbox::new(n);
        r.invoke(read_x(1, 0), &mut out);
        let queries = out.drain();
        assert_eq!(queries.len(), 3, "query to all processes, self included");
        assert_eq!(r.pending_queries(), 1);

        let qid = match &queries[0].1 {
            ProtocolMsg::Query { qid, objects } => {
                assert!(objects.is_none(), "Full scope requests everything");
                *qid
            }
            other => panic!("expected query, got {other:?}"),
        };

        // Fabricate three responses with increasing freshness; deliver the
        // freshest in the middle to exercise the max rule.
        let writer = MOpId::new(pid(2), 0);
        let respond = |ver: u64, val: i64| ProtocolMsg::QueryResponse {
            qid,
            state: vec![(
                oid(0),
                if ver == 0 {
                    Versioned::INITIAL
                } else {
                    Versioned::new(val, ver, writer)
                },
            )],
            ts: VersionVector::from_entries(vec![ver]),
        };
        let mut sink = Outbox::new(n);
        r.on_message(pid(0), respond(0, 0), &mut sink);
        assert!(r.drain_completions().is_empty());
        r.on_message(pid(2), respond(2, 42), &mut sink);
        assert!(r.drain_completions().is_empty(), "still one response short");
        r.on_message(pid(1), respond(1, 17), &mut sink);
        let done = r.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outputs, vec![42], "freshest snapshot wins");
        assert_eq!(done[0].treated_as, MOpClass::Query);
        assert_eq!(done[0].ops[0].writer, writer);
        assert_eq!(done[0].ops[0].version, 2);
        assert_eq!(r.pending_queries(), 0);
    }

    /// Responders answer queries from their current copy (A4).
    #[test]
    fn query_response_carries_store_and_ts() {
        let n = 2;
        let mut r = Replica::new(pid(0), n, 2);
        let qid = QueryId::new(pid(1), 0);
        let mut out = Outbox::new(n);
        r.on_message(pid(1), ProtocolMsg::Query { qid, objects: None }, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, pid(1), "response goes back to the asker");
        match &msgs[0].1 {
            ProtocolMsg::QueryResponse { qid: q, state, ts } => {
                assert_eq!(*q, qid);
                assert_eq!(state.len(), 2);
                assert_eq!(ts.as_slice(), &[0, 0]);
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    /// Under `Relevant` scope the issuer keeps only the objects the query
    /// references.
    #[test]
    fn relevant_scope_filters_snapshot() {
        let n = 1;
        let mut r = Replica::new(pid(0), n, 3);
        r.set_query_scope(QueryScope::Relevant);
        let mut out = Outbox::new(n);
        r.invoke(read_x(0, 0), &mut out);
        // Self-response loop: deliver the query to ourselves and the
        // response back.
        let msgs = out.drain();
        let mut out2 = Outbox::new(n);
        for (_, m) in msgs {
            r.on_message(pid(0), m, &mut out2);
        }
        for (_, m) in out2.drain() {
            r.on_message(pid(0), m, &mut out2_sink());
        }
        let done = r.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outputs, vec![0]);
    }

    fn out2_sink() -> Outbox<ProtocolMsg<<SequencerAbcast<MOperation> as Abcast<MOperation>>::Msg>>
    {
        Outbox::new(1)
    }

    /// Updates write a single program through abcast exactly as in msc.
    #[test]
    fn updates_are_broadcast() {
        let n = 2;
        let mut r = Replica::new(pid(1), n, 1);
        let mut b = ProgramBuilder::new("wx");
        b.write(oid(0), imm(9)).ret(vec![]);
        let m = MOperation::new(MOpId::new(pid(1), 0), Arc::new(b.build().unwrap()), vec![]);
        let mut out = Outbox::new(n);
        r.invoke(m, &mut out);
        assert_eq!(out.len(), 1, "submit to sequencer");
        assert_eq!(r.metrics().update_msgs_sent, 1);
        assert!(r.drain_completions().is_empty());
    }
}
