//! Validation of the paper's protocol correctness theorems on randomized
//! executions.
//!
//! * Theorem 15 — every execution of the Figure 4 protocol is
//!   m-sequentially consistent.
//! * Theorem 20 — every execution of the Figure 6 protocol is
//!   m-linearizable.
//!
//! Each run uses the deterministic simulator with a different seed and
//! delay model, then feeds the recorded history to the checker. Because the
//! protocols enforce the WW-constraint through atomic broadcast, the
//! polynomial Theorem 7 checker applies when the broadcast order is
//! supplied; the brute-force NP checker cross-validates on the plain base
//! relations.

use std::sync::Arc;

use moc_checker::conditions::{check, check_with_relation, Condition, Strategy};
use moc_core::constraints::Constraint;
use moc_core::ids::ObjectId;
use moc_core::program::{arg, imm, reg, CmpOp, Program, ProgramBuilder};
use moc_core::relations::real_time;
use moc_protocol::{
    run_cluster, AggregateOverSequencer, ClientScript, ClusterConfig, MlinOverIsis,
    MlinOverSequencer, MscOverIsis, MscOverSequencer, OpSpec, ReplicaProtocol, RunReport,
};
use moc_sim::{DelayModel, NetworkConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn oid(i: u32) -> ObjectId {
    ObjectId::new(i)
}

/// A small program zoo exercising multi-object reads, writes and DCAS.
struct Zoo {
    programs: Vec<(Arc<Program>, usize)>, // (program, arity)
}

impl Zoo {
    fn new(num_objects: u32) -> Self {
        let mut programs = Vec::new();
        // Multi-object queries: read k consecutive objects.
        for k in 1..=3u32.min(num_objects) {
            let mut b = ProgramBuilder::new(format!("read{k}"));
            for j in 0..k {
                b.read(oid(j % num_objects), j as u8);
            }
            b.ret((0..k).map(|j| reg(j as u8)).collect());
            programs.push((Arc::new(b.build().unwrap()), 0));
        }
        // Multi-object updates: write pairs.
        for j in 0..num_objects {
            let x = oid(j);
            let y = oid((j + 1) % num_objects);
            let mut b = ProgramBuilder::new(format!("wpair{j}"));
            b.write(x, arg(0));
            if y != x {
                b.write(y, arg(1));
            }
            b.ret(vec![]);
            programs.push((Arc::new(b.build().unwrap()), 2));
        }
        // Increment (read-modify-write).
        let mut b = ProgramBuilder::new("inc");
        b.read(oid(0), 0)
            .add(0, reg(0), imm(1))
            .write(oid(0), reg(0))
            .ret(vec![reg(0)]);
        programs.push((Arc::new(b.build().unwrap()), 0));
        // DCAS on the first two objects (when available).
        if num_objects >= 2 {
            let mut b = ProgramBuilder::new("dcas");
            let fail = b.fresh_label();
            b.read(oid(0), 0)
                .read(oid(1), 1)
                .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
                .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
                .write(oid(0), arg(2))
                .write(oid(1), arg(3))
                .ret(vec![imm(1)]);
            b.bind(fail);
            b.ret(vec![imm(0)]);
            programs.push((Arc::new(b.build().unwrap()), 4));
        }
        Zoo { programs }
    }

    fn random_scripts(
        &self,
        rng: &mut StdRng,
        processes: usize,
        ops_per_process: usize,
        update_fraction: f64,
    ) -> Vec<ClientScript> {
        (0..processes)
            .map(|_| {
                let ops = (0..ops_per_process)
                    .map(|_| {
                        let updates: Vec<_> = self
                            .programs
                            .iter()
                            .filter(|(p, _)| p.is_potential_update())
                            .collect();
                        let queries: Vec<_> = self
                            .programs
                            .iter()
                            .filter(|(p, _)| !p.is_potential_update())
                            .collect();
                        let (p, arity) = if rng.gen_bool(update_fraction) {
                            updates[rng.gen_range(0..updates.len())]
                        } else {
                            queries[rng.gen_range(0..queries.len())]
                        };
                        let args = (0..*arity).map(|_| rng.gen_range(0..100)).collect();
                        OpSpec::new(Arc::clone(p), args)
                    })
                    .collect();
                ClientScript::new(ops).with_think_time(50)
            })
            .collect()
    }
}

fn networks() -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::fifo(500),
        NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 10_000 }),
        NetworkConfig::with_delay(DelayModel::Exponential { mean: 2_000 }),
    ]
}

fn run<R: ReplicaProtocol + 'static>(seed: u64, network: NetworkConfig) -> RunReport {
    let num_objects = 4;
    let zoo = Zoo::new(num_objects as u32);
    let mut rng = StdRng::seed_from_u64(seed);
    let scripts = zoo.random_scripts(&mut rng, 4, 6, 0.5);
    let config = ClusterConfig::new(num_objects, seed).with_network(network);
    run_cluster::<R>(&config, scripts)
}

/// Asserts the report's history satisfies `condition`, via the fast
/// Theorem 7 path using the recorded broadcast order, cross-checked with
/// the brute-force searcher on the plain base relation.
fn assert_satisfies(report: &RunReport, condition: Condition) {
    // Fast path: base relation ∪ ~ww satisfies the WW-constraint.
    let mut rel = report.ww_relation();
    if condition == Condition::MLinearizability {
        rel = rel.union(&real_time(&report.history));
    }
    let fast = check_with_relation(
        &report.history,
        condition,
        &rel,
        Strategy::Constraint(Constraint::Ww),
    )
    .unwrap_or_else(|e| panic!("{}: fast check errored: {e}", report.protocol));
    assert!(
        fast.satisfied,
        "{}: {condition} violated (fast path): {:?}",
        report.protocol, fast.reason
    );

    // Brute force on the plain relation (no ~ww hint): must agree.
    let brute = check(&report.history, condition, Strategy::Auto)
        .unwrap_or_else(|e| panic!("{}: brute check errored: {e}", report.protocol));
    assert!(
        brute.satisfied,
        "{}: {condition} violated (brute force): {:?}",
        report.protocol, brute.reason
    );
}

fn assert_replicas_converged(report: &RunReport) {
    let first = &report.final_stores[0];
    for (i, s) in report.final_stores.iter().enumerate() {
        assert_eq!(s, first, "{}: replica {i} diverged", report.protocol);
    }
}

#[test]
fn theorem15_msc_sequencer_is_m_sequentially_consistent() {
    for (i, network) in networks().into_iter().enumerate() {
        for seed in 0..5u64 {
            let report = run::<MscOverSequencer>(seed * 31 + i as u64, network);
            assert_satisfies(&report, Condition::MSequentialConsistency);
            assert_replicas_converged(&report);
        }
    }
}

#[test]
fn theorem15_msc_isis_is_m_sequentially_consistent() {
    for (i, network) in networks().into_iter().enumerate() {
        for seed in 0..5u64 {
            let report = run::<MscOverIsis>(seed * 17 + i as u64, network);
            assert_satisfies(&report, Condition::MSequentialConsistency);
            assert_replicas_converged(&report);
        }
    }
}

#[test]
fn theorem20_mlin_sequencer_is_m_linearizable() {
    for (i, network) in networks().into_iter().enumerate() {
        for seed in 0..5u64 {
            let report = run::<MlinOverSequencer>(seed * 13 + i as u64, network);
            assert_satisfies(&report, Condition::MLinearizability);
            // m-linearizability implies the weaker conditions too.
            assert_satisfies(&report, Condition::MSequentialConsistency);
            assert_satisfies(&report, Condition::MNormality);
            assert_replicas_converged(&report);
        }
    }
}

#[test]
fn theorem20_mlin_isis_is_m_linearizable() {
    for (i, network) in networks().into_iter().enumerate() {
        for seed in 0..5u64 {
            let report = run::<MlinOverIsis>(seed * 7 + i as u64, network);
            assert_satisfies(&report, Condition::MLinearizability);
            assert_replicas_converged(&report);
        }
    }
}

#[test]
fn aggregate_baseline_is_m_linearizable() {
    for seed in 0..5u64 {
        let report = run::<AggregateOverSequencer>(seed, NetworkConfig::default());
        assert_satisfies(&report, Condition::MLinearizability);
        assert_replicas_converged(&report);
    }
}

/// The Figure 4 protocol is m-sequentially consistent but *not*
/// m-linearizable: its local queries can return stale values after an
/// update elsewhere has already responded. Exhibit a concrete execution.
#[test]
fn msc_admits_non_linearizable_executions() {
    let mut b = ProgramBuilder::new("wx");
    b.write(oid(0), imm(1)).ret(vec![]);
    let wx = Arc::new(b.build().unwrap());
    let mut b = ProgramBuilder::new("rx");
    b.read(oid(0), 0).ret(vec![reg(0)]);
    let rx = Arc::new(b.build().unwrap());

    let mut found_violation = false;
    for seed in 0..40u64 {
        // P0 writes x; P1 queries x well after the write responded, but
        // (with slow links to P1) possibly before the broadcast reaches it.
        let scripts = vec![
            ClientScript::new(vec![OpSpec::new(Arc::clone(&wx), vec![])]).starting_at(1),
            ClientScript::new(vec![OpSpec::new(Arc::clone(&rx), vec![])]).starting_at(4_000),
        ];
        let config = ClusterConfig::new(1, seed).with_network(NetworkConfig::with_delay(
            DelayModel::Uniform {
                lo: 100,
                hi: 50_000,
            },
        ));
        let report = run_cluster::<MscOverSequencer>(&config, scripts);
        // Always m-sequentially consistent (Theorem 15)...
        assert_satisfies(&report, Condition::MSequentialConsistency);
        // ...but some seeds produce a stale read that violates
        // m-linearizability.
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        if !lin.satisfied {
            found_violation = true;
            break;
        }
    }
    assert!(
        found_violation,
        "expected some seed to exhibit a stale local query"
    );
}

/// The mlin protocol's update path and the msc protocol's update path are
/// identical; the difference is query freshness. Verify mlin queries never
/// return a value older than any update that responded before the query
/// was invoked (the real-time guarantee, witnessed structurally).
#[test]
fn mlin_queries_are_fresh() {
    let mut b = ProgramBuilder::new("wx");
    b.write(oid(0), imm(1)).ret(vec![]);
    let wx = Arc::new(b.build().unwrap());
    let mut b = ProgramBuilder::new("rx");
    b.read(oid(0), 0).ret(vec![reg(0)]);
    let rx = Arc::new(b.build().unwrap());

    for seed in 0..40u64 {
        let scripts = vec![
            ClientScript::new(vec![OpSpec::new(Arc::clone(&wx), vec![])]).starting_at(1),
            ClientScript::new(vec![OpSpec::new(Arc::clone(&rx), vec![])]).starting_at(200_000),
        ];
        let config = ClusterConfig::new(1, seed).with_network(NetworkConfig::with_delay(
            DelayModel::Uniform {
                lo: 100,
                hi: 50_000,
            },
        ));
        let report = run_cluster::<MlinOverSequencer>(&config, scripts);
        let query = report
            .history
            .records()
            .iter()
            .find(|r| r.label == "rx")
            .expect("query recorded");
        let update = report
            .history
            .records()
            .iter()
            .find(|r| r.label == "wx")
            .expect("update recorded");
        if update.responded_at < query.invoked_at {
            assert_eq!(
                query.outputs,
                vec![1],
                "seed {seed}: query invoked after the update responded must see it"
            );
        }
    }
}
