//! Property tests for the protocols: Theorems 15 and 20 must hold for
//! arbitrary workload shapes, cluster sizes, delay models and seeds —
//! not just the fixed grids of `theorems.rs`.

use std::sync::Arc;

use moc_checker::conditions::{check_with_relation, Condition, Strategy as CheckStrategy};
use moc_core::constraints::Constraint;
use moc_core::ids::ObjectId;
use moc_core::program::{arg, imm, reg, CmpOp, ProgramBuilder};
use moc_core::relations::real_time;
use moc_protocol::{
    run_cluster, ClientScript, ClusterConfig, MlinOverSequencer, MscOverIsis, OpSpec,
    ReplicaProtocol, RunReport,
};
use moc_sim::{DelayModel, NetworkConfig};
use proptest::prelude::*;

fn oid(i: u32) -> ObjectId {
    ObjectId::new(i)
}

#[derive(Debug, Clone)]
enum OpShape {
    ReadPair(u32, u32),
    WritePair(u32, u32, i64, i64),
    Increment(u32),
    Dcas(u32, u32, i64),
}

const OBJECTS: u32 = 3;

fn op_strategy() -> impl Strategy<Value = OpShape> {
    prop_oneof![
        (0..OBJECTS, 0..OBJECTS).prop_map(|(a, b)| OpShape::ReadPair(a, b)),
        (0..OBJECTS, 0..OBJECTS, -5i64..5, -5i64..5)
            .prop_map(|(a, b, v, w)| OpShape::WritePair(a, b, v, w)),
        (0..OBJECTS).prop_map(OpShape::Increment),
        (0..OBJECTS, 0..OBJECTS, -5i64..5).prop_map(|(a, b, v)| OpShape::Dcas(a, b, v)),
    ]
}

fn to_spec(shape: &OpShape) -> OpSpec {
    match *shape {
        OpShape::ReadPair(a, b) => {
            let mut p = ProgramBuilder::new("rp");
            p.read(oid(a), 0);
            if a != b {
                p.read(oid(b), 1);
            }
            p.ret(vec![reg(0), reg(1)]);
            OpSpec::new(Arc::new(p.build().unwrap()), vec![])
        }
        OpShape::WritePair(a, b, v, w) => {
            let mut p = ProgramBuilder::new("wp");
            p.write(oid(a), imm(v));
            if a != b {
                p.write(oid(b), imm(w));
            }
            p.ret(vec![]);
            OpSpec::new(Arc::new(p.build().unwrap()), vec![])
        }
        OpShape::Increment(a) => {
            let mut p = ProgramBuilder::new("inc");
            p.read(oid(a), 0)
                .add(0, reg(0), imm(1))
                .write(oid(a), reg(0))
                .ret(vec![reg(0)]);
            OpSpec::new(Arc::new(p.build().unwrap()), vec![])
        }
        OpShape::Dcas(a, b, v) => {
            let b2 = if a == b { (a + 1) % OBJECTS } else { b };
            let mut p = ProgramBuilder::new("dcas");
            let fail = p.fresh_label();
            p.read(oid(a), 0)
                .read(oid(b2), 1)
                .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
                .write(oid(a), imm(v))
                .write(oid(b2), imm(v))
                .ret(vec![imm(1)]);
            p.bind(fail);
            p.ret(vec![imm(0)]);
            OpSpec::new(Arc::new(p.build().unwrap()), vec![0])
        }
    }
}

fn delay_strategy() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (1u64..2_000).prop_map(DelayModel::Fixed),
        (1u64..100, 100u64..30_000).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (10u64..5_000).prop_map(|mean| DelayModel::Exponential { mean }),
    ]
}

fn run<R: ReplicaProtocol + 'static>(
    ops: &[Vec<OpShape>],
    delay: DelayModel,
    seed: u64,
) -> RunReport {
    let scripts: Vec<ClientScript> = ops
        .iter()
        .map(|per_proc| {
            ClientScript::new(per_proc.iter().map(to_spec).collect()).with_think_time(20)
        })
        .collect();
    let config =
        ClusterConfig::new(OBJECTS as usize, seed).with_network(NetworkConfig::with_delay(delay));
    run_cluster::<R>(&config, scripts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 15 over arbitrary workloads, on the ISIS substrate.
    #[test]
    fn theorem15_holds_for_arbitrary_workloads(
        ops in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..5), 1..5),
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        let report = run::<MscOverIsis>(&ops, delay, seed);
        let rel = report.ww_relation();
        let verdict = check_with_relation(
            &report.history,
            Condition::MSequentialConsistency,
            &rel,
            CheckStrategy::Constraint(Constraint::Ww),
        ).expect("protocol histories are under WW");
        prop_assert!(verdict.satisfied, "{:?}", verdict.reason);
        // All replicas converged.
        for s in &report.final_stores[1..] {
            prop_assert_eq!(s, &report.final_stores[0]);
        }
    }

    /// Theorem 20 over arbitrary workloads.
    #[test]
    fn theorem20_holds_for_arbitrary_workloads(
        ops in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..5), 1..5),
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        let report = run::<MlinOverSequencer>(&ops, delay, seed);
        let rel = report.ww_relation().union(&real_time(&report.history));
        let verdict = check_with_relation(
            &report.history,
            Condition::MLinearizability,
            &rel,
            CheckStrategy::Constraint(Constraint::Ww),
        ).expect("protocol histories are under WW");
        prop_assert!(verdict.satisfied, "{:?}", verdict.reason);
    }

    /// Increment counting: with u update-only increment workloads the
    /// final counter equals the number of increments (lost-update freedom),
    /// regardless of schedule.
    #[test]
    fn increments_are_never_lost(
        per_proc in proptest::collection::vec(1usize..5, 1..5),
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        let ops: Vec<Vec<OpShape>> = per_proc
            .iter()
            .map(|&k| vec![OpShape::Increment(0); k])
            .collect();
        let total: usize = per_proc.iter().sum();
        let report = run::<MscOverIsis>(&ops, delay, seed);
        for store in &report.final_stores {
            prop_assert_eq!(store.get(oid(0)).value, total as i64);
        }
    }
}
