//! # moc-audit
//!
//! Independent re-validation of `moc-cert` certificates (the documents
//! `moc_checker::certificate` emits) against raw histories.
//!
//! This crate is the *trusted kernel* of the verdict pipeline: it depends
//! only on `moc-core` — not on the checker whose output it audits — so a
//! bug in the checker's saturation, pruning or search cannot also hide in
//! the auditor. Every check here is polynomial in the size of the history
//! plus the certificate:
//!
//! * a **witness** proof is replayed: the order must be a permutation,
//!   a linear extension of the condition's base relation `~H`, legal under
//!   the version-replay semantics of D 4.6, and its serialized legality
//!   trace must match the replay exactly;
//! * a **cycle** proof is checked edge by edge: `po`/`rf` edges against the
//!   history, `rt` edges only for m-linearizability, `ox` edges only for
//!   m-normality, and each `~rw` edge against D 4.11 — its interference
//!   triple must exist and its premise `β ~ γ` must be justified by a
//!   chain of strictly earlier edges of the same proof; finally the named
//!   edges must form a closed walk;
//! * an **exhaustion** proof cannot be independently replayed in
//!   polynomial time (Theorems 1–2: the problem is NP-complete), so it is
//!   only *attested*: well-formed, correctly bound, verdict-consistent.
//!
//! A certificate is bound to its history by an FNV-1a fingerprint of the
//! canonical text encoding; a certificate presented with any other history
//! is rejected before any proof checking happens.

use std::collections::BTreeSet;

use moc_core::codec;
use moc_core::commute::{
    derive_class, CommuteCert, CommuteMatrix, MoverClass, COMMUTE_SIDE_CONDITIONS,
};
use moc_core::history::{History, MOpIdx};
use moc_core::ids::ObjectId;
use moc_core::json::{self, Json};
use moc_core::legality::sequence_is_legal;
use moc_core::program::Program;
use moc_core::relations::{object_order, process_order, reads_from, real_time, Relation};
use moc_core::shard::{fingerprint_programs, ShardCert, ShardComposition, ShardEdgeKind};

/// The condition named by a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// `"sc"` — m-sequential consistency: `~H = ~p ∪ ~rf`.
    Sc,
    /// `"lin"` — m-linearizability: `~H = ~p ∪ ~rf ∪ ~t`.
    Lin,
    /// `"normal"` — m-normality: `~H = ~p ∪ ~rf ∪ ~x`.
    Normal,
}

impl Condition {
    fn base_relation(self, h: &History) -> Relation {
        let base = process_order(h).union(&reads_from(h));
        match self {
            Condition::Sc => base,
            Condition::Lin => base.union(&real_time(h)),
            Condition::Normal => base.union(&object_order(h)),
        }
    }
}

/// A successful audit: how much of the certificate was re-validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The witness linearization replayed end to end.
    WitnessVerified,
    /// The `~H+` refutation cycle checked edge by edge.
    CycleVerified,
    /// The exhaustion attestation is well-formed and correctly bound; its
    /// search cannot be independently replayed in polynomial time.
    ExhaustionAttested {
        /// The checker's transposition table saturated during the search:
        /// memo entries were evicted, so the node budget may have been
        /// consumed by re-exploration rather than by genuinely new states.
        memo_limited: bool,
    },
}

impl Verdict {
    /// Whether the proof was fully re-validated (vs merely attested).
    pub fn is_verified(self) -> bool {
        !matches!(self, Verdict::ExhaustionAttested { .. })
    }
}

/// Audits certificate text against a history. `Err` carries the first
/// reason the certificate was rejected.
///
/// # Errors
///
/// Any malformation, binding mismatch, or proof defect rejects.
pub fn audit(h: &History, cert_text: &str) -> Result<Verdict, String> {
    let doc = json::parse(cert_text).map_err(|e| format!("certificate is not valid JSON: {e}"))?;
    audit_document(h, &doc)
}

/// Audits an already-parsed certificate document against a history.
///
/// # Errors
///
/// Any malformation, binding mismatch, or proof defect rejects.
pub fn audit_document(h: &History, doc: &Json) -> Result<Verdict, String> {
    if field(doc, "format")?.as_str() != Some("moc-cert") {
        return Err("format is not \"moc-cert\"".into());
    }
    if uint(doc, "version")? != 1 {
        return Err("unsupported certificate version (expected 1)".into());
    }
    let condition = match field(doc, "condition")?.as_str() {
        Some("sc") => Condition::Sc,
        Some("lin") => Condition::Lin,
        Some("normal") => Condition::Normal,
        _ => return Err("condition must be \"sc\", \"lin\" or \"normal\"".into()),
    };
    let admissible = match field(doc, "verdict")?.as_str() {
        Some("admissible") => true,
        Some("inadmissible") => false,
        _ => return Err("verdict must be \"admissible\" or \"inadmissible\"".into()),
    };

    let binding = field(doc, "history")?;
    if uint(binding, "ops")? != h.len() as u64 {
        return Err(format!(
            "certificate is for {} m-operations, history has {}",
            uint(binding, "ops")?,
            h.len()
        ));
    }
    if uint(binding, "objects")? != h.num_objects() as u64 {
        return Err("certificate object count does not match the history".into());
    }
    let expected = format!("{:016x}", codec::fingerprint(h));
    if field(binding, "fnv1a")?.as_str() != Some(expected.as_str()) {
        return Err(
            "history fingerprint mismatch: certificate is bound to a different history".into(),
        );
    }

    let proof = field(doc, "proof")?;
    match field(proof, "kind")?.as_str() {
        Some("witness") => {
            if !admissible {
                return Err("witness proof with an inadmissible verdict".into());
            }
            check_witness(h, condition, proof)?;
            Ok(Verdict::WitnessVerified)
        }
        Some("cycle") => {
            if admissible {
                return Err("cycle proof with an admissible verdict".into());
            }
            check_cycle(h, condition, proof)?;
            Ok(Verdict::CycleVerified)
        }
        Some("exhaustion") => {
            if admissible {
                return Err("exhaustion proof with an admissible verdict".into());
            }
            for key in [
                "nodes",
                "memo_hits",
                "memo_peak",
                "components",
                "peeled",
                "forced_edges",
            ] {
                uint(proof, key)?;
            }
            // Run metadata recorded since the `--threads auto` default:
            // optional (older certificates omit it), but nonsensical
            // values reject.
            if proof.get("threads").is_some() && uint(proof, "threads")? == 0 {
                return Err("field \"threads\" must be at least 1".into());
            }
            // Symmetry-reduction statistics, recorded since the reduction
            // landed: optional (older certificates omit it), but when
            // present it must be a well-formed count.
            if proof.get("symmetry_skips").is_some() {
                uint(proof, "symmetry_skips")?;
            }
            let memo_limited = field(proof, "memo_saturated")?
                .as_bool()
                .ok_or("field \"memo_saturated\" must be a boolean")?;
            Ok(Verdict::ExhaustionAttested { memo_limited })
        }
        _ => Err("proof kind must be \"witness\", \"cycle\" or \"exhaustion\"".into()),
    }
}

/// Convenience: parse a `history v1` text and audit a certificate
/// against it.
///
/// # Errors
///
/// History parse failures and all [`audit`] rejections.
pub fn audit_texts(history_text: &str, cert_text: &str) -> Result<Verdict, String> {
    let h = codec::from_text(history_text).map_err(|e| format!("cannot parse history: {e}"))?;
    audit(&h, cert_text)
}

/// A successful shard-certificate audit: what was re-validated.
///
/// Like [`Verdict::ExhaustionAttested`], refined footprint claims are
/// *attested* (checked sound against the syntactic footprint, not
/// re-derived — re-deriving would require the analyzer this crate must
/// not depend on); everything else is fully recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardVerdict {
    /// Number of shards in the validated partition.
    pub num_shards: u32,
    /// Programs whose claimed footprint is closed within one shard.
    pub single_shard_programs: usize,
    /// Cross-shard conflict edges the audit re-derived and matched.
    pub cross_edges: usize,
    /// Whether any entry carries attested (refined) claims.
    pub refined_attested: bool,
}

/// Audits a `moc-shard-cert` document against the program set it claims
/// to describe. Linear in the certificate plus quadratic in the number of
/// *programs* (the edge recomputation) — never in any history.
///
/// Checks, in order: schema + version, program-set fingerprint binding,
/// partition well-formedness (total, disjoint, dense), per-program
/// footprint soundness (claims never exceed the syntactic footprint;
/// unrefined claims equal it exactly) and closure (recomputed shard spans
/// must match, and a single-shard claim must be closed in that shard),
/// cross-shard edge coverage (the certificate must list *exactly* the
/// conflict edges touching a straddling program — a silently dropped
/// conflict and a fabricated edge both reject), and the composition
/// verdict (re-derived from certificate data alone).
///
/// # Errors
///
/// Any malformation, binding mismatch, or violated obligation rejects
/// with the first reason found.
pub fn audit_shard(programs: &[&Program], cert_text: &str) -> Result<ShardVerdict, String> {
    let cert = ShardCert::parse(cert_text)?;

    // Binding: computed from exactly this program set, in this order.
    let expected_fp = fingerprint_programs(programs);
    if cert.programs_fp != expected_fp {
        return Err(format!(
            "program-set fingerprint mismatch: certificate is bound to {:016x}, \
             input set fingerprints to {expected_fp:016x}",
            cert.programs_fp
        ));
    }
    if cert.programs.len() != programs.len() {
        return Err(format!(
            "certificate lists {} programs, input set has {}",
            cert.programs.len(),
            programs.len()
        ));
    }

    // Partition well-formedness: every object in exactly one shard,
    // shard ids dense.
    let plan = cert.plan()?;

    let mut single_shard_programs = 0usize;
    let mut refined_attested = false;
    for (i, entry) in cert.programs.iter().enumerate() {
        let prog = programs[i];
        let fail = |msg: String| Err(format!("program {i} ({}): {msg}", entry.name));
        if entry.name != prog.name() {
            return fail(format!(
                "name mismatch (input program is {:?})",
                prog.name()
            ));
        }
        for (what, claim) in [("reads", &entry.reads), ("writes", &entry.writes)] {
            if !claim.windows(2).all(|w| w[0] < w[1]) {
                return fail(format!("claimed {what} must be strictly ascending"));
            }
        }
        let claim_r: BTreeSet<ObjectId> = entry.reads.iter().copied().collect();
        let claim_w: BTreeSet<ObjectId> = entry.writes.iter().copied().collect();
        // Soundness: refinement may only shrink the syntactic footprint.
        if !claim_r.is_subset(&prog.potential_reads()) {
            return fail("claimed read footprint exceeds the syntactic one".into());
        }
        if !claim_w.is_subset(&prog.potential_writes()) {
            return fail("claimed write footprint exceeds the syntactic one".into());
        }
        if entry.refined {
            refined_attested = true;
        } else if claim_r != prog.potential_reads() || claim_w != prog.potential_writes() {
            return fail(
                "claims differ from the syntactic footprint but are not marked refined".into(),
            );
        }
        if entry.update == claim_w.is_empty() {
            return fail("update flag contradicts the claimed write footprint".into());
        }
        // Footprint closure: bounds-check, then the spans recomputed
        // from the claimed footprint must match the entry.
        let mut spans: Vec<u32> = Vec::new();
        for &o in claim_r.union(&claim_w) {
            if o.index() >= cert.num_objects {
                return fail(format!("object {o} outside the certificate's universe"));
            }
            spans.push(plan.shard_of(o));
        }
        spans.sort_unstable();
        spans.dedup();
        if spans != entry.spans {
            return fail(format!(
                "footprint closure violated: footprint touches shards {spans:?}, \
                 certificate says {:?}",
                entry.spans
            ));
        }
        match entry.shard {
            Some(s) => {
                if entry.spans != [s] {
                    return fail(format!(
                        "claimed closed within shard {s} but spans {:?}",
                        entry.spans
                    ));
                }
                single_shard_programs += 1;
            }
            None => {
                if entry.spans.len() == 1 {
                    return fail("single-shard footprint recorded as straddling".into());
                }
            }
        }
    }

    // Edge coverage: recompute, from the (now-validated) claimed
    // footprints, every conflict edge touching a straddling program —
    // exactly the pairs per-shard sequencing cannot order. Pairs of
    // single-shard programs need no entry: a shared object pins both
    // footprints to its one shard, so that shard's order covers them.
    let straddles = |i: usize| cert.programs[i].spans.len() >= 2;
    let objs = |v: &[ObjectId]| v.iter().copied().collect::<BTreeSet<_>>();
    let mut expected: BTreeSet<(usize, usize, ObjectId, &'static str)> = BTreeSet::new();
    for i in 0..cert.programs.len() {
        for j in i..cert.programs.len() {
            if !(straddles(i) || straddles(j)) {
                continue;
            }
            let (p, q) = (&cert.programs[i], &cert.programs[j]);
            let (wi, wj) = (objs(&p.writes), objs(&q.writes));
            let ww: BTreeSet<ObjectId> = wi.intersection(&wj).copied().collect();
            let mut rw: BTreeSet<ObjectId> = wi.intersection(&objs(&q.reads)).copied().collect();
            rw.extend(wj.intersection(&objs(&p.reads)).copied());
            for &o in &ww {
                expected.insert((i, j, o, "ww"));
            }
            for &o in rw.difference(&ww) {
                expected.insert((i, j, o, "rw"));
            }
        }
    }
    let mut listed: BTreeSet<(usize, usize, ObjectId, &'static str)> = BTreeSet::new();
    for (k, e) in cert.cross_edges.iter().enumerate() {
        if e.a > e.b || e.b >= cert.programs.len() {
            return Err(format!(
                "cross edge {k}: program indices out of order or range"
            ));
        }
        let kind = match e.kind {
            ShardEdgeKind::Ww => "ww",
            ShardEdgeKind::Rw => "rw",
        };
        if !listed.insert((e.a, e.b, e.object, kind)) {
            return Err(format!("cross edge {k} is listed twice"));
        }
    }
    if let Some((a, b, o, kind)) = expected.difference(&listed).next() {
        return Err(format!(
            "silently dropped cross-shard conflict: {} ~ {} on object {o} ({kind})",
            cert.programs[*a].name, cert.programs[*b].name
        ));
    }
    if let Some((a, b, o, kind)) = listed.difference(&expected).next() {
        return Err(format!(
            "fabricated cross-shard edge: {} ~ {} on object {o} ({kind})",
            cert.programs[*a].name, cert.programs[*b].name
        ));
    }

    // Composition verdict: re-derivable from certificate data alone.
    let derived = ShardComposition::derive(plan.num_shards(), &cert.programs, &cert.cross_edges);
    if derived != cert.composition {
        return Err("composition verdict does not match the partition and edge set".into());
    }

    Ok(ShardVerdict {
        num_shards: plan.num_shards(),
        single_shard_programs,
        cross_edges: cert.cross_edges.len(),
        refined_attested,
    })
}

/// A successful commutativity-certificate audit: what was re-validated.
///
/// As with [`ShardVerdict`], refined footprint claims are *attested*
/// (checked sound against the syntactic footprint), while the
/// commutativity matrix and every mover class are fully recomputed from
/// the claimed footprints and compared entry-for-entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommuteVerdict {
    /// Number of programs the certificate covers.
    pub num_programs: usize,
    /// Commuting pairs `(i, j)` with `i <= j` (self-pairs model two
    /// concurrent instances of the same program).
    pub commuting_pairs: usize,
    /// Programs recomputed as read-only.
    pub read_only: usize,
    /// Programs recomputed as non-movers.
    pub non_movers: usize,
    /// Whether any entry carries attested (refined) claims.
    pub refined_attested: bool,
}

/// Audits a `moc-commute-cert` document against the program set it
/// claims to describe. Quadratic in the number of *programs* (the
/// pairwise matrix recomputation) — never in any history.
///
/// Checks, in order: schema + version, program-set fingerprint binding,
/// per-program footprint soundness (claims never exceed the syntactic
/// footprint; unrefined claims equal it exactly; the update flag must
/// match the claimed write footprint), matrix well-formedness (CSR
/// shape, sorted rows, symmetry), an exact recomputation of the
/// commutativity matrix from the claimed footprints (a dropped conflict
/// and a fabricated commutation both reject), an exact recomputation of
/// every mover class, and the side-condition list that scopes the
/// certificate to register semantics.
///
/// # Errors
///
/// Any malformation, binding mismatch, or violated obligation rejects
/// with the first reason found.
pub fn audit_commute(programs: &[&Program], cert_text: &str) -> Result<CommuteVerdict, String> {
    let cert = CommuteCert::parse(cert_text)?;

    // Binding: computed from exactly this program set, in this order.
    let expected_fp = fingerprint_programs(programs);
    if cert.programs_fp != expected_fp {
        return Err(format!(
            "program-set fingerprint mismatch: certificate is bound to {:016x}, \
             input set fingerprints to {expected_fp:016x}",
            cert.programs_fp
        ));
    }
    if cert.programs.len() != programs.len() {
        return Err(format!(
            "certificate lists {} programs, input set has {}",
            cert.programs.len(),
            programs.len()
        ));
    }

    let mut refined_attested = false;
    for (i, entry) in cert.programs.iter().enumerate() {
        let prog = programs[i];
        let fail = |msg: String| Err(format!("program {i} ({}): {msg}", entry.name));
        if entry.name != prog.name() {
            return fail(format!(
                "name mismatch (input program is {:?})",
                prog.name()
            ));
        }
        for (what, claim) in [("reads", &entry.reads), ("writes", &entry.writes)] {
            if !claim.windows(2).all(|w| w[0] < w[1]) {
                return fail(format!("claimed {what} must be strictly ascending"));
            }
        }
        let claim_r: BTreeSet<ObjectId> = entry.reads.iter().copied().collect();
        let claim_w: BTreeSet<ObjectId> = entry.writes.iter().copied().collect();
        // Soundness: refinement may only shrink the syntactic footprint.
        if !claim_r.is_subset(&prog.potential_reads()) {
            return fail("claimed read footprint exceeds the syntactic one".into());
        }
        if !claim_w.is_subset(&prog.potential_writes()) {
            return fail("claimed write footprint exceeds the syntactic one".into());
        }
        if entry.refined {
            refined_attested = true;
        } else if claim_r != prog.potential_reads() || claim_w != prog.potential_writes() {
            return fail(
                "claims differ from the syntactic footprint but are not marked refined".into(),
            );
        }
        if entry.update == claim_w.is_empty() {
            return fail("update flag contradicts the claimed write footprint".into());
        }
        for &o in claim_r.union(&claim_w) {
            if o.index() >= cert.num_objects {
                return fail(format!("object {o} outside the certificate's universe"));
            }
        }
    }

    // Matrix: structurally well-formed, then byte-for-byte equal to the
    // one recomputed from the (now-validated) claimed footprints. A
    // missing pair is a silently dropped conflict the fast paths would
    // exploit unsoundly; an extra pair is a fabricated commutation.
    cert.matrix.validate(cert.programs.len())?;
    let derived = CommuteMatrix::derive(&cert.programs);
    if derived != cert.matrix {
        for i in 0..cert.programs.len() {
            for j in 0..cert.programs.len() {
                let (claimed, actual) = (cert.matrix.commutes(i, j), derived.commutes(i, j));
                if claimed && !actual {
                    return Err(format!(
                        "fabricated commutation: {} ~ {} conflict on the claimed footprints",
                        cert.programs[i].name, cert.programs[j].name
                    ));
                }
                if actual && !claimed {
                    return Err(format!(
                        "silently dropped commutation: {} ~ {} commute on the claimed footprints",
                        cert.programs[i].name, cert.programs[j].name
                    ));
                }
            }
        }
        return Err("commutativity matrix does not match the claimed footprints".into());
    }

    // Mover classes: every class fully recomputed from the footprints.
    let mut read_only = 0usize;
    let mut non_movers = 0usize;
    for (i, entry) in cert.programs.iter().enumerate() {
        let actual = derive_class(&cert.programs, i);
        if entry.class != actual {
            return Err(format!(
                "program {i} ({}): mover class claims {} but footprints derive {}",
                entry.name, entry.class, actual
            ));
        }
        match actual {
            MoverClass::ReadOnly => read_only += 1,
            MoverClass::NonMover => non_movers += 1,
            _ => {}
        }
    }

    // Side conditions scope the certificate to register semantics; a
    // consumer under different object semantics must not accept it.
    if cert.side_conditions != COMMUTE_SIDE_CONDITIONS {
        return Err(format!(
            "side conditions must be exactly {COMMUTE_SIDE_CONDITIONS:?}, \
             certificate lists {:?}",
            cert.side_conditions
        ));
    }

    Ok(CommuteVerdict {
        num_programs: cert.programs.len(),
        commuting_pairs: cert.matrix.num_commuting_pairs(),
        read_only,
        non_movers,
        refined_attested,
    })
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn uint(doc: &Json, key: &str) -> Result<u64, String> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn check_witness(h: &History, condition: Condition, proof: &Json) -> Result<(), String> {
    let n = h.len();
    let order_json = field(proof, "order")?
        .as_arr()
        .ok_or("witness order must be an array")?;
    if order_json.len() != n {
        return Err(format!(
            "witness order has {} entries, history has {n} m-operations",
            order_json.len()
        ));
    }
    let mut order = Vec::with_capacity(n);
    let mut position = vec![usize::MAX; n];
    for (pos, v) in order_json.iter().enumerate() {
        let idx = v
            .as_usize()
            .filter(|&i| i < n)
            .ok_or("witness order entry out of range")?;
        if position[idx] != usize::MAX {
            return Err(format!("witness order repeats m-operation {idx}"));
        }
        position[idx] = pos;
        order.push(MOpIdx(idx));
    }

    // Linear extension of the condition's base relation.
    for (i, j) in condition.base_relation(h).edges() {
        if position[i.0] >= position[j.0] {
            return Err(format!(
                "witness violates ~H: {} must precede {}",
                h.record(i).id,
                h.record(j).id
            ));
        }
    }

    // Version replay (D 4.6 on total orders).
    if !sequence_is_legal(h, &order) {
        return Err("witness order is not a legal sequential history".into());
    }

    // The serialized legality trace must match the replay exactly.
    let steps = field(proof, "reads")?
        .as_arr()
        .ok_or("witness reads must be an array")?;
    let mut expected = Vec::new();
    for (pos, &alpha) in order.iter().enumerate() {
        for &(obj, writer) in h.read_sources(alpha) {
            expected.push((
                pos,
                obj.index(),
                writer.map_or(-1, |w| position[w.0] as i64),
            ));
        }
    }
    if steps.len() != expected.len() {
        return Err(format!(
            "legality trace has {} steps, history has {} external reads",
            steps.len(),
            expected.len()
        ));
    }
    for (step, &(pos, obj, from)) in steps.iter().zip(&expected) {
        let got_pos = uint(step, "pos")? as usize;
        let got_obj = uint(step, "obj")? as usize;
        let got_from = field(step, "from")?
            .as_i64()
            .ok_or("trace field \"from\" must be an integer")?;
        if (got_pos, got_obj, got_from) != (pos, obj, from) {
            return Err(format!(
                "legality trace mismatch at position {pos}: expected read of o{obj} from {from}, \
                 certificate says o{got_obj} from {got_from}"
            ));
        }
    }
    Ok(())
}

/// One parsed edge of a cycle proof.
struct AuditEdge {
    from: usize,
    to: usize,
    why: String,
    /// For `rw` edges: the read-from writer (`None` = initial).
    beta: Option<usize>,
    /// For `rw` edges: the object whose version would be overwritten.
    obj: usize,
    /// For `rw` edges: justification path slots for the premise.
    via: Vec<usize>,
}

fn check_cycle(h: &History, condition: Condition, proof: &Json) -> Result<(), String> {
    let n = h.len();
    let po = process_order(h);
    let rt = real_time(h);
    let ox = object_order(h);

    let edges_json = field(proof, "edges")?
        .as_arr()
        .ok_or("cycle edges must be an array")?;
    let mut edges: Vec<AuditEdge> = Vec::with_capacity(edges_json.len());
    for (idx, e) in edges_json.iter().enumerate() {
        let from = uint(e, "from")? as usize;
        let to = uint(e, "to")? as usize;
        if from >= n || to >= n {
            return Err(format!("edge {idx} references an m-operation out of range"));
        }
        if from == to {
            return Err(format!("edge {idx} is a self-loop"));
        }
        let why = field(e, "why")?
            .as_str()
            .ok_or("edge reason must be a string")?
            .to_string();
        let (a, b) = (MOpIdx(from), MOpIdx(to));
        let (beta, obj, via) = match why.as_str() {
            "po" => {
                if !po.contains(a, b) {
                    return Err(format!("edge {idx}: no process order {from} -> {to}"));
                }
                (None, 0, Vec::new())
            }
            "rf" => {
                let reads = h.read_sources(b).iter().any(|&(_, w)| w == Some(a));
                if !reads {
                    return Err(format!(
                        "edge {idx}: m-operation {to} does not read from {from}"
                    ));
                }
                (None, 0, Vec::new())
            }
            "rt" => {
                if condition != Condition::Lin {
                    return Err(format!(
                        "edge {idx}: real-time edges are only admissible for \"lin\""
                    ));
                }
                if !rt.contains(a, b) {
                    return Err(format!("edge {idx}: no real-time order {from} -> {to}"));
                }
                (None, 0, Vec::new())
            }
            "ox" => {
                if condition != Condition::Normal {
                    return Err(format!(
                        "edge {idx}: object-order edges are only admissible for \"normal\""
                    ));
                }
                if !ox.contains(a, b) {
                    return Err(format!("edge {idx}: no object order {from} -> {to}"));
                }
                (None, 0, Vec::new())
            }
            "rw" => {
                let beta_raw = field(e, "beta")?
                    .as_i64()
                    .ok_or("rw edge field \"beta\" must be an integer")?;
                let beta = if beta_raw < 0 {
                    None
                } else {
                    let beta = beta_raw as usize;
                    if beta >= n {
                        return Err(format!("edge {idx}: beta out of range"));
                    }
                    Some(beta)
                };
                let obj = uint(e, "obj")? as usize;
                if obj >= h.num_objects() {
                    return Err(format!("edge {idx}: object out of range"));
                }
                let oid = ObjectId::new(obj as u32);
                // D 4.11 interference: from reads obj from beta, to also
                // writes obj, and to is neither the reader nor its source.
                if !h.wobjects(b).contains(&oid) {
                    return Err(format!(
                        "edge {idx}: m-operation {to} does not write o{obj}"
                    ));
                }
                let source_matches = h
                    .read_sources(a)
                    .iter()
                    .any(|&(o, w)| o == oid && w == beta.map(MOpIdx));
                if !source_matches {
                    return Err(format!(
                        "edge {idx}: m-operation {from} does not read o{obj} from the named source"
                    ));
                }
                if beta == Some(to) {
                    return Err(format!("edge {idx}: beta and gamma coincide"));
                }
                let via_json = field(e, "via")?
                    .as_arr()
                    .ok_or("rw edge field \"via\" must be an array")?;
                let mut via = Vec::with_capacity(via_json.len());
                for v in via_json {
                    via.push(v.as_usize().filter(|&s| s < idx).ok_or_else(|| {
                        format!("edge {idx}: via must reference strictly earlier edges")
                    })?);
                }
                (beta, obj, via)
            }
            other => return Err(format!("edge {idx}: unknown reason {other:?}")),
        };
        edges.push(AuditEdge {
            from,
            to,
            why,
            beta,
            obj,
            via,
        });
    }

    // Second pass: each rw premise path must chain beta -> ... -> to over
    // the (already individually validated, strictly earlier) edges. With
    // `via` indices strictly decreasing into the list, this induction
    // grounds out: the premise of D 4.11 holds, so every rw edge holds.
    for (idx, e) in edges.iter().enumerate() {
        if e.why != "rw" {
            continue;
        }
        match e.beta {
            None => {
                // The initial m-operation precedes everything: premise
                // holds vacuously; no path required.
            }
            Some(beta) => {
                if e.via.is_empty() {
                    return Err(format!("edge {idx}: rw premise needs a justification path"));
                }
                let mut cur = beta;
                for &slot in &e.via {
                    if edges[slot].from != cur {
                        return Err(format!("edge {idx}: justification path does not chain"));
                    }
                    cur = edges[slot].to;
                }
                if cur != e.to {
                    return Err(format!(
                        "edge {idx}: justification path does not reach gamma (o{})",
                        e.obj
                    ));
                }
            }
        }
    }

    // The named slots must form a closed walk.
    let cycle_json = field(proof, "cycle")?
        .as_arr()
        .ok_or("cycle must be an array")?;
    if cycle_json.len() < 2 {
        return Err("cycle must contain at least two edges".into());
    }
    let mut cycle = Vec::with_capacity(cycle_json.len());
    for v in cycle_json {
        cycle.push(
            v.as_usize()
                .filter(|&s| s < edges.len())
                .ok_or("cycle references an edge out of range")?,
        );
    }
    for (k, &slot) in cycle.iter().enumerate() {
        let next = cycle[(k + 1) % cycle.len()];
        if edges[slot].to != edges[next].from {
            return Err(format!("cycle breaks between slots {slot} and {next}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::ProcessId;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn stale_read() -> History {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        b.build().unwrap()
    }

    fn cert(condition: &str, verdict: &str, h: &History, proof: &str) -> String {
        format!(
            "{{\"format\":\"moc-cert\",\"version\":1,\"condition\":\"{condition}\",\
             \"verdict\":\"{verdict}\",\"history\":{{\"ops\":{},\"objects\":{},\
             \"fnv1a\":\"{:016x}\"}},\"proof\":{proof}}}",
            h.len(),
            h.num_objects(),
            codec::fingerprint(h)
        )
    }

    #[test]
    fn accepts_a_hand_written_witness() {
        let h = stale_read();
        // Read of initial x first, then the write: legal under m-SC.
        let proof = "{\"kind\":\"witness\",\"order\":[1,0],\
                     \"reads\":[{\"pos\":0,\"obj\":0,\"from\":-1}]}";
        let v = audit(&h, &cert("sc", "admissible", &h, proof)).unwrap();
        assert_eq!(v, Verdict::WitnessVerified);
    }

    #[test]
    fn rejects_an_illegal_or_tampered_witness() {
        let h = stale_read();
        // Write first: the read of initial x becomes stale — illegal.
        let proof = "{\"kind\":\"witness\",\"order\":[0,1],\
                     \"reads\":[{\"pos\":1,\"obj\":0,\"from\":-1}]}";
        let err = audit(&h, &cert("sc", "admissible", &h, proof)).unwrap_err();
        assert!(err.contains("not a legal"), "{err}");
        // Tampered trace: claims the read observes the write.
        let proof = "{\"kind\":\"witness\",\"order\":[1,0],\
                     \"reads\":[{\"pos\":0,\"obj\":0,\"from\":1}]}";
        let err = audit(&h, &cert("sc", "admissible", &h, proof)).unwrap_err();
        assert!(err.contains("trace mismatch"), "{err}");
        // Not a permutation.
        let proof = "{\"kind\":\"witness\",\"order\":[1,1],\"reads\":[]}";
        assert!(audit(&h, &cert("sc", "admissible", &h, proof)).is_err());
    }

    #[test]
    fn rejects_wrong_binding_and_malformed_documents() {
        let h = stale_read();
        let proof = "{\"kind\":\"witness\",\"order\":[1,0],\
                     \"reads\":[{\"pos\":0,\"obj\":0,\"from\":-1}]}";
        let good = cert("sc", "admissible", &h, proof);
        // Fingerprint tamper.
        let bad = good.replace(&format!("{:016x}", codec::fingerprint(&h)), &"0".repeat(16));
        assert!(audit(&h, &bad).unwrap_err().contains("fingerprint"));
        // Version bump.
        let bad = good.replace("\"version\":1", "\"version\":2");
        assert!(audit(&h, &bad).unwrap_err().contains("version"));
        // Verdict flipped against the proof kind.
        let bad = good.replace("admissible", "inadmissible");
        assert!(audit(&h, &bad).unwrap_err().contains("witness proof"));
        // Not JSON at all.
        assert!(audit(&h, "not json").unwrap_err().contains("JSON"));
    }

    #[test]
    fn verifies_a_real_time_cycle_for_lin_only() {
        let h = stale_read();
        // Under lin: write ~t read (real time) and read ~rw write (reads
        // initial x that the write overwrites) close a 2-cycle.
        let proof = "{\"kind\":\"cycle\",\"edges\":[\
                     {\"from\":0,\"to\":1,\"why\":\"rt\"},\
                     {\"from\":1,\"to\":0,\"why\":\"rw\",\"beta\":-1,\"obj\":0,\"via\":[]}],\
                     \"cycle\":[0,1]}";
        let v = audit(&h, &cert("lin", "inadmissible", &h, proof)).unwrap();
        assert_eq!(v, Verdict::CycleVerified);
        // The same rt edge is inadmissible under sc.
        let err = audit(&h, &cert("sc", "inadmissible", &h, proof)).unwrap_err();
        assert!(err.contains("only admissible for \"lin\""), "{err}");
    }

    #[test]
    fn rejects_broken_cycles_and_bad_rw_justifications() {
        let h = stale_read();
        // Walk does not close.
        let proof = "{\"kind\":\"cycle\",\"edges\":[\
                     {\"from\":0,\"to\":1,\"why\":\"rt\"},\
                     {\"from\":1,\"to\":0,\"why\":\"rw\",\"beta\":-1,\"obj\":0,\"via\":[]}],\
                     \"cycle\":[0,0]}";
        assert!(audit(&h, &cert("lin", "inadmissible", &h, proof)).is_err());
        // rw names an object the target does not write.
        let proof = "{\"kind\":\"cycle\",\"edges\":[\
                     {\"from\":0,\"to\":1,\"why\":\"rt\"},\
                     {\"from\":1,\"to\":0,\"why\":\"rw\",\"beta\":0,\"obj\":0,\"via\":[0]}],\
                     \"cycle\":[0,1]}";
        // beta=0 is not the read's source (it reads the initial value).
        let err = audit(&h, &cert("lin", "inadmissible", &h, proof)).unwrap_err();
        assert!(err.contains("named source"), "{err}");
        // Forward (non-well-founded) via reference.
        let proof = "{\"kind\":\"cycle\",\"edges\":[\
                     {\"from\":1,\"to\":0,\"why\":\"rw\",\"beta\":-1,\"obj\":0,\"via\":[1]},\
                     {\"from\":0,\"to\":1,\"why\":\"rt\"}],\
                     \"cycle\":[0,1]}";
        let err = audit(&h, &cert("lin", "inadmissible", &h, proof)).unwrap_err();
        assert!(err.contains("strictly earlier"), "{err}");
    }

    #[test]
    fn exhaustion_is_attested_not_verified() {
        let h = stale_read();
        let proof = "{\"kind\":\"exhaustion\",\"nodes\":3,\"memo_hits\":0,\
                     \"memo_peak\":2,\"memo_saturated\":false,\
                     \"components\":1,\"peeled\":0,\"forced_edges\":1}";
        let v = audit(&h, &cert("sc", "inadmissible", &h, proof)).unwrap();
        assert_eq!(
            v,
            Verdict::ExhaustionAttested {
                memo_limited: false
            }
        );
        assert!(!v.is_verified());
        // A saturated table is surfaced as memo-limited.
        let proof = "{\"kind\":\"exhaustion\",\"nodes\":3,\"memo_hits\":0,\
                     \"memo_peak\":2,\"memo_saturated\":true,\
                     \"components\":1,\"peeled\":0,\"forced_edges\":1}";
        let v = audit(&h, &cert("sc", "inadmissible", &h, proof)).unwrap();
        assert_eq!(v, Verdict::ExhaustionAttested { memo_limited: true });
        // The recorded thread count is optional metadata, validated when
        // present: positive accepts, zero rejects.
        let proof = "{\"kind\":\"exhaustion\",\"threads\":4,\"nodes\":3,\
                     \"memo_hits\":0,\"memo_peak\":2,\"memo_saturated\":false,\
                     \"components\":1,\"peeled\":0,\"forced_edges\":1}";
        assert!(audit(&h, &cert("sc", "inadmissible", &h, proof)).is_ok());
        let proof = "{\"kind\":\"exhaustion\",\"threads\":0,\"nodes\":3,\
                     \"memo_hits\":0,\"memo_peak\":2,\"memo_saturated\":false,\
                     \"components\":1,\"peeled\":0,\"forced_edges\":1}";
        let err = audit(&h, &cert("sc", "inadmissible", &h, proof)).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        // Missing a statistics field rejects.
        let proof = "{\"kind\":\"exhaustion\",\"nodes\":3}";
        assert!(audit(&h, &cert("sc", "inadmissible", &h, proof)).is_err());
        // Missing the saturation flag rejects.
        let proof = "{\"kind\":\"exhaustion\",\"nodes\":3,\"memo_hits\":0,\
                     \"memo_peak\":2,\"components\":1,\"peeled\":0,\"forced_edges\":1}";
        assert!(audit(&h, &cert("sc", "inadmissible", &h, proof)).is_err());
    }

    #[test]
    fn audit_texts_parses_the_history_format() {
        let h = stale_read();
        let text = codec::to_text(&h);
        let proof = "{\"kind\":\"witness\",\"order\":[1,0],\
                     \"reads\":[{\"pos\":0,\"obj\":0,\"from\":-1}]}";
        let v = audit_texts(&text, &cert("sc", "admissible", &h, proof)).unwrap();
        assert_eq!(v, Verdict::WitnessVerified);
        assert!(audit_texts("garbage", "{}")
            .unwrap_err()
            .contains("history"));
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use moc_core::program::{imm, reg, Program, ProgramBuilder};
    use moc_core::shard::{ShardCrossEdge, ShardProgramEntry};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn writer(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for &o in objs {
            b.write(oid(o), imm(1));
        }
        b.ret(vec![]);
        b.build().unwrap()
    }

    fn reader(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for (i, &o) in objs.iter().enumerate() {
            b.read(oid(o), i as u8);
        }
        b.ret(vec![reg(0)]);
        b.build().unwrap()
    }

    fn entry(p: &Program, shard: Option<u32>, spans: &[u32]) -> ShardProgramEntry {
        ShardProgramEntry {
            name: p.name().to_string(),
            update: p.is_potential_update(),
            refined: false,
            reads: p.potential_reads().into_iter().collect(),
            writes: p.potential_writes().into_iter().collect(),
            shard,
            spans: spans.to_vec(),
        }
    }

    /// Two disjoint object groups, cleanly sharded, no cross edges.
    fn disjoint_cert() -> (Vec<Program>, ShardCert) {
        let progs = vec![
            writer("w01", &[0, 1]),
            reader("q0", &[0]),
            writer("w23", &[2, 3]),
        ];
        let refs: Vec<&Program> = progs.iter().collect();
        let programs = vec![
            entry(&progs[0], Some(0), &[0]),
            entry(&progs[1], Some(0), &[0]),
            entry(&progs[2], Some(1), &[1]),
        ];
        let composition = ShardComposition::derive(2, &programs, &[]);
        let cert = ShardCert {
            num_objects: 4,
            programs_fp: fingerprint_programs(&refs),
            shards: vec![vec![oid(0), oid(1)], vec![oid(2), oid(3)]],
            programs,
            cross_edges: vec![],
            composition,
        };
        (progs, cert)
    }

    /// A straddling writer bridging two shards, with its full edge set
    /// (including the self-pair: two concurrent instances conflict).
    fn straddling_cert() -> (Vec<Program>, ShardCert) {
        let progs = vec![writer("w01", &[0, 1]), writer("w1", &[1])];
        let refs: Vec<&Program> = progs.iter().collect();
        let programs = vec![
            entry(&progs[0], None, &[0, 1]),
            entry(&progs[1], Some(1), &[1]),
        ];
        let cross_edges = vec![
            ShardCrossEdge {
                a: 0,
                b: 0,
                object: oid(0),
                kind: ShardEdgeKind::Ww,
            },
            ShardCrossEdge {
                a: 0,
                b: 0,
                object: oid(1),
                kind: ShardEdgeKind::Ww,
            },
            ShardCrossEdge {
                a: 0,
                b: 1,
                object: oid(1),
                kind: ShardEdgeKind::Ww,
            },
        ];
        let composition = ShardComposition::derive(2, &programs, &cross_edges);
        let cert = ShardCert {
            num_objects: 2,
            programs_fp: fingerprint_programs(&refs),
            shards: vec![vec![oid(0)], vec![oid(1)]],
            programs,
            cross_edges,
            composition,
        };
        (progs, cert)
    }

    #[test]
    fn accepts_consistent_certificates() {
        let (progs, cert) = disjoint_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        let v = audit_shard(&refs, &cert.to_json()).unwrap();
        assert_eq!(v.num_shards, 2);
        assert_eq!(v.single_shard_programs, 3);
        assert_eq!(v.cross_edges, 0);
        assert!(!v.refined_attested);

        let (progs, cert) = straddling_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        let v = audit_shard(&refs, &cert.to_json()).unwrap();
        assert_eq!(v.single_shard_programs, 1);
        assert_eq!(v.cross_edges, 3);
    }

    #[test]
    fn rejects_a_moved_object() {
        let (progs, mut cert) = disjoint_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        // Move object 1 into shard 1: w01's footprint now straddles,
        // contradicting its single-shard claim.
        cert.shards = vec![vec![oid(0)], vec![oid(1), oid(2), oid(3)]];
        let err = audit_shard(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("footprint closure"), "{err}");
    }

    #[test]
    fn rejects_a_dropped_cross_edge() {
        let (progs, mut cert) = straddling_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        cert.cross_edges.pop();
        let err = audit_shard(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("silently dropped"), "{err}");
        assert!(err.contains("w01") && err.contains("w1"), "{err}");
    }

    #[test]
    fn rejects_fabricated_edges_and_tampered_composition() {
        let (progs, cert) = disjoint_cert();
        let refs: Vec<&Program> = progs.iter().collect();

        let mut fab = cert.clone();
        fab.cross_edges.push(ShardCrossEdge {
            a: 0,
            b: 2,
            object: oid(0),
            kind: ShardEdgeKind::Rw,
        });
        let err = audit_shard(&refs, &fab.to_json()).unwrap_err();
        assert!(err.contains("fabricated"), "{err}");

        let mut comp = cert;
        comp.composition.ww = false;
        let err = audit_shard(&refs, &comp.to_json()).unwrap_err();
        assert!(err.contains("composition"), "{err}");
    }

    #[test]
    fn rejects_wrong_program_binding() {
        let (progs, cert) = disjoint_cert();
        // Reordered program set → fingerprint mismatch before anything
        // else is even looked at.
        let refs: Vec<&Program> = vec![&progs[2], &progs[1], &progs[0]];
        let err = audit_shard(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn refined_claims_are_attested_but_bounded() {
        let (progs, cert) = disjoint_cert();
        let refs: Vec<&Program> = progs.iter().collect();

        // Shrunken claim without the refined flag rejects.
        let mut c = cert.clone();
        c.programs[0].writes = vec![oid(0)];
        let err = audit_shard(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("not marked refined"), "{err}");

        // With the flag, a sound shrink is attested (spans still check).
        let mut c = cert.clone();
        c.programs[0].writes = vec![oid(0)];
        c.programs[0].refined = true;
        let v = audit_shard(&refs, &c.to_json()).unwrap();
        assert!(v.refined_attested);

        // An inflated claim rejects even when marked refined.
        let mut c = cert.clone();
        c.programs[1].writes = vec![oid(0)];
        c.programs[1].update = true;
        c.programs[1].refined = true;
        let err = audit_shard(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("exceeds the syntactic"), "{err}");
    }
}

#[cfg(test)]
mod commute_tests {
    use super::*;
    use moc_core::commute::CommuteProgramEntry;
    use moc_core::program::{imm, reg, Program, ProgramBuilder};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn writer(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for &o in objs {
            b.write(oid(o), imm(1));
        }
        b.ret(vec![]);
        b.build().unwrap()
    }

    fn reader(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for (i, &o) in objs.iter().enumerate() {
            b.read(oid(o), i as u8);
        }
        b.ret(vec![reg(0)]);
        b.build().unwrap()
    }

    fn rmw(name: &str, read: u32, write: u32) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.read(oid(read), 0);
        b.write(oid(write), reg(0));
        b.ret(vec![]);
        b.build().unwrap()
    }

    /// One program per reachable mover class: `q0` read-only, `wp`
    /// both-mover (private object), `wq` right-mover (conflicts only
    /// with the query), `wu`/`wu2` left-movers (conflict only with
    /// each other, both updates).
    fn genuine_cert() -> (Vec<Program>, CommuteCert) {
        let progs = vec![
            reader("q0", &[0]),
            writer("wq", &[0]),
            writer("wp", &[5]),
            writer("wu", &[1]),
            rmw("wu2", 1, 2),
        ];
        let refs: Vec<&Program> = progs.iter().collect();
        let mut programs: Vec<CommuteProgramEntry> = progs
            .iter()
            .map(|p| CommuteProgramEntry {
                name: p.name().to_string(),
                update: p.is_potential_update(),
                refined: false,
                reads: p.potential_reads().into_iter().collect(),
                writes: p.potential_writes().into_iter().collect(),
                class: MoverClass::NonMover,
            })
            .collect();
        for i in 0..programs.len() {
            programs[i].class = derive_class(&programs, i);
        }
        let matrix = CommuteMatrix::derive(&programs);
        let cert = CommuteCert {
            num_objects: 6,
            programs_fp: fingerprint_programs(&refs),
            programs,
            matrix,
            side_conditions: COMMUTE_SIDE_CONDITIONS
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        (progs, cert)
    }

    #[test]
    fn accepts_genuine_certificate() {
        let (progs, cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        let v = audit_commute(&refs, &cert.to_json()).unwrap();
        assert_eq!(v.num_programs, 5);
        assert_eq!(v.read_only, 1);
        assert_eq!(v.non_movers, 0);
        assert!(v.commuting_pairs > 0);
        assert!(!v.refined_attested);
        assert_eq!(cert.programs[0].class, MoverClass::ReadOnly);
        assert_eq!(cert.programs[1].class, MoverClass::RightMover);
        assert_eq!(cert.programs[2].class, MoverClass::BothMover);
        assert_eq!(cert.programs[3].class, MoverClass::LeftMover);
        assert_eq!(cert.programs[4].class, MoverClass::LeftMover);
    }

    #[test]
    fn rejects_a_fabricated_commutation() {
        let (progs, mut cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        // Pretend the conflicting wq has no writes *for matrix purposes
        // only*: the listed matrix gains pairs its footprints refute.
        let mut forged = cert.programs.clone();
        forged[1].writes.clear();
        cert.matrix = CommuteMatrix::derive(&forged);
        let err = audit_commute(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("fabricated commutation"), "{err}");
    }

    #[test]
    fn rejects_a_dropped_commutation() {
        let (progs, mut cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        // Derive the matrix from footprints with an extra conflict: the
        // listed matrix now *misses* pairs the real footprints admit.
        let mut forged = cert.programs.clone();
        forged[2].writes = vec![oid(0), oid(5)];
        cert.matrix = CommuteMatrix::derive(&forged);
        let err = audit_commute(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("silently dropped commutation"), "{err}");
    }

    #[test]
    fn rejects_a_mutated_mover_class() {
        let (progs, mut cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();
        cert.programs[0].class = MoverClass::BothMover;
        let err = audit_commute(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("mover class"), "{err}");
    }

    #[test]
    fn rejects_wrong_program_binding() {
        let (progs, cert) = genuine_cert();
        let refs: Vec<&Program> = vec![&progs[1], &progs[0], &progs[2], &progs[3], &progs[4]];
        let err = audit_commute(&refs, &cert.to_json()).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn rejects_tampered_side_conditions() {
        let (progs, cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();

        let mut c = cert.clone();
        c.side_conditions.pop();
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("side conditions"), "{err}");

        let mut c = cert;
        c.side_conditions[0] = "footprints-are-exact".into();
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("side conditions"), "{err}");
    }

    #[test]
    fn refined_claims_are_attested_but_bounded() {
        let (progs, cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();

        // Shrunken claim without the refined flag rejects.
        let mut c = cert.clone();
        c.programs[4].reads.clear();
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("not marked refined"), "{err}");

        // With the flag, a sound shrink is attested — but the matrix
        // and classes must be recomputed over the shrunken footprints.
        let mut c = cert.clone();
        c.programs[4].reads.clear();
        c.programs[4].refined = true;
        for i in 0..c.programs.len() {
            c.programs[i].class = derive_class(&c.programs, i);
        }
        c.matrix = CommuteMatrix::derive(&c.programs);
        let v = audit_commute(&refs, &c.to_json()).unwrap();
        assert!(v.refined_attested);

        // An inflated claim rejects even when marked refined.
        let mut c = cert;
        c.programs[2].writes = vec![oid(4), oid(5)];
        c.programs[2].refined = true;
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("exceeds the syntactic"), "{err}");
    }

    #[test]
    fn rejects_structural_damage() {
        let (progs, cert) = genuine_cert();
        let refs: Vec<&Program> = progs.iter().collect();

        // Asymmetric matrix: drop one direction of a commuting pair.
        let mut c = cert.clone();
        let row0: Vec<u32> = c.matrix.row(0).to_vec();
        let partner = row0.iter().copied().find(|&j| j != 0).unwrap();
        let cols: Vec<u32> = c
            .matrix
            .cols
            .iter()
            .enumerate()
            .filter(|&(k, &j)| {
                !(j == partner
                    && (c.matrix.offsets[0] as usize..c.matrix.offsets[1] as usize).contains(&k))
            })
            .map(|(_, &j)| j)
            .collect();
        for o in c.matrix.offsets.iter_mut().skip(1) {
            *o -= 1;
        }
        c.matrix.cols = cols;
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("symmetric"), "{err}");

        // Universe too small for the footprints.
        let mut c = cert;
        c.num_objects = 2;
        let err = audit_commute(&refs, &c.to_json()).unwrap_err();
        assert!(err.contains("universe"), "{err}");
    }
}
