//! Property tests for the `moc-commute-cert` pipeline.
//!
//! Random straight-line program sets exercise the contract between the
//! analyzer (`moc_analyze::commute_set`) and the independent auditor
//! (`moc_audit::audit_commute`, which imports only `moc-core`):
//!
//! * every certificate the analyzer emits is accepted, and the audit
//!   verdict's census matches the certificate;
//! * programs with an empty write footprint are always classed
//!   read-only, and read-only programs commute with everything;
//! * guaranteed-invalid mutations — fingerprint tampering, a version
//!   bump, a mover-class flip, an emptied matrix, a side-condition
//!   edit — are all rejected.

use moc_analyze::commute_set;
use moc_core::commute::MoverClass;
use moc_core::ids::ObjectId;
use moc_core::json::{self, Json};
use moc_core::program::{imm, reg, Program, ProgramBuilder};
use proptest::collection::vec;
use proptest::prelude::*;

const UNIVERSE: u32 = 4;

#[derive(Debug, Clone)]
enum Step {
    Read(u32),
    Write(u32, i64),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..UNIVERSE).prop_map(Step::Read),
        (0..UNIVERSE, -4i64..4).prop_map(|(o, v)| Step::Write(o, v)),
    ]
}

fn program_set() -> impl Strategy<Value = Vec<Vec<Step>>> {
    vec(vec(step(), 0..4), 1..5)
}

fn build(name: &str, steps: &[Step]) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut regs = Vec::new();
    for (i, s) in steps.iter().enumerate() {
        match s {
            Step::Read(o) => {
                b.read(ObjectId::new(*o), i as u8);
                regs.push(reg(i as u8));
            }
            Step::Write(o, v) => {
                b.write(ObjectId::new(*o), imm(*v));
            }
        }
    }
    b.ret(regs);
    b.build().expect("generated programs are well-formed")
}

fn build_set(sets: &[Vec<Step>]) -> Vec<Program> {
    sets.iter()
        .enumerate()
        .map(|(i, steps)| build(&format!("p{i}"), steps))
        .collect()
}

/// Replaces the value at `path` (a chain of object keys) in a JSON
/// document, panicking if the path is absent — mutations must hit.
fn set_field(doc: &Json, path: &[&str], value: Json) -> Json {
    match doc {
        Json::Obj(fields) => {
            let (key, rest) = (path[0], &path[1..]);
            let mut out = Vec::with_capacity(fields.len());
            let mut hit = false;
            for (k, v) in fields {
                if k == key {
                    hit = true;
                    out.push((
                        k.clone(),
                        if rest.is_empty() {
                            value.clone()
                        } else {
                            set_field(v, rest, value.clone())
                        },
                    ));
                } else {
                    out.push((k.clone(), v.clone()));
                }
            }
            assert!(hit, "mutation path {path:?} missing from certificate");
            Json::Obj(out)
        }
        _ => panic!("mutation path {path:?} traverses a non-object"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emitted_certificates_pass_the_independent_audit(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        let analysis = commute_set(&refs, UNIVERSE as usize);
        let cert = &analysis.cert;

        let v = moc_audit::audit_commute(&refs, &cert.to_json())
            .expect("analyzer-emitted certificate must audit");
        prop_assert_eq!(v.num_programs, programs.len());
        prop_assert_eq!(v.commuting_pairs, cert.matrix.num_commuting_pairs());
        let read_only = cert
            .programs
            .iter()
            .filter(|e| e.class == MoverClass::ReadOnly)
            .count();
        let non_movers = cert
            .programs
            .iter()
            .filter(|e| e.class == MoverClass::NonMover)
            .count();
        prop_assert_eq!(v.read_only, read_only);
        prop_assert_eq!(v.non_movers, non_movers);
    }

    #[test]
    fn read_only_programs_commute_with_everything(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        let cert = commute_set(&refs, UNIVERSE as usize).cert;

        for (i, entry) in cert.programs.iter().enumerate() {
            prop_assert_eq!(
                entry.class == MoverClass::ReadOnly,
                entry.writes.is_empty(),
                "read-only iff the write footprint is empty"
            );
            if entry.class == MoverClass::ReadOnly {
                for (j, other) in cert.programs.iter().enumerate() {
                    // Two queries always commute (including the
                    // self-pair), but a query still conflicts with
                    // writers of its read set — read-only is not
                    // both-mover.
                    if other.writes.is_empty() {
                        prop_assert!(
                            cert.matrix.commutes(i, j),
                            "read-only programs must commute with each other"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mutated_certificates_are_rejected(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        let cert = commute_set(&refs, UNIVERSE as usize).cert;
        let doc = json::parse(&cert.to_json()).unwrap();

        // Fingerprint tamper: the certificate no longer binds to the set.
        let bad = set_field(
            &doc,
            &["programs_fingerprint"],
            Json::Str("0000000000000000".into()),
        );
        prop_assert!(moc_audit::audit_commute(&refs, &bad.render()).is_err());

        // Version bump: unknown format versions are refused.
        let bad = set_field(&doc, &["version"], Json::Num(2.0));
        prop_assert!(moc_audit::audit_commute(&refs, &bad.render()).is_err());

        // Side-condition tamper: scoped semantics must survive verbatim.
        let bad = set_field(&doc, &["side_conditions"], Json::Arr(vec![]));
        prop_assert!(moc_audit::audit_commute(&refs, &bad.render()).is_err());

        // Mover-class flip: the classes are recomputed, so any flip hits.
        let mut flipped = cert.clone();
        for e in &mut flipped.programs {
            e.class = if e.class == MoverClass::NonMover {
                MoverClass::BothMover
            } else {
                MoverClass::NonMover
            };
        }
        prop_assert!(moc_audit::audit_commute(&refs, &flipped.to_json()).is_err());

        // Emptied matrix: every certificate commutes at least one pair
        // only when one exists; skip the (rare) fully-conflicting set.
        if !cert.matrix.cols.is_empty() {
            let zeros = vec![Json::Num(0.0); cert.programs.len() + 1];
            let empty = Json::Obj(vec![
                ("offsets".into(), Json::Arr(zeros)),
                ("cols".into(), Json::Arr(vec![])),
            ]);
            let bad = set_field(&doc, &["matrix"], empty);
            prop_assert!(moc_audit::audit_commute(&refs, &bad.render()).is_err());
        }
    }
}
