//! Property-based tests for the core model: version-vector lattice laws,
//! relation algebra, and the program DSL's static/dynamic agreement.

use std::collections::BTreeSet;

use moc_core::history::MOpIdx;
use moc_core::ids::ObjectId;
use moc_core::program::{
    execute, BinaryOp, CmpOp, Instr, MContext, Operand, Program, VecContext, NUM_REGS,
};
use moc_core::relations::Relation;
use moc_core::value::Value;
use moc_core::vv::VersionVector;
use proptest::prelude::*;

// ───────────────────────── version vectors ─────────────────────────

fn vv_strategy(len: usize) -> impl Strategy<Value = VersionVector> {
    proptest::collection::vec(0u64..50, len).prop_map(VersionVector::from_entries)
}

proptest! {
    #[test]
    fn join_is_commutative(a in vv_strategy(5), b in vv_strategy(5)) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn join_is_associative(a in vv_strategy(4), b in vv_strategy(4), c in vv_strategy(4)) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in vv_strategy(6), b in vv_strategy(6)) {
        prop_assert_eq!(a.join(&a), a.clone());
        let j = a.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        // Least upper bound: any other upper bound dominates the join.
        prop_assert!(j.leq(&a.join(&b).join(&j)));
    }

    #[test]
    fn merge_from_equals_join(a in vv_strategy(5), b in vv_strategy(5)) {
        let mut m = a.clone();
        m.merge_from(&b);
        prop_assert_eq!(m, a.join(&b));
    }

    #[test]
    fn leq_is_a_partial_order(a in vv_strategy(4), b in vv_strategy(4), c in vv_strategy(4)) {
        prop_assert!(a.leq(&a), "reflexive");
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c), "transitive");
        }
        // lt is strict.
        if a.lt(&b) {
            prop_assert!(!b.lt(&a));
            prop_assert!(a != b);
        }
    }

    #[test]
    fn bump_strictly_increases(mut a in vv_strategy(5), idx in 0usize..5) {
        let before = a.clone();
        let o = ObjectId::new(idx as u32);
        let new = a.bump(o);
        prop_assert!(before.lt(&a));
        prop_assert_eq!(new, before.get(o) + 1);
        prop_assert_eq!(a.total(), before.total() + 1);
    }
}

// ───────────────────────── relations ─────────────────────────

fn relation_strategy(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |edges| {
        let mut r = Relation::new(n);
        for (i, j) in edges {
            if i != j {
                r.add(MOpIdx(i), MOpIdx(j));
            }
        }
        r
    })
}

proptest! {
    #[test]
    fn closure_contains_original(r in relation_strategy(12)) {
        let c = r.transitive_closure();
        prop_assert!(c.includes(&r));
    }

    #[test]
    fn closure_is_transitive_and_idempotent(r in relation_strategy(10)) {
        let c = r.transitive_closure();
        for (i, j) in c.edges() {
            for k in c.successors(j) {
                prop_assert!(c.contains(i, k), "missing {i:?} -> {k:?}");
            }
        }
        prop_assert_eq!(c.transitive_closure(), c.clone());
    }

    #[test]
    fn topological_sort_is_linear_extension(r in relation_strategy(10)) {
        match r.topological_sort() {
            Some(order) => {
                let mut pos = vec![0usize; r.len()];
                for (p, &i) in order.iter().enumerate() {
                    pos[i.0] = p;
                }
                for (i, j) in r.edges() {
                    prop_assert!(pos[i.0] < pos[j.0]);
                }
                // Acyclic relations have irreflexive closures.
                prop_assert!(r.transitive_closure().is_irreflexive());
            }
            None => {
                // Cyclic: the closure must contain a self-loop.
                prop_assert!(!r.transitive_closure().is_irreflexive());
            }
        }
    }

    #[test]
    fn union_is_monotone(a in relation_strategy(8), b in relation_strategy(8)) {
        let u = a.union(&b);
        prop_assert!(u.includes(&a));
        prop_assert!(u.includes(&b));
        prop_assert_eq!(u.edge_count() <= a.edge_count() + b.edge_count(), true);
    }
}

// ───────────────────────── programs ─────────────────────────

const PROP_OBJECTS: u32 = 4;

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..NUM_REGS as u8).prop_map(Operand::Reg),
        (-100i64..100).prop_map(Operand::Imm),
        (0u8..3).prop_map(Operand::Arg),
    ]
}

fn instr_strategy(len: usize) -> impl Strategy<Value = Instr> {
    let obj = (0u32..PROP_OBJECTS).prop_map(ObjectId::new);
    let binop = prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Min),
        Just(BinaryOp::Max)
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge)
    ];
    prop_oneof![
        (obj.clone(), 0u8..NUM_REGS as u8).prop_map(|(object, dst)| Instr::Read { object, dst }),
        (obj, operand_strategy()).prop_map(|(object, src)| Instr::Write { object, src }),
        (0u8..NUM_REGS as u8, operand_strategy()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (
            binop,
            0u8..NUM_REGS as u8,
            operand_strategy(),
            operand_strategy()
        )
            .prop_map(|(op, dst, lhs, rhs)| Instr::Binary { op, dst, lhs, rhs }),
        (0..len).prop_map(|target| Instr::Jump { target }),
        (operand_strategy(), cmp, operand_strategy(), 0..len).prop_map(
            |(lhs, cmp, rhs, target)| Instr::JumpIf {
                lhs,
                cmp,
                rhs,
                target
            }
        ),
        proptest::collection::vec(operand_strategy(), 0..3)
            .prop_map(|outputs| Instr::Return { outputs }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (1usize..12).prop_flat_map(|len| {
        proptest::collection::vec(instr_strategy(len), len).prop_map(|mut instrs| {
            // Validation requires every path to end in Return; appending a
            // terminator catches every fall-through path of the random body.
            instrs.push(Instr::Return { outputs: vec![] });
            Program::new("prop", instrs).expect("targets within range")
        })
    })
}

/// Context that records which objects were dynamically written.
struct TrackingContext {
    inner: VecContext,
    written: BTreeSet<ObjectId>,
}

impl MContext for TrackingContext {
    fn read(&mut self, object: ObjectId) -> Value {
        self.inner.read(object)
    }
    fn write(&mut self, object: ObjectId, value: Value) {
        self.written.insert(object);
        self.inner.write(object, value);
    }
}

proptest! {
    #[test]
    fn dynamic_writes_within_static_write_set(
        p in program_strategy(),
        args in proptest::collection::vec(-50i64..50, 3),
    ) {
        let mut ctx = TrackingContext {
            inner: VecContext::new(PROP_OBJECTS as usize),
            written: BTreeSet::new(),
        };
        // Random programs may loop forever: a modest fuel suffices for the
        // property (fuel exhaustion is an acceptable outcome).
        if execute(&p, &args, &mut ctx, 10_000).is_ok() {
            prop_assert!(
                ctx.written.is_subset(&p.potential_writes()),
                "dynamic {:?} ⊄ static {:?}",
                ctx.written,
                p.potential_writes()
            );
        }
    }

    #[test]
    fn execution_is_deterministic(
        p in program_strategy(),
        args in proptest::collection::vec(-50i64..50, 3),
        init in proptest::collection::vec(-50i64..50, PROP_OBJECTS as usize),
    ) {
        let run = || {
            let mut ctx = VecContext { values: init.clone() };
            let r = execute(&p, &args, &mut ctx, 10_000);
            (r.map(|o| o.outputs), ctx.values)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn fuel_bounds_are_respected(p in program_strategy()) {
        let mut ctx = VecContext::new(PROP_OBJECTS as usize);
        if let Ok(out) = execute(&p, &[0, 0, 0], &mut ctx, 500) {
            prop_assert!(out.steps <= 500);
        }
    }

    #[test]
    fn arity_covers_all_arg_references(p in program_strategy()) {
        // Supplying `arity` arguments must never produce ArgOutOfRange.
        let args = vec![0i64; p.arity()];
        let mut ctx = VecContext::new(PROP_OBJECTS as usize);
        if let Err(moc_core::program::ProgramError::ArgOutOfRange { .. }) =
            execute(&p, &args, &mut ctx, 5_000)
        {
            prop_assert!(false, "arity() under-approximated");
        }
    }
}

// ───────────────────────── histories (P 4.x) ─────────────────────────

mod history_props {
    use super::*;
    use moc_core::history::History;
    use moc_core::ids::{MOpId, ProcessId};
    use moc_core::legality::{read_write_precedence, sequence_is_legal};
    use moc_core::mop::{EventTime, MOpClass, MOpRecord};
    use moc_core::op::CompletedOp;
    use moc_core::relations::{process_order, reads_from, real_time};

    /// A serial plan step (process, objects, write?), as in the checker's
    /// property tests but local to core.
    #[derive(Debug, Clone)]
    pub struct Step {
        process: u8,
        objects: Vec<u8>,
        write: bool,
    }

    pub fn step_strategy() -> impl Strategy<Value = Step> {
        (
            0u8..4,
            proptest::collection::btree_set(0u8..PROP_OBJECTS as u8, 1..=2),
            any::<bool>(),
        )
            .prop_map(|(process, objects, write)| Step {
                process,
                objects: objects.into_iter().collect(),
                write,
            })
    }

    pub fn serial_from_plan(plan: &[Step]) -> History {
        let mut store: Vec<(i64, MOpId, u64)> = vec![(0, MOpId::INITIAL, 0); PROP_OBJECTS as usize];
        let mut seq = [0u32; 4];
        let mut records = Vec::new();
        let mut value = 1i64;
        for (i, step) in plan.iter().enumerate() {
            let id = MOpId::new(
                ProcessId::new(step.process as u32),
                seq[step.process as usize],
            );
            seq[step.process as usize] += 1;
            let mut ops = Vec::new();
            for &o in &step.objects {
                let obj = ObjectId::new(o as u32);
                if step.write {
                    let (_, _, ver) = store[o as usize];
                    store[o as usize] = (value, id, ver + 1);
                    ops.push(CompletedOp::write(obj, value, id, ver + 1));
                    value += 1;
                } else {
                    let (v, w, ver) = store[o as usize];
                    ops.push(CompletedOp::read(obj, v, w, ver));
                }
            }
            let t = i as u64 * 10;
            records.push(MOpRecord {
                id,
                invoked_at: EventTime::from_nanos(t),
                responded_at: EventTime::from_nanos(t + 5),
                ops,
                outputs: Vec::new(),
                treated_as: if step.write {
                    MOpClass::Update
                } else {
                    MOpClass::Query
                },
                label: String::new(),
            });
        }
        History::new(PROP_OBJECTS as usize, records).expect("serial plan valid")
    }

    proptest! {
        /// P 4.1: interfering triples pairwise conflict and share an
        /// object.
        #[test]
        fn interference_implies_pairwise_conflict(
            plan in proptest::collection::vec(step_strategy(), 1..12),
        ) {
            let h = serial_from_plan(&plan);
            for (alpha, beta, gamma) in h.interference_triples() {
                if let Some(beta) = beta {
                    prop_assert!(h.conflict(alpha, beta));
                    prop_assert!(h.conflict(beta, gamma));
                    prop_assert!(h.conflict(gamma, alpha));
                    // All three touch a common object.
                    let common = h
                        .objects(alpha)
                        .iter()
                        .any(|o| h.objects(beta).contains(o) && h.objects(gamma).contains(o));
                    prop_assert!(common, "interfering triple without a shared object");
                } else {
                    prop_assert!(h.conflict(gamma, alpha));
                }
            }
        }

        /// ~rw never orders an operation before itself, and a serial
        /// history's own execution order is always legal.
        #[test]
        fn serial_execution_order_is_legal(
            plan in proptest::collection::vec(step_strategy(), 1..12),
        ) {
            let h = serial_from_plan(&plan);
            let serial_order: Vec<_> = h.iter().map(|(i, _)| i).collect();
            prop_assert!(sequence_is_legal(&h, &serial_order));

            let rel = process_order(&h)
                .union(&reads_from(&h))
                .union(&real_time(&h))
                .transitive_closure();
            let rw = read_write_precedence(&h, &rel);
            prop_assert!(rw.is_irreflexive());
            // ~rw is consistent with the serial execution: it never
            // contradicts real time on a serial history.
            for (i, j) in rw.edges() {
                prop_assert!(
                    !rel.contains(j, i),
                    "~rw contradicts the serial order: {i:?} -> {j:?}"
                );
            }
        }

        /// Histories are equivalent to themselves and to re-timed copies
        /// (equivalence ignores event times).
        #[test]
        fn equivalence_ignores_timing(
            plan in proptest::collection::vec(step_strategy(), 1..10),
        ) {
            let h = serial_from_plan(&plan);
            prop_assert!(h.equivalent(&h));
            let mut records = h.records().to_vec();
            for (i, r) in records.iter_mut().enumerate() {
                r.invoked_at = EventTime::from_nanos(1_000 + i as u64 * 100);
                r.responded_at = EventTime::from_nanos(1_000 + i as u64 * 100 + 50);
            }
            let retimed = History::new(h.num_objects(), records).unwrap();
            prop_assert!(h.equivalent(&retimed));
        }
    }
}
