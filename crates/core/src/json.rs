//! A minimal JSON value model, parser and writer.
//!
//! The workspace has no crates.io access (see `vendor/README.md`), so the
//! certificate format of the checker/auditor pipeline carries its own JSON
//! codec. The subset implemented here is exactly what machine-generated
//! documents need: objects, arrays, strings with the standard escapes,
//! numbers, booleans and null. Numbers are held as `f64`; the integer
//! accessors only succeed when the value is exactly representable, which
//! covers every count and index a certificate contains.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a number exactly representing one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9.0e15 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|v| usize::try_from(v).ok())
    }

    /// Serializes the value to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Trailing non-whitespace input is an error.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced rather than paired;
                            // certificates never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Convenience: an integer JSON value.
pub fn num(v: impl Into<i64>) -> Json {
    Json::Num(v.into() as f64)
}

/// Convenience: a string JSON value.
pub fn str(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), str("cert")),
            ("version".into(), num(1)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("xs".into(), Json::Arr(vec![num(1), num(-2)]))]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
        assert_eq!(text, back.render());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\\\"b\" : [ 1 , 2.5 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1], Json::Num(2.5));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn integer_accessors_are_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_i64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc", "{1:2}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(parse("[1]").unwrap().get("x").is_none());
    }
}
