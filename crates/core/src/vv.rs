//! Version vectors: the paper's per-object timestamps.
//!
//! Section 5 associates with every m-operation a timestamp that is "a vector
//! of integers with one entry for every object"; entry `ts[x]` is the version
//! of object `x`. Timestamps are compared componentwise: `ts ≤ ts'` iff every
//! entry of `ts` is at most the corresponding entry of `ts'`, and `ts < ts'`
//! iff additionally they differ. The m-linearizability protocol (Figure 6,
//! action A5) selects the maximal response timestamp; because all replica
//! states are prefixes of the same atomic-broadcast order, the timestamps it
//! compares are in fact totally ordered.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::ObjectId;

/// A vector timestamp with one version counter per shared object.
///
/// ```
/// use moc_core::ids::ObjectId;
/// use moc_core::vv::VersionVector;
///
/// let mut a = VersionVector::new(3);
/// let mut b = VersionVector::new(3);
/// a.bump(ObjectId::new(0));
/// assert!(b.leq(&a));
/// assert!(b.lt(&a));
/// b.bump(ObjectId::new(1));
/// assert!(!a.leq(&b) && !b.leq(&a)); // incomparable
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionVector(Vec<u64>);

impl VersionVector {
    /// Creates the zero vector for `num_objects` objects (the timestamp of
    /// the imaginary initial m-operation).
    pub fn new(num_objects: usize) -> Self {
        VersionVector(vec![0; num_objects])
    }

    /// Creates a vector from explicit entries.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VersionVector(entries)
    }

    /// Number of objects this vector covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the vector covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the version of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range for this vector.
    pub fn get(&self, object: ObjectId) -> u64 {
        self.0[object.index()]
    }

    /// Sets the version of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range for this vector.
    pub fn set(&mut self, object: ObjectId, version: u64) {
        self.0[object.index()] = version;
    }

    /// Increments the version of `object` by one and returns the new
    /// version. This is the `ts[x]++` of actions A2 in Figures 4 and 6.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range for this vector.
    pub fn bump(&mut self, object: ObjectId) -> u64 {
        let slot = &mut self.0[object.index()];
        *slot += 1;
        *slot
    }

    /// Componentwise `self ≤ other` (the paper's `ts ≤ ts'`).
    ///
    /// # Panics
    ///
    /// Panics if the vectors cover different numbers of objects.
    pub fn leq(&self, other: &VersionVector) -> bool {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "version vector length mismatch"
        );
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Componentwise strict order: `self ≤ other` and `self ≠ other`.
    pub fn lt(&self, other: &VersionVector) -> bool {
        self.leq(other) && self != other
    }

    /// The componentwise partial order. Returns `None` when the vectors are
    /// incomparable.
    pub fn partial_cmp_componentwise(&self, other: &VersionVector) -> Option<Ordering> {
        let le = self.leq(other);
        let ge = other.leq(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Componentwise join (least upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the vectors cover different numbers of objects.
    pub fn join(&self, other: &VersionVector) -> VersionVector {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "version vector length mismatch"
        );
        VersionVector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.max(b))
                .collect(),
        )
    }

    /// Merges `other` into `self` componentwise (in-place join).
    pub fn merge_from(&mut self, other: &VersionVector) {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "version vector length mismatch"
        );
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Sum of all entries — the total number of object versions this
    /// timestamp has observed. Useful as a scalar progress measure.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates over `(object, version)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, v)| (ObjectId::new(i as u32), *v))
    }

    /// Returns the raw entries.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(entries: &[u64]) -> VersionVector {
        VersionVector::from_entries(entries.to_vec())
    }

    #[test]
    fn zero_vector_is_bottom() {
        let z = VersionVector::new(4);
        let mut a = VersionVector::new(4);
        a.bump(ObjectId::new(2));
        assert!(z.leq(&a));
        assert!(z.lt(&a));
        assert!(!a.leq(&z));
    }

    #[test]
    fn bump_returns_new_version() {
        let mut a = VersionVector::new(2);
        assert_eq!(a.bump(ObjectId::new(0)), 1);
        assert_eq!(a.bump(ObjectId::new(0)), 2);
        assert_eq!(a.get(ObjectId::new(0)), 2);
        assert_eq!(a.get(ObjectId::new(1)), 0);
    }

    #[test]
    fn partial_order_detects_incomparable() {
        let a = vv(&[1, 0]);
        let b = vv(&[0, 1]);
        assert_eq!(a.partial_cmp_componentwise(&b), None);
        assert_eq!(a.partial_cmp_componentwise(&a), Some(Ordering::Equal));
        assert_eq!(
            vv(&[0, 0]).partial_cmp_componentwise(&a),
            Some(Ordering::Less)
        );
        assert_eq!(
            a.partial_cmp_componentwise(&vv(&[0, 0])),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn join_is_lub() {
        let a = vv(&[1, 0, 5]);
        let b = vv(&[0, 2, 5]);
        let j = a.join(&b);
        assert_eq!(j, vv(&[1, 2, 5]));
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }

    #[test]
    fn merge_from_matches_join() {
        let mut a = vv(&[1, 0]);
        let b = vv(&[0, 3]);
        let j = a.join(&b);
        a.merge_from(&b);
        assert_eq!(a, j);
    }

    #[test]
    fn total_sums_entries() {
        assert_eq!(vv(&[1, 2, 3]).total(), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(vv(&[1, 2]).to_string(), "[1,2]");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = vv(&[1]).leq(&vv(&[1, 2]));
    }
}
