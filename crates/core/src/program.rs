//! The m-operation DSL: deterministic procedures of reads and writes.
//!
//! Section 2.1 describes an m-operation as "a *deterministic procedure* of
//! read and write operations on shared objects". We realize this as a small
//! register machine ([`Program`]) whose only side effects are
//! [`Instr::Read`] and [`Instr::Write`] on shared objects. Programs are
//! plain data (serde-serializable), so the Section 5 protocols can
//! atomically broadcast an update m-operation and *re-execute it
//! deterministically on every replica* — exactly the paper's execution
//! model.
//!
//! Static analysis provides the conservative classification the protocols
//! need: "we take a conservative approach and treat an m-operation as an
//! update m-operation if it can *potentially* write to some object"
//! (Section 5). [`Program::potential_writes`] is that over-approximation;
//! a failed DCAS writes nothing dynamically yet is still treated as an
//! update.
//!
//! ```
//! use moc_core::ids::ObjectId;
//! use moc_core::program::{arg, imm, reg, CmpOp, Program, ProgramBuilder};
//!
//! // DCAS(x, y, old_x, old_y, new_x, new_y) — Section 1's motivating
//! // multi-object operation.
//! let x = ObjectId::new(0);
//! let y = ObjectId::new(1);
//! let mut b = ProgramBuilder::new("dcas");
//! let fail = b.fresh_label();
//! b.read(x, 0)
//!     .read(y, 1)
//!     .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
//!     .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
//!     .write(x, arg(2))
//!     .write(y, arg(3))
//!     .ret(vec![imm(1)]);
//! b.bind(fail);
//! b.ret(vec![imm(0)]);
//! let dcas: Program = b.build().unwrap();
//! assert!(dcas.is_potential_update());
//! assert_eq!(dcas.potential_writes().len(), 2);
//! ```

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::ObjectId;
use crate::value::Value;

/// Number of general-purpose registers available to a program.
pub const NUM_REGS: usize = 32;

/// Default execution fuel: upper bound on interpreted instructions, keeping
/// m-operations finite (their response event must eventually occur).
pub const DEFAULT_FUEL: u64 = 100_000;

/// An operand: a register, an immediate constant, or an invocation argument
/// (`arg` in the paper's `α(arg, res)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// General-purpose register.
    Reg(u8),
    /// Immediate constant.
    Imm(Value),
    /// Invocation argument by position.
    Arg(u8),
}

/// Shorthand for [`Operand::Reg`].
pub const fn reg(i: u8) -> Operand {
    Operand::Reg(i)
}

/// Shorthand for [`Operand::Imm`].
pub const fn imm(v: Value) -> Operand {
    Operand::Imm(v)
}

/// Shorthand for [`Operand::Arg`].
pub const fn arg(i: u8) -> Operand {
    Operand::Arg(i)
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Arg(a) => write!(f, "a{a}"),
        }
    }
}

/// Binary arithmetic operators (wrapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinaryOp {
    fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
        }
    }
}

/// Comparison operators for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete values (used by the
    /// interpreter and by static constant folding).
    pub fn holds(self, a: Value, b: Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One instruction of an m-operation program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Read shared object `object` into register `dst`.
    Read {
        /// Object to read.
        object: ObjectId,
        /// Destination register.
        dst: u8,
    },
    /// Write `src` to shared object `object`.
    Write {
        /// Object to write.
        object: ObjectId,
        /// Value source.
        src: Operand,
    },
    /// Copy `src` into register `dst`.
    Mov {
        /// Destination register.
        dst: u8,
        /// Value source.
        src: Operand,
    },
    /// `dst ← lhs op rhs`.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Destination register.
        dst: u8,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Destination instruction index.
        target: usize,
    },
    /// Jump to `target` if `lhs cmp rhs` holds.
    JumpIf {
        /// Left comparand.
        lhs: Operand,
        /// Comparison.
        cmp: CmpOp,
        /// Right comparand.
        rhs: Operand,
        /// Destination instruction index.
        target: usize,
    },
    /// Finish the m-operation, returning `outputs` (`res` in `α(arg, res)`).
    Return {
        /// Output values.
        outputs: Vec<Operand>,
    },
}

/// Errors in program construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was used but never bound (builder error).
    UnboundLabel(usize),
    /// A jump targets a non-existent instruction.
    BadJumpTarget {
        /// Index of the jumping instruction.
        instr: usize,
        /// Offending target.
        target: usize,
    },
    /// A register index exceeds [`NUM_REGS`].
    RegisterOutOfRange {
        /// Index of the offending instruction.
        instr: usize,
        /// Offending register.
        register: u8,
    },
    /// Execution referenced argument `index` but only `given` were supplied.
    ArgOutOfRange {
        /// Referenced argument position.
        index: u8,
        /// Number of arguments supplied.
        given: usize,
    },
    /// The instruction budget was exhausted (non-terminating program).
    FuelExhausted {
        /// Name of the program.
        name: String,
    },
    /// Control flow can fall off the end of the instruction stream without
    /// executing a `Return`. Every m-operation must produce its response
    /// event explicitly; a fall-through path is a construction bug, not an
    /// empty response.
    MissingReturn {
        /// Index of the last instruction on a falling-through path, or
        /// `None` for an empty program.
        instr: Option<usize>,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label {l} was never bound"),
            ProgramError::BadJumpTarget { instr, target } => {
                write!(f, "instruction {instr} jumps to invalid target {target}")
            }
            ProgramError::RegisterOutOfRange { instr, register } => {
                write!(
                    f,
                    "instruction {instr} uses register r{register} (max {NUM_REGS})"
                )
            }
            ProgramError::ArgOutOfRange { index, given } => {
                write!(f, "argument a{index} referenced but only {given} supplied")
            }
            ProgramError::FuelExhausted { name } => {
                write!(f, "program '{name}' exhausted its instruction budget")
            }
            ProgramError::MissingReturn { instr: Some(i) } => {
                write!(f, "control flow falls off the end after instruction {i}")
            }
            ProgramError::MissingReturn { instr: None } => {
                write!(f, "program is empty (no Return instruction)")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated, deterministic m-operation program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

impl Program {
    /// Validates and wraps raw instructions.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::BadJumpTarget`] or
    /// [`ProgramError::RegisterOutOfRange`] if the instruction stream is
    /// malformed, and [`ProgramError::MissingReturn`] if some reachable
    /// control-flow path runs past the end of the stream without a
    /// `Return`.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        let p = Program {
            name: name.into(),
            instrs,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), ProgramError> {
        let n = self.instrs.len();
        for (i, instr) in self.instrs.iter().enumerate() {
            let check_reg = |r: u8| {
                if (r as usize) >= NUM_REGS {
                    Err(ProgramError::RegisterOutOfRange {
                        instr: i,
                        register: r,
                    })
                } else {
                    Ok(())
                }
            };
            let check_operand = |o: &Operand| match o {
                Operand::Reg(r) => check_reg(*r),
                _ => Ok(()),
            };
            let check_target = |t: usize| {
                if t >= n {
                    Err(ProgramError::BadJumpTarget {
                        instr: i,
                        target: t,
                    })
                } else {
                    Ok(())
                }
            };
            match instr {
                Instr::Read { dst, .. } => check_reg(*dst)?,
                Instr::Write { src, .. } => check_operand(src)?,
                Instr::Mov { dst, src } => {
                    check_reg(*dst)?;
                    check_operand(src)?;
                }
                Instr::Binary { dst, lhs, rhs, .. } => {
                    check_reg(*dst)?;
                    check_operand(lhs)?;
                    check_operand(rhs)?;
                }
                Instr::Jump { target } => check_target(*target)?,
                Instr::JumpIf {
                    lhs, rhs, target, ..
                } => {
                    check_operand(lhs)?;
                    check_operand(rhs)?;
                    check_target(*target)?;
                }
                Instr::Return { outputs } => {
                    for o in outputs {
                        check_operand(o)?;
                    }
                }
            }
        }
        self.check_all_paths_return()
    }

    /// Depth-first reachability from entry: every reachable path must end
    /// in a `Return`. Falling through past the last instruction is
    /// rejected rather than treated as an implicit empty response.
    fn check_all_paths_return(&self) -> Result<(), ProgramError> {
        let n = self.instrs.len();
        if n == 0 {
            return Err(ProgramError::MissingReturn { instr: None });
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            let fall_through = |stack: &mut Vec<usize>| {
                if i + 1 >= n {
                    Err(ProgramError::MissingReturn { instr: Some(i) })
                } else {
                    stack.push(i + 1);
                    Ok(())
                }
            };
            match &self.instrs[i] {
                Instr::Return { .. } => {}
                Instr::Jump { target } => stack.push(*target),
                Instr::JumpIf { target, .. } => {
                    stack.push(*target);
                    fall_through(&mut stack)?;
                }
                _ => fall_through(&mut stack)?,
            }
        }
        Ok(())
    }

    /// The program's name (used as the m-operation label in histories).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// `wobjects`-over-approximation: every object a `Write` instruction
    /// mentions, whether or not control flow reaches it. The Section 5
    /// protocols classify an m-operation as an update iff this is nonempty.
    pub fn potential_writes(&self) -> BTreeSet<ObjectId> {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Write { object, .. } => Some(*object),
                _ => None,
            })
            .collect()
    }

    /// Every object a `Read` instruction mentions.
    pub fn potential_reads(&self) -> BTreeSet<ObjectId> {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Read { object, .. } => Some(*object),
                _ => None,
            })
            .collect()
    }

    /// Every object the program mentions.
    pub fn referenced_objects(&self) -> BTreeSet<ObjectId> {
        let mut s = self.potential_writes();
        s.extend(self.potential_reads());
        s
    }

    /// Whether the protocol must treat this m-operation as an update.
    pub fn is_potential_update(&self) -> bool {
        !self.potential_writes().is_empty()
    }

    /// One more than the highest argument position referenced — the number
    /// of arguments an invocation must supply.
    pub fn arity(&self) -> usize {
        let of_operand = |o: &Operand| match o {
            Operand::Arg(a) => Some(*a as usize + 1),
            _ => None,
        };
        self.instrs
            .iter()
            .flat_map(|i| match i {
                Instr::Write { src, .. } | Instr::Mov { src, .. } => {
                    vec![of_operand(src)]
                }
                Instr::Binary { lhs, rhs, .. } | Instr::JumpIf { lhs, rhs, .. } => {
                    vec![of_operand(lhs), of_operand(rhs)]
                }
                Instr::Return { outputs } => outputs.iter().map(of_operand).collect(),
                _ => vec![],
            })
            .flatten()
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}:", self.name)?;
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "  {i:3}: {instr:?}")?;
        }
        Ok(())
    }
}

/// The environment a program executes against: the replica's object store
/// (or a query snapshot). Implementations record read provenance and track
/// written objects; the interpreter only moves values.
pub trait MContext {
    /// Reads the current value of `object`.
    fn read(&mut self, object: ObjectId) -> Value;
    /// Writes `value` to `object`.
    fn write(&mut self, object: ObjectId, value: Value);
}

/// A trivial in-memory context for direct interpretation (tests, examples).
#[derive(Debug, Clone, Default)]
pub struct VecContext {
    /// Backing values, indexed by object.
    pub values: Vec<Value>,
}

impl VecContext {
    /// Creates a context with `num_objects` objects initialized to zero.
    pub fn new(num_objects: usize) -> Self {
        VecContext {
            values: vec![0; num_objects],
        }
    }
}

impl MContext for VecContext {
    fn read(&mut self, object: ObjectId) -> Value {
        self.values[object.index()]
    }
    fn write(&mut self, object: ObjectId, value: Value) {
        self.values[object.index()] = value;
    }
}

/// Result of executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The values returned by the program's `Return`. Validation rejects
    /// programs with fall-through paths, so a `Return` always runs.
    pub outputs: Vec<Value>,
    /// Instructions executed.
    pub steps: u64,
}

/// Executes `program` with `args` against `ctx`, spending at most `fuel`
/// instructions.
///
/// # Errors
///
/// Returns [`ProgramError::ArgOutOfRange`] if the program references an
/// argument beyond `args`, or [`ProgramError::FuelExhausted`] if it does not
/// terminate within `fuel` instructions.
pub fn execute(
    program: &Program,
    args: &[Value],
    ctx: &mut dyn MContext,
    fuel: u64,
) -> Result<ExecOutcome, ProgramError> {
    let mut regs = [0 as Value; NUM_REGS];
    let mut pc = 0usize;
    let mut steps = 0u64;

    let eval = |regs: &[Value; NUM_REGS], o: &Operand| -> Result<Value, ProgramError> {
        match o {
            Operand::Reg(r) => Ok(regs[*r as usize]),
            Operand::Imm(v) => Ok(*v),
            Operand::Arg(a) => args
                .get(*a as usize)
                .copied()
                .ok_or(ProgramError::ArgOutOfRange {
                    index: *a,
                    given: args.len(),
                }),
        }
    };

    while pc < program.instrs.len() {
        if steps >= fuel {
            return Err(ProgramError::FuelExhausted {
                name: program.name.clone(),
            });
        }
        steps += 1;
        match &program.instrs[pc] {
            Instr::Read { object, dst } => {
                regs[*dst as usize] = ctx.read(*object);
                pc += 1;
            }
            Instr::Write { object, src } => {
                let v = eval(&regs, src)?;
                ctx.write(*object, v);
                pc += 1;
            }
            Instr::Mov { dst, src } => {
                regs[*dst as usize] = eval(&regs, src)?;
                pc += 1;
            }
            Instr::Binary { op, dst, lhs, rhs } => {
                regs[*dst as usize] = op.apply(eval(&regs, lhs)?, eval(&regs, rhs)?);
                pc += 1;
            }
            Instr::Jump { target } => pc = *target,
            Instr::JumpIf {
                lhs,
                cmp,
                rhs,
                target,
            } => {
                if cmp.holds(eval(&regs, lhs)?, eval(&regs, rhs)?) {
                    pc = *target;
                } else {
                    pc += 1;
                }
            }
            Instr::Return { outputs } => {
                let outputs = outputs
                    .iter()
                    .map(|o| eval(&regs, o))
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok(ExecOutcome { outputs, steps });
            }
        }
    }
    Ok(ExecOutcome {
        outputs: Vec::new(),
        steps,
    })
}

/// A forward-declarable jump label for [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum BuildInstr {
    Done(Instr),
    Jump(Label),
    JumpIf {
        lhs: Operand,
        cmp: CmpOp,
        rhs: Operand,
        label: Label,
    },
}

/// Incremental constructor for [`Program`]s with label-based control flow.
///
/// Methods return `&mut Self` for chaining (non-consuming builder).
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<BuildInstr>,
    labels: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// Starts a new program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Allocates an unbound label for forward jumps.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in program '{}'",
            self.name
        );
        self.labels[label.0] = Some(self.instrs.len());
        self
    }

    /// Appends `read object -> r(dst)`.
    pub fn read(&mut self, object: ObjectId, dst: u8) -> &mut Self {
        self.instrs
            .push(BuildInstr::Done(Instr::Read { object, dst }));
        self
    }

    /// Appends `write src -> object`.
    pub fn write(&mut self, object: ObjectId, src: impl Into<Operand>) -> &mut Self {
        self.instrs.push(BuildInstr::Done(Instr::Write {
            object,
            src: src.into(),
        }));
        self
    }

    /// Appends `r(dst) <- src`.
    pub fn mov(&mut self, dst: u8, src: impl Into<Operand>) -> &mut Self {
        self.instrs.push(BuildInstr::Done(Instr::Mov {
            dst,
            src: src.into(),
        }));
        self
    }

    /// Appends `r(dst) <- lhs op rhs`.
    pub fn binary(
        &mut self,
        op: BinaryOp,
        dst: u8,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> &mut Self {
        self.instrs.push(BuildInstr::Done(Instr::Binary {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }));
        self
    }

    /// Appends `r(dst) <- lhs + rhs`.
    pub fn add(&mut self, dst: u8, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> &mut Self {
        self.binary(BinaryOp::Add, dst, lhs, rhs)
    }

    /// Appends `r(dst) <- lhs - rhs`.
    pub fn sub(&mut self, dst: u8, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> &mut Self {
        self.binary(BinaryOp::Sub, dst, lhs, rhs)
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.instrs.push(BuildInstr::Jump(label));
        self
    }

    /// Appends a conditional jump to `label` when `lhs cmp rhs` holds.
    pub fn jump_if(
        &mut self,
        lhs: impl Into<Operand>,
        cmp: CmpOp,
        rhs: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.instrs.push(BuildInstr::JumpIf {
            lhs: lhs.into(),
            cmp,
            rhs: rhs.into(),
            label,
        });
        self
    }

    /// Appends a return of `outputs`.
    pub fn ret(&mut self, outputs: Vec<Operand>) -> &mut Self {
        self.instrs
            .push(BuildInstr::Done(Instr::Return { outputs }));
        self
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was
    /// never bound, plus any error [`Program::new`] reports.
    pub fn build(&self) -> Result<Program, ProgramError> {
        let resolve = |l: Label| self.labels[l.0].ok_or(ProgramError::UnboundLabel(l.0));
        let instrs = self
            .instrs
            .iter()
            .map(|bi| match bi {
                BuildInstr::Done(i) => Ok(i.clone()),
                BuildInstr::Jump(l) => Ok(Instr::Jump {
                    target: resolve(*l)?,
                }),
                BuildInstr::JumpIf {
                    lhs,
                    cmp,
                    rhs,
                    label,
                } => Ok(Instr::JumpIf {
                    lhs: *lhs,
                    cmp: *cmp,
                    rhs: *rhs,
                    target: resolve(*label)?,
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Program::new(self.name.clone(), instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn dcas() -> Program {
        let x = oid(0);
        let y = oid(1);
        let mut b = ProgramBuilder::new("dcas");
        let fail = b.fresh_label();
        b.read(x, 0)
            .read(y, 1)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
            .write(x, arg(2))
            .write(y, arg(3))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        b.build().unwrap()
    }

    #[test]
    fn dcas_succeeds_when_both_match() {
        let p = dcas();
        let mut ctx = VecContext::new(2);
        let out = execute(&p, &[0, 0, 5, 7], &mut ctx, DEFAULT_FUEL).unwrap();
        assert_eq!(out.outputs, vec![1]);
        assert_eq!(ctx.values, vec![5, 7]);
    }

    #[test]
    fn dcas_fails_without_writing() {
        let p = dcas();
        let mut ctx = VecContext::new(2);
        ctx.values = vec![0, 9];
        let out = execute(&p, &[0, 0, 5, 7], &mut ctx, DEFAULT_FUEL).unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(ctx.values, vec![0, 9], "failed DCAS must not write");
        // Yet the static classification is 'update'.
        assert!(p.is_potential_update());
    }

    #[test]
    fn static_analysis() {
        let p = dcas();
        assert_eq!(p.potential_writes(), [oid(0), oid(1)].into());
        assert_eq!(p.potential_reads(), [oid(0), oid(1)].into());
        assert_eq!(p.referenced_objects().len(), 2);
        assert_eq!(p.arity(), 4);
        assert_eq!(p.name(), "dcas");
    }

    #[test]
    fn arithmetic_and_mov() {
        let mut b = ProgramBuilder::new("arith");
        b.mov(0, imm(10))
            .add(1, reg(0), imm(5))
            .sub(2, reg(1), imm(3))
            .binary(BinaryOp::Mul, 3, reg(2), imm(2))
            .binary(BinaryOp::Min, 4, reg(3), imm(20))
            .binary(BinaryOp::Max, 5, reg(4), imm(0))
            .ret(vec![reg(5)]);
        let p = b.build().unwrap();
        let out = execute(&p, &[], &mut VecContext::new(0), DEFAULT_FUEL).unwrap();
        assert_eq!(out.outputs, vec![20]); // min(24, 20) then max(.., 0)
    }

    #[test]
    fn loops_consume_fuel() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.fresh_label();
        b.bind(top);
        b.jump(top);
        let p = b.build().unwrap();
        let err = execute(&p, &[], &mut VecContext::new(0), 100).unwrap_err();
        assert_eq!(
            err,
            ProgramError::FuelExhausted {
                name: "spin".into()
            }
        );
    }

    #[test]
    fn bounded_loop_terminates() {
        // Sum 1..=5 via a loop.
        let mut b = ProgramBuilder::new("sum5");
        let top = b.fresh_label();
        let done = b.fresh_label();
        b.mov(0, imm(0)).mov(1, imm(1));
        b.bind(top);
        b.jump_if(reg(1), CmpOp::Gt, imm(5), done)
            .add(0, reg(0), reg(1))
            .add(1, reg(1), imm(1))
            .jump(top);
        b.bind(done);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let out = execute(&p, &[], &mut VecContext::new(0), DEFAULT_FUEL).unwrap();
        assert_eq!(out.outputs, vec![15]);
        assert!(out.steps > 5);
    }

    #[test]
    fn missing_arg_is_reported() {
        let mut b = ProgramBuilder::new("needs-arg");
        b.ret(vec![arg(2)]);
        let p = b.build().unwrap();
        let err = execute(&p, &[1], &mut VecContext::new(0), DEFAULT_FUEL).unwrap_err();
        assert_eq!(err, ProgramError::ArgOutOfRange { index: 2, given: 1 });
        assert_eq!(p.arity(), 3);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.fresh_label();
        b.jump(l);
        assert_eq!(b.build().unwrap_err(), ProgramError::UnboundLabel(0));
    }

    #[test]
    fn bad_register_rejected() {
        let err = Program::new(
            "bad",
            vec![Instr::Read {
                object: oid(0),
                dst: NUM_REGS as u8,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::RegisterOutOfRange { .. }));
    }

    #[test]
    fn bad_jump_rejected() {
        let err = Program::new("bad", vec![Instr::Jump { target: 7 }]).unwrap_err();
        assert_eq!(
            err,
            ProgramError::BadJumpTarget {
                instr: 0,
                target: 7
            }
        );
    }

    #[test]
    fn empty_program_rejected() {
        let err = Program::new("empty", vec![]).unwrap_err();
        assert_eq!(err, ProgramError::MissingReturn { instr: None });
    }

    #[test]
    fn fall_through_path_rejected() {
        // The taken branch returns, but the fall-through runs off the end.
        let err = Program::new(
            "no-ret",
            vec![
                Instr::JumpIf {
                    lhs: arg(0),
                    cmp: CmpOp::Eq,
                    rhs: imm(0),
                    target: 1,
                },
                Instr::Mov {
                    dst: 0,
                    src: imm(1),
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, ProgramError::MissingReturn { instr: Some(1) });
    }

    #[test]
    fn unreachable_tail_does_not_need_return() {
        // An infinite loop never falls off the end; instructions after an
        // unconditional backward jump are dead but harmless.
        let p = Program::new(
            "spin-tail",
            vec![
                Instr::Jump { target: 0 },
                Instr::Mov {
                    dst: 0,
                    src: imm(7),
                },
            ],
        )
        .unwrap();
        assert_eq!(p.instrs().len(), 2);
    }

    #[test]
    fn query_program_is_not_update() {
        let mut b = ProgramBuilder::new("read2");
        b.read(oid(0), 0).read(oid(1), 1).ret(vec![reg(0), reg(1)]);
        let p = b.build().unwrap();
        assert!(!p.is_potential_update());
        assert!(p.potential_writes().is_empty());
    }

    #[test]
    fn programs_are_serializable() {
        let p = dcas();
        let json = serde_json_like(&p);
        assert!(json.contains("dcas"));
    }

    // serde-compatible smoke without pulling serde_json: use the Debug
    // representation which covers all fields.
    fn serde_json_like(p: &Program) -> String {
        format!("{p:?}")
    }

    #[test]
    fn display_lists_instructions() {
        let text = dcas().to_string();
        assert!(text.starts_with("program dcas:"));
        assert!(text.contains("Read"));
    }
}
