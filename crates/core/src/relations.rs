//! Relations over the m-operations of a history.
//!
//! A history `H = (op(H), ~H)` pairs the set of m-operations with an
//! irreflexive transitive relation that includes the process orders and the
//! reads-from relation (Section 2.2) — and, depending on the consistency
//! condition under consideration, the real-time order `~t` or the object
//! order `~x` (Section 2.3). [`Relation`] is a dense bitset digraph over
//! history indices with the closure, acyclicity and linear-extension
//! operations the checker needs.

use std::fmt;

use crate::history::{History, MOpIdx};

/// A binary relation over `n` m-operations, stored as a dense bit matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// Creates an empty relation over `n` elements.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Relation {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Number of elements the relation ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the relation ranges over zero elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the pair `(i, j)` — "i is ordered before j".
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: MOpIdx, j: MOpIdx) {
        assert!(i.0 < self.n && j.0 < self.n, "relation index out of range");
        let base = i.0 * self.words_per_row;
        self.bits[base + j.0 / 64] |= 1u64 << (j.0 % 64);
    }

    /// Whether the pair `(i, j)` is in the relation.
    pub fn contains(&self, i: MOpIdx, j: MOpIdx) -> bool {
        let base = i.0 * self.words_per_row;
        self.bits[base + j.0 / 64] & (1u64 << (j.0 % 64)) != 0
    }

    /// Whether `i` and `j` are ordered one way or the other.
    pub fn ordered(&self, i: MOpIdx, j: MOpIdx) -> bool {
        self.contains(i, j) || self.contains(j, i)
    }

    /// Union with another relation over the same elements.
    ///
    /// # Panics
    ///
    /// Panics if the relations range over different numbers of elements.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "relation size mismatch");
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        out
    }

    /// Merges `other` into `self`.
    pub fn union_in_place(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "relation size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// Number of pairs in the relation.
    pub fn edge_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all pairs `(i, j)` in the relation.
    pub fn edges(&self) -> impl Iterator<Item = (MOpIdx, MOpIdx)> + '_ {
        (0..self.n).flat_map(move |i| self.successors(MOpIdx(i)).map(move |j| (MOpIdx(i), j)))
    }

    /// Iterates over the successors of `i`.
    pub fn successors(&self, i: MOpIdx) -> impl Iterator<Item = MOpIdx> + '_ {
        let base = i.0 * self.words_per_row;
        let row = &self.bits[base..base + self.words_per_row];
        row.iter().enumerate().flat_map(|(w, &word)| {
            BitIter {
                word,
                offset: w * 64,
            }
            .map(MOpIdx)
        })
    }

    /// The predecessors of `j` (linear scan over rows).
    pub fn predecessors(&self, j: MOpIdx) -> Vec<MOpIdx> {
        (0..self.n)
            .map(MOpIdx)
            .filter(|&i| self.contains(i, j))
            .collect()
    }

    /// Reflexive-free transitive closure (Warshall over bit rows).
    ///
    /// Note that the closure of a cyclic relation is *not* irreflexive; use
    /// [`Relation::is_irreflexive`] afterwards to detect that case.
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        let wpr = out.words_per_row;
        for k in 0..out.n {
            let kbase = k * wpr;
            for i in 0..out.n {
                if i == k {
                    continue;
                }
                let ibase = i * wpr;
                if out.bits[ibase + k / 64] & (1u64 << (k % 64)) != 0 {
                    // row_i |= row_k (split borrows via split_at_mut).
                    let (lo, hi) = if ibase < kbase {
                        let (a, b) = out.bits.split_at_mut(kbase);
                        (&mut a[ibase..ibase + wpr], &b[..wpr])
                    } else {
                        let (a, b) = out.bits.split_at_mut(ibase);
                        (&mut b[..wpr], &a[kbase..kbase + wpr])
                    };
                    for (x, y) in lo.iter_mut().zip(hi) {
                        *x |= *y;
                    }
                }
            }
        }
        out
    }

    /// Whether no element is related to itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(MOpIdx(i), MOpIdx(i)))
    }

    /// Whether the relation, viewed as a digraph, contains a cycle
    /// (Kahn's algorithm; self-loops count as cycles).
    pub fn has_cycle(&self) -> bool {
        self.topological_sort().is_none()
    }

    /// An explicit cycle in the digraph — the visited vertices in order,
    /// each related to the next and the last related to the first — or
    /// `None` if the relation is acyclic. Self-loops yield a 1-cycle.
    pub fn find_cycle(&self) -> Option<Vec<MOpIdx>> {
        // Iterative coloring DFS: 0 = white, 1 = on stack, 2 = done.
        let mut color = vec![0u8; self.n];
        let mut parent = vec![usize::MAX; self.n];
        for root in 0..self.n {
            if color[root] != 0 {
                continue;
            }
            let mut stack = vec![(root, self.successors(MOpIdx(root)))];
            color[root] = 1;
            while let Some((v, succ)) = stack.last_mut() {
                let v = *v;
                match succ.next() {
                    Some(MOpIdx(w)) if color[w] == 1 => {
                        // Back edge v -> w: unwind the chain w .. v.
                        let mut cycle = vec![MOpIdx(v)];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur];
                            cycle.push(MOpIdx(cur));
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Some(MOpIdx(w)) if color[w] == 0 => {
                        color[w] = 1;
                        parent[w] = v;
                        stack.push((w, self.successors(MOpIdx(w))));
                    }
                    Some(_) => {}
                    None => {
                        color[v] = 2;
                        stack.pop();
                    }
                }
            }
        }
        None
    }

    /// A topological order of the digraph, or `None` if it is cyclic.
    /// Deterministic: among ready elements, the smallest index goes first.
    pub fn topological_sort(&self) -> Option<Vec<MOpIdx>> {
        let mut indegree = vec![0usize; self.n];
        for (_, j) in self.edges() {
            indegree[j.0] += 1;
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..self.n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(MOpIdx(i));
            for j in self.successors(MOpIdx(i)) {
                indegree[j.0] -= 1;
                if indegree[j.0] == 0 {
                    ready.push(std::cmp::Reverse(j.0));
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Whether this relation is a strict total order (every distinct pair
    /// ordered, irreflexive, acyclic).
    pub fn is_total_order(&self) -> bool {
        if !self.is_irreflexive() || self.has_cycle() {
            return false;
        }
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if !self.ordered(MOpIdx(i), MOpIdx(j)) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the total order induced by a sequence (each element before all
    /// later ones).
    ///
    /// # Panics
    ///
    /// Panics if `sequence` is not a permutation of `0..n`.
    pub fn from_sequence(n: usize, sequence: &[MOpIdx]) -> Relation {
        assert_eq!(sequence.len(), n, "sequence must cover all elements");
        let mut seen = vec![false; n];
        for &i in sequence {
            assert!(!seen[i.0], "sequence repeats an element");
            seen[i.0] = true;
        }
        let mut rel = Relation::new(n);
        for (a, &i) in sequence.iter().enumerate() {
            for &j in &sequence[a + 1..] {
                rel.add(i, j);
            }
        }
        rel
    }

    /// Whether `other ⊆ self` as sets of pairs.
    pub fn includes(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n, "relation size mismatch");
        self.bits.iter().zip(&other.bits).all(|(a, b)| b & !a == 0)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({} elems, {} edges: ",
            self.n,
            self.edge_count()
        )?;
        let mut first = true;
        for (i, j) in self.edges() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{}<{}", i.0, j.0)?;
        }
        f.write_str(")")
    }
}

struct BitIter {
    word: u64,
    offset: usize,
}

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.offset + tz)
    }
}

/// Process order `~p`: α before β iff both are issued by the same process
/// and α's per-process sequence number is smaller (Section 2.1).
pub fn process_order(h: &History) -> Relation {
    let mut rel = Relation::new(h.len());
    for p in h.processes() {
        let idxs = h.by_process(p);
        for (a, &i) in idxs.iter().enumerate() {
            for &j in &idxs[a + 1..] {
                rel.add(i, j);
            }
        }
    }
    rel
}

/// Reads-from `~rf`: β before α iff some read of α reads from some write of
/// β (Section 2.1). Reads from the imaginary initial m-operation contribute
/// no pair.
pub fn reads_from(h: &History) -> Relation {
    let mut rel = Relation::new(h.len());
    for (alpha, _) in h.iter() {
        for &(_, writer) in h.read_sources(alpha) {
            if let Some(beta) = writer {
                if beta != alpha {
                    rel.add(beta, alpha);
                }
            }
        }
    }
    rel
}

/// Real-time order `~t`: α before β iff `resp(α) < inv(β)` (Section 2.3).
pub fn real_time(h: &History) -> Relation {
    let mut rel = Relation::new(h.len());
    for (a, ra) in h.iter() {
        for (b, rb) in h.iter() {
            if a != b && ra.responded_at < rb.invoked_at {
                rel.add(a, b);
            }
        }
    }
    rel
}

/// Object order `~x`: α before β iff they share an object *and*
/// `resp(α) < inv(β)` (Section 2.3; used by m-normality).
pub fn object_order(h: &History) -> Relation {
    let mut rel = Relation::new(h.len());
    for (a, ra) in h.iter() {
        for (b, rb) in h.iter() {
            if a != b
                && ra.responded_at < rb.invoked_at
                && h.objects(a).iter().any(|o| h.objects(b).contains(o))
            {
                rel.add(a, b);
            }
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{ObjectId, ProcessId};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn m(i: usize) -> MOpIdx {
        MOpIdx(i)
    }

    #[test]
    fn add_contains_union() {
        let mut a = Relation::new(3);
        a.add(m(0), m(1));
        let mut b = Relation::new(3);
        b.add(m(1), m(2));
        assert!(a.contains(m(0), m(1)));
        assert!(!a.contains(m(1), m(0)));
        let u = a.union(&b);
        assert!(u.contains(m(0), m(1)) && u.contains(m(1), m(2)));
        assert_eq!(u.edge_count(), 2);
        assert!(u.includes(&a) && u.includes(&b));
        assert!(!a.includes(&b));
    }

    #[test]
    fn closure_chains() {
        let mut r = Relation::new(4);
        r.add(m(0), m(1));
        r.add(m(1), m(2));
        r.add(m(2), m(3));
        let c = r.transitive_closure();
        assert!(c.contains(m(0), m(3)));
        assert!(c.is_irreflexive());
        assert!(!c.contains(m(3), m(0)));
    }

    #[test]
    fn closure_exposes_cycles_as_self_loops() {
        let mut r = Relation::new(2);
        r.add(m(0), m(1));
        r.add(m(1), m(0));
        let c = r.transitive_closure();
        assert!(!c.is_irreflexive());
        assert!(r.has_cycle());
    }

    #[test]
    fn find_cycle_returns_a_closed_walk() {
        let mut r = Relation::new(5);
        r.add(m(0), m(1));
        r.add(m(1), m(2));
        r.add(m(2), m(3));
        r.add(m(3), m(1));
        let cycle = r.find_cycle().expect("cyclic");
        assert!(cycle.len() >= 2);
        for (k, &v) in cycle.iter().enumerate() {
            let w = cycle[(k + 1) % cycle.len()];
            assert!(r.contains(v, w), "{v:?} -> {w:?} missing");
        }
        let mut acyclic = Relation::new(3);
        acyclic.add(m(0), m(1));
        assert_eq!(acyclic.find_cycle(), None);
        let mut selfloop = Relation::new(1);
        selfloop.add(m(0), m(0));
        assert_eq!(selfloop.find_cycle(), Some(vec![m(0)]));
    }

    #[test]
    fn topological_sort_deterministic() {
        let mut r = Relation::new(4);
        r.add(m(2), m(0));
        r.add(m(2), m(1));
        let order = r.topological_sort().unwrap();
        assert_eq!(order, vec![m(2), m(0), m(1), m(3)]);
    }

    #[test]
    fn total_order_checks() {
        let seq = [m(2), m(0), m(1)];
        let r = Relation::from_sequence(3, &seq);
        assert!(r.is_total_order());
        let mut partial = Relation::new(3);
        partial.add(m(0), m(1));
        assert!(!partial.is_total_order());
    }

    #[test]
    #[should_panic(expected = "sequence repeats")]
    fn from_sequence_rejects_duplicates() {
        let _ = Relation::from_sequence(2, &[m(0), m(0)]);
    }

    #[test]
    fn successors_across_word_boundaries() {
        let mut r = Relation::new(130);
        r.add(m(0), m(1));
        r.add(m(0), m(64));
        r.add(m(0), m(129));
        let succ: Vec<usize> = r.successors(m(0)).map(|x| x.0).collect();
        assert_eq!(succ, vec![1, 64, 129]);
        assert_eq!(r.predecessors(m(129)), vec![m(0)]);
    }

    fn two_process_history() -> crate::history::History {
        // P0: α=w(x)1 [0..10], β=r(y)2 [40..50]
        // P1: γ=w(y)2 [20..30] reading x from α.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let gamma = b
            .mop(pid(1))
            .at(20, 30)
            .read_from(x, 1, alpha)
            .write(y, 2)
            .finish();
        b.mop(pid(0)).at(40, 50).read_from(y, 2, gamma).finish();
        b.build().unwrap()
    }

    #[test]
    fn builders_produce_expected_orders() {
        let h = two_process_history();
        let alpha = m(0);
        let gamma = m(1);
        let beta = m(2);

        let po = process_order(&h);
        assert!(po.contains(alpha, beta));
        assert!(!po.contains(alpha, gamma));

        let rf = reads_from(&h);
        assert!(rf.contains(alpha, gamma)); // γ reads x from α
        assert!(rf.contains(gamma, beta)); // β reads y from γ
        assert!(!rf.contains(beta, gamma));

        let rt = real_time(&h);
        assert!(rt.contains(alpha, gamma));
        assert!(rt.contains(gamma, beta));
        assert!(rt.contains(alpha, beta));

        let oo = object_order(&h);
        assert!(oo.contains(alpha, gamma)); // share x
        assert!(oo.contains(gamma, beta)); // share y
        assert!(!oo.contains(alpha, beta)); // α on x, β on y: no shared object
    }
}
