//! Shard plans and shard certificates.
//!
//! The Figure 4/6 protocols funnel every update through one global total
//! order. The static conflict graph often proves that whole groups of
//! objects can never interact: no program's footprint bridges them. A
//! [`ShardPlan`] records such a partition of the object universe, and a
//! [`ShardCert`] is the *proof document* the analyzer emits alongside it —
//! per-shard footprint-closure obligations, an explicit enumeration of
//! every cross-shard conflict edge, and a composition verdict stating
//! which Section 4 constraint classes (OO/WW/WO, Theorem 7) remain
//! enforceable by *per-shard* sequencing, per the Gotsman–Burckhardt
//! composition criterion.
//!
//! This module owns only the data model and its JSON codec so that the
//! emitting side (`moc-analyze`) and the independent validator
//! (`moc-audit`) share one schema without sharing any analysis code.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::ObjectId;
use crate::json::{self, Json};
use crate::program::Program;

/// Version tag of the shard-certificate JSON schema.
pub const SHARD_CERT_FORMAT: &str = "moc-shard-cert";
/// Current schema version.
pub const SHARD_CERT_VERSION: u64 = 1;

/// How a sharded broadcast routes an m-operation whose footprint spans
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// The certified policy: a footprint closed within one shard goes to
    /// that shard's channel; anything else falls back to the global
    /// channel (which every replica merges after its shard channels).
    #[default]
    Certified,
    /// Sabotage hook for the chaos suite: route by the *first* footprint
    /// object's shard even when the footprint spans shards — exactly the
    /// damage a mis-sharded hub object does. Never use outside tests.
    FirstObject,
}

/// Where an m-operation's footprint sends it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Footprint closed within this shard: shard-local channel.
    Shard(u32),
    /// Footprint spans shards (or is empty): the global fallback channel.
    Global,
}

/// A total partition of the object universe into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    num_shards: u32,
    policy: RoutePolicy,
}

impl ShardPlan {
    /// Creates a plan from a per-object shard assignment. Shard ids must
    /// be dense: every id in `0..max+1` must own at least one object.
    pub fn new(shard_of: Vec<u32>) -> Result<Self, String> {
        if shard_of.is_empty() {
            return Err("shard plan must cover at least one object".into());
        }
        let num_shards = shard_of.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = vec![false; num_shards as usize];
        for &s in &shard_of {
            seen[s as usize] = true;
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(format!("shard {hole} owns no object (ids must be dense)"));
        }
        Ok(ShardPlan {
            shard_of,
            num_shards,
            policy: RoutePolicy::Certified,
        })
    }

    /// A degenerate single-shard plan (everything global-equivalent).
    pub fn single(num_objects: usize) -> Self {
        ShardPlan {
            shard_of: vec![0; num_objects.max(1)],
            num_shards: 1,
            policy: RoutePolicy::Certified,
        }
    }

    /// Overrides the routing policy (chaos-sabotage hook).
    pub fn with_route_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The routing policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Number of objects the plan covers.
    pub fn num_objects(&self) -> usize {
        self.shard_of.len()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The shard owning `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` lies outside the plan's universe.
    pub fn shard_of(&self, obj: ObjectId) -> u32 {
        self.shard_of[obj.index()]
    }

    /// The per-object assignment, indexed by object id.
    pub fn assignments(&self) -> &[u32] {
        &self.shard_of
    }

    /// Routes a footprint under the plan's policy.
    pub fn route<I: IntoIterator<Item = ObjectId>>(&self, footprint: I) -> Route {
        let mut shards = footprint.into_iter().map(|o| self.shard_of(o));
        let Some(first) = shards.next() else {
            return Route::Global;
        };
        match self.policy {
            RoutePolicy::FirstObject => Route::Shard(first),
            RoutePolicy::Certified => {
                if shards.all(|s| s == first) {
                    Route::Shard(first)
                } else {
                    Route::Global
                }
            }
        }
    }

    /// Shards grouped by id: element `s` lists the objects of shard `s`.
    pub fn shards(&self) -> Vec<Vec<ObjectId>> {
        let mut out = vec![Vec::new(); self.num_shards as usize];
        for (i, &s) in self.shard_of.iter().enumerate() {
            out[s as usize].push(ObjectId::new(i as u32));
        }
        out
    }
}

/// Something with a static object footprint, routable by a [`ShardPlan`].
///
/// The footprint must *over-approximate* every object the value can
/// dynamically read or write — the property that makes shard-local
/// ordering of same-shard conflicts sound.
pub trait Footprinted {
    /// The objects the value may touch.
    fn footprint(&self) -> Vec<ObjectId>;

    /// The objects the value may *write* — must over-approximate every
    /// dynamic write. The default claims the whole touch footprint,
    /// which is always sound; implementations with a tighter may-write
    /// set override this so commutativity-gated delivery (an item with
    /// disjoint writes may apply out of order) can actually engage.
    fn write_footprint(&self) -> Vec<ObjectId> {
        self.footprint()
    }
}

/// Conflict kind of a cross-shard edge, mirroring the conflict graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEdgeKind {
    /// Both programs may write the object (WW-constraint obligation; also
    /// OO and WO).
    Ww,
    /// One program may write, the other may (only) read the object
    /// (OO/WO obligations).
    Rw,
}

impl ShardEdgeKind {
    /// Stable tag used in the JSON document.
    pub fn tag(&self) -> &'static str {
        match self {
            ShardEdgeKind::Ww => "ww",
            ShardEdgeKind::Rw => "rw",
        }
    }

    /// Parses a tag back.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "ww" => Some(ShardEdgeKind::Ww),
            "rw" => Some(ShardEdgeKind::Rw),
            _ => None,
        }
    }
}

impl fmt::Display for ShardEdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One program's entry in a shard certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProgramEntry {
    /// Program name (names must be unique within a certificate).
    pub name: String,
    /// Whether the program is classified as an update.
    pub update: bool,
    /// Whether the claimed footprint/classification is *refined* below
    /// the syntactic one (reachability analysis). Refined claims are
    /// attested, not re-derived, by the auditor — mirroring how
    /// exhaustion proofs are attested in `moc-cert` documents.
    pub refined: bool,
    /// Claimed read footprint (sorted, deduplicated).
    pub reads: Vec<ObjectId>,
    /// Claimed write footprint (sorted, deduplicated).
    pub writes: Vec<ObjectId>,
    /// `Some(s)` when the whole footprint is closed within shard `s`;
    /// `None` for a cross-shard (straddling) program.
    pub shard: Option<u32>,
    /// The shards the footprint touches, ascending. A single-shard
    /// program lists exactly its shard; an empty-footprint program lists
    /// nothing.
    pub spans: Vec<u32>,
}

/// A cross-shard conflict edge: the exact reason a pair of programs still
/// needs the *global* order under the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCrossEdge {
    /// Index of the first program (into [`ShardCert::programs`]).
    pub a: usize,
    /// Index of the second program; `a <= b`, self-edges allowed.
    pub b: usize,
    /// The conflicting object.
    pub object: ObjectId,
    /// Conflict kind.
    pub kind: ShardEdgeKind,
}

/// Which constraint classes survive per-shard sequencing (the
/// certificate's composition verdict).
///
/// The static booleans follow from edge coverage: a WW- or WO-obligated
/// pair always shares a *written* object, and a shared object pins both
/// single-shard footprints to one shard — so per-shard sequencing orders
/// the pair unless a straddling program drags it onto the global channel.
/// The condition strings record the *dynamic* side conditions: m-lin
/// composes by locality (Herlihy–Wing), while m-SC does **not** compose
/// in general (IRIW across shards) and is only recovered when each
/// process confines itself to a single shard, making the history a
/// disjoint union of per-shard histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardComposition {
    /// Every OO-obligated pair is ordered by some single shard's
    /// sequencer: no conflicting pair involves a query and no cross-shard
    /// edge exists.
    pub oo: bool,
    /// Every WW-obligated pair is ordered per-shard: no cross-shard WW
    /// edge.
    pub ww: bool,
    /// Every WO-obligated pair is ordered per-shard: no cross-shard edge
    /// at all (every conflict edge involves a write).
    pub wo: bool,
    /// Side condition under which global m-SC survives per-shard orders.
    pub msc: String,
    /// Side condition for m-linearizability.
    pub mlin: String,
}

/// The m-SC side condition for a multi-shard plan.
pub const MSC_PROCESS_CONFINED: &str = "per-shard-with-process-confinement";
/// The m-SC verdict for a degenerate single-shard plan.
pub const MSC_SINGLE_ORDER: &str = "single-global-order";
/// The m-lin verdict: composes by locality when each shard order respects
/// real time.
pub const MLIN_COMPOSES: &str = "composes-by-locality";

impl ShardComposition {
    /// Recomputes the verdict from certificate data alone. Used by the
    /// emitter to fill the field and by the auditor to cross-check it.
    pub fn derive(
        num_shards: u32,
        programs: &[ShardProgramEntry],
        cross_edges: &[ShardCrossEdge],
    ) -> Self {
        let any_cross = !cross_edges.is_empty();
        let any_cross_ww = cross_edges.iter().any(|e| e.kind == ShardEdgeKind::Ww);
        // OO additionally requires that no conflicting pair involves a
        // query — queries are never routed through a sequencer, so no
        // shard order covers them (same rule as the flat OO certificate).
        let query_conflict = {
            let mut found = false;
            'outer: for (i, p) in programs.iter().enumerate() {
                for q in &programs[i..] {
                    if (p.update && q.update) || !conflicts(p, q) {
                        continue;
                    }
                    found = true;
                    break 'outer;
                }
            }
            found
        };
        ShardComposition {
            oo: !any_cross && !query_conflict,
            ww: !any_cross_ww,
            wo: !any_cross,
            msc: if num_shards <= 1 {
                MSC_SINGLE_ORDER.to_string()
            } else {
                MSC_PROCESS_CONFINED.to_string()
            },
            mlin: MLIN_COMPOSES.to_string(),
        }
    }

    /// Whether the named constraint class is enforced per-shard
    /// (`"oo"`, `"ww"`, `"wo"`).
    pub fn enforced(&self, class: &str) -> Option<bool> {
        match class {
            "oo" => Some(self.oo),
            "ww" => Some(self.ww),
            "wo" => Some(self.wo),
            _ => None,
        }
    }
}

/// Whether two program entries conflict: a shared object that at least
/// one of them may write (the conflict-graph rule, restated over claimed
/// footprints).
pub fn conflicts(p: &ShardProgramEntry, q: &ShardProgramEntry) -> bool {
    let writes = |e: &ShardProgramEntry| e.writes.iter().copied().collect::<BTreeSet<_>>();
    let touches = |e: &ShardProgramEntry| {
        e.reads
            .iter()
            .chain(e.writes.iter())
            .copied()
            .collect::<BTreeSet<_>>()
    };
    writes(p).intersection(&touches(q)).next().is_some()
        || writes(q).intersection(&touches(p)).next().is_some()
}

/// A versioned shard certificate: the partition plus its proof
/// obligations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCert {
    /// Size of the object universe the partition covers.
    pub num_objects: usize,
    /// FNV-1a fingerprint binding the certificate to the program set it
    /// was computed from (see [`fingerprint_programs`]).
    pub programs_fp: u64,
    /// Objects of each shard, ascending within a shard.
    pub shards: Vec<Vec<ObjectId>>,
    /// One entry per analyzed program, in input order.
    pub programs: Vec<ShardProgramEntry>,
    /// Every conflict edge that crosses a shard boundary (involves a
    /// straddling program), sorted by `(a, b, object, kind)`.
    pub cross_edges: Vec<ShardCrossEdge>,
    /// The composition verdict.
    pub composition: ShardComposition,
}

/// A stable fingerprint of a program set for certificate binding: FNV-1a
/// over a canonical encoding of each program's name, syntactic footprint
/// and instruction count. The certificate's claims are all footprint
/// level, so binding footprints (rather than instruction streams) is
/// exactly as strong as the claims it protects.
pub fn fingerprint_programs(programs: &[&Program]) -> u64 {
    let mut text = String::new();
    for p in programs {
        text.push_str(p.name());
        text.push(';');
        text.push('R');
        for o in p.potential_reads() {
            text.push_str(&format!(":{}", o.index()));
        }
        text.push(';');
        text.push('W');
        for o in p.potential_writes() {
            text.push_str(&format!(":{}", o.index()));
        }
        text.push_str(&format!(";I:{}\n", p.instrs().len()));
    }
    fnv1a(text.as_bytes())
}

/// FNV-1a 64 over a byte string — the workspace's one fingerprint kernel.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn objects_json(objs: &[ObjectId]) -> Json {
    Json::Arr(objs.iter().map(|o| json::num(o.as_u32())).collect())
}

fn parse_objects(v: &Json, what: &str) -> Result<Vec<ObjectId>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{what}: expected array"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .map(|n| ObjectId::new(n as u32))
                .ok_or_else(|| format!("{what}: expected object id"))
        })
        .collect()
}

impl ShardCert {
    /// Serializes the certificate to its canonical JSON document.
    pub fn to_json(&self) -> String {
        let programs = self
            .programs
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("name".to_string(), json::str(p.name.clone())),
                    ("update".to_string(), Json::Bool(p.update)),
                    ("refined".to_string(), Json::Bool(p.refined)),
                    ("reads".to_string(), objects_json(&p.reads)),
                    ("writes".to_string(), objects_json(&p.writes)),
                ];
                match p.shard {
                    Some(s) => fields.push(("shard".to_string(), json::num(s))),
                    None => fields.push(("shard".to_string(), Json::Null)),
                }
                fields.push((
                    "spans".to_string(),
                    Json::Arr(p.spans.iter().map(|&s| json::num(s)).collect()),
                ));
                Json::Obj(fields)
            })
            .collect();
        let edges = self
            .cross_edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("a".to_string(), json::num(e.a as u32)),
                    ("b".to_string(), json::num(e.b as u32)),
                    ("object".to_string(), json::num(e.object.as_u32())),
                    ("kind".to_string(), json::str(e.kind.tag())),
                ])
            })
            .collect();
        let composition = Json::Obj(vec![
            ("oo".to_string(), Json::Bool(self.composition.oo)),
            ("ww".to_string(), Json::Bool(self.composition.ww)),
            ("wo".to_string(), Json::Bool(self.composition.wo)),
            ("msc".to_string(), json::str(self.composition.msc.clone())),
            ("mlin".to_string(), json::str(self.composition.mlin.clone())),
        ]);
        Json::Obj(vec![
            ("format".to_string(), json::str(SHARD_CERT_FORMAT)),
            ("version".to_string(), json::num(SHARD_CERT_VERSION as u32)),
            (
                "num_objects".to_string(),
                json::num(self.num_objects as u32),
            ),
            (
                "programs_fingerprint".to_string(),
                json::str(format!("{:016x}", self.programs_fp)),
            ),
            (
                "shards".to_string(),
                Json::Arr(self.shards.iter().map(|s| objects_json(s)).collect()),
            ),
            ("programs".to_string(), Json::Arr(programs)),
            ("cross_edges".to_string(), Json::Arr(edges)),
            ("composition".to_string(), composition),
        ])
        .render()
    }

    /// Parses a certificate document, checking format and version tags.
    /// Structural parse only — semantic validation is the auditor's job.
    pub fn parse(text: &str) -> Result<ShardCert, String> {
        let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let format = field("format")?.as_str().ok_or("format: expected string")?;
        if format != SHARD_CERT_FORMAT {
            return Err(format!("not a shard certificate (format '{format}')"));
        }
        let version = field("version")?.as_u64().ok_or("version: expected uint")?;
        if version != SHARD_CERT_VERSION {
            return Err(format!("unsupported shard-cert version {version}"));
        }
        let num_objects = field("num_objects")?
            .as_usize()
            .ok_or("num_objects: expected uint")?;
        let fp_hex = field("programs_fingerprint")?
            .as_str()
            .ok_or("programs_fingerprint: expected string")?;
        let programs_fp = u64::from_str_radix(fp_hex, 16)
            .map_err(|_| "programs_fingerprint: expected hex u64".to_string())?;
        let shards = field("shards")?
            .as_arr()
            .ok_or("shards: expected array")?
            .iter()
            .map(|s| parse_objects(s, "shard"))
            .collect::<Result<Vec<_>, _>>()?;
        let programs = field("programs")?
            .as_arr()
            .ok_or("programs: expected array")?
            .iter()
            .map(|p| {
                let get = |key: &str| {
                    p.get(key)
                        .ok_or_else(|| format!("program entry missing '{key}'"))
                };
                let shard = match get("shard")? {
                    Json::Null => None,
                    v => Some(v.as_u64().ok_or("shard: expected uint or null")? as u32),
                };
                Ok(ShardProgramEntry {
                    name: get("name")?
                        .as_str()
                        .ok_or("name: expected string")?
                        .to_string(),
                    update: get("update")?.as_bool().ok_or("update: expected bool")?,
                    refined: get("refined")?.as_bool().ok_or("refined: expected bool")?,
                    reads: parse_objects(get("reads")?, "reads")?,
                    writes: parse_objects(get("writes")?, "writes")?,
                    shard,
                    spans: get("spans")?
                        .as_arr()
                        .ok_or("spans: expected array")?
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .map(|v| v as u32)
                                .ok_or_else(|| "spans: expected uint".to_string())
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let cross_edges = field("cross_edges")?
            .as_arr()
            .ok_or("cross_edges: expected array")?
            .iter()
            .map(|e| {
                let get = |key: &str| {
                    e.get(key)
                        .ok_or_else(|| format!("cross edge missing '{key}'"))
                };
                Ok(ShardCrossEdge {
                    a: get("a")?.as_usize().ok_or("edge a: expected uint")?,
                    b: get("b")?.as_usize().ok_or("edge b: expected uint")?,
                    object: ObjectId::new(
                        get("object")?
                            .as_u64()
                            .ok_or("edge object: expected uint")? as u32,
                    ),
                    kind: ShardEdgeKind::from_tag(
                        get("kind")?.as_str().ok_or("edge kind: expected string")?,
                    )
                    .ok_or("edge kind: expected 'ww' or 'rw'")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let comp = field("composition")?;
        let cget = |key: &str| {
            comp.get(key)
                .ok_or_else(|| format!("composition missing '{key}'"))
        };
        let composition = ShardComposition {
            oo: cget("oo")?
                .as_bool()
                .ok_or("composition oo: expected bool")?,
            ww: cget("ww")?
                .as_bool()
                .ok_or("composition ww: expected bool")?,
            wo: cget("wo")?
                .as_bool()
                .ok_or("composition wo: expected bool")?,
            msc: cget("msc")?
                .as_str()
                .ok_or("composition msc: expected string")?
                .to_string(),
            mlin: cget("mlin")?
                .as_str()
                .ok_or("composition mlin: expected string")?
                .to_string(),
        };
        Ok(ShardCert {
            num_objects,
            programs_fp,
            shards,
            programs,
            cross_edges,
            composition,
        })
    }

    /// The plan the certificate describes, rebuilt from the shard lists.
    pub fn plan(&self) -> Result<ShardPlan, String> {
        let mut shard_of = vec![u32::MAX; self.num_objects];
        for (s, objs) in self.shards.iter().enumerate() {
            for o in objs {
                if o.index() >= self.num_objects {
                    return Err(format!("object {o} outside the universe"));
                }
                if shard_of[o.index()] != u32::MAX {
                    return Err(format!("object {o} assigned to two shards"));
                }
                shard_of[o.index()] = s as u32;
            }
        }
        if let Some(missing) = shard_of.iter().position(|&s| s == u32::MAX) {
            return Err(format!("object {missing} assigned to no shard"));
        }
        ShardPlan::new(shard_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn plan_routes_closed_footprints_to_their_shard() {
        let plan = ShardPlan::new(vec![0, 0, 1, 1]).unwrap();
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.route([oid(0), oid(1)]), Route::Shard(0));
        assert_eq!(plan.route([oid(2)]), Route::Shard(1));
        assert_eq!(plan.route([oid(1), oid(2)]), Route::Global);
        assert_eq!(plan.route([]), Route::Global);
    }

    #[test]
    fn first_object_policy_misroutes_spanning_footprints() {
        let plan = ShardPlan::new(vec![0, 1])
            .unwrap()
            .with_route_policy(RoutePolicy::FirstObject);
        assert_eq!(plan.route([oid(0), oid(1)]), Route::Shard(0));
        assert_eq!(plan.route([oid(1), oid(0)]), Route::Shard(1));
    }

    #[test]
    fn plan_rejects_sparse_shard_ids() {
        assert!(ShardPlan::new(vec![0, 2]).is_err());
        assert!(ShardPlan::new(vec![]).is_err());
        assert!(ShardPlan::new(vec![1, 0, 1]).is_ok());
    }

    fn entry(name: &str, update: bool, reads: &[u32], writes: &[u32]) -> ShardProgramEntry {
        ShardProgramEntry {
            name: name.to_string(),
            update,
            refined: false,
            reads: reads.iter().map(|&i| oid(i)).collect(),
            writes: writes.iter().map(|&i| oid(i)).collect(),
            shard: Some(0),
            spans: vec![0],
        }
    }

    #[test]
    fn conflict_rule_needs_a_write_on_a_shared_object() {
        let q1 = entry("q1", false, &[0], &[]);
        let q2 = entry("q2", false, &[0], &[]);
        let w = entry("w", true, &[], &[0]);
        let w_other = entry("w2", true, &[], &[1]);
        assert!(!conflicts(&q1, &q2), "read-read never conflicts");
        assert!(conflicts(&q1, &w));
        assert!(conflicts(&w, &w));
        assert!(!conflicts(&w, &w_other));
    }

    #[test]
    fn composition_derivation_matches_edge_shape() {
        let progs = vec![entry("w", true, &[], &[0]), entry("q", false, &[0], &[])];
        let none = ShardComposition::derive(2, &progs, &[]);
        assert!(none.ww && none.wo);
        assert!(!none.oo, "a query conflict blocks OO even with no edges");
        assert_eq!(none.msc, MSC_PROCESS_CONFINED);

        let updates_only = vec![entry("w1", true, &[], &[0]), entry("w2", true, &[], &[0])];
        let clean = ShardComposition::derive(1, &updates_only, &[]);
        assert!(clean.oo && clean.ww && clean.wo);
        assert_eq!(clean.msc, MSC_SINGLE_ORDER);

        let rw_edge = ShardCrossEdge {
            a: 0,
            b: 1,
            object: oid(0),
            kind: ShardEdgeKind::Rw,
        };
        let with_rw = ShardComposition::derive(2, &updates_only, std::slice::from_ref(&rw_edge));
        assert!(with_rw.ww && !with_rw.wo && !with_rw.oo);

        let ww_edge = ShardCrossEdge {
            kind: ShardEdgeKind::Ww,
            ..rw_edge
        };
        let with_ww = ShardComposition::derive(2, &updates_only, &[ww_edge]);
        assert!(!with_ww.ww && !with_ww.wo);
    }

    #[test]
    fn cert_json_round_trips() {
        let programs = vec![
            ShardProgramEntry {
                name: "rmw".into(),
                update: true,
                refined: false,
                reads: vec![oid(0)],
                writes: vec![oid(0)],
                shard: Some(0),
                spans: vec![0],
            },
            ShardProgramEntry {
                name: "bridge".into(),
                update: true,
                refined: true,
                reads: vec![oid(0), oid(1)],
                writes: vec![oid(1)],
                shard: None,
                spans: vec![0, 1],
            },
        ];
        let cross_edges = vec![ShardCrossEdge {
            a: 0,
            b: 1,
            object: oid(0),
            kind: ShardEdgeKind::Rw,
        }];
        let composition = ShardComposition::derive(2, &programs, &cross_edges);
        let cert = ShardCert {
            num_objects: 2,
            programs_fp: 0xdead_beef_0123_4567,
            shards: vec![vec![oid(0)], vec![oid(1)]],
            programs,
            cross_edges,
            composition,
        };
        let text = cert.to_json();
        let back = ShardCert::parse(&text).expect("round trip");
        assert_eq!(back, cert);
        let plan = back.plan().unwrap();
        assert_eq!(plan.shard_of(oid(0)), 0);
        assert_eq!(plan.shard_of(oid(1)), 1);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(ShardCert::parse("{}").is_err());
        assert!(ShardCert::parse("{\"format\":\"moc-cert\",\"version\":1}").is_err());
        assert!(ShardCert::parse("not json").is_err());
    }

    #[test]
    fn program_fingerprint_tracks_footprints() {
        let mk = |name: &str, obj: u32| {
            let mut b = ProgramBuilder::new(name);
            b.write(oid(obj), crate::program::imm(1)).ret(vec![]);
            b.build().unwrap()
        };
        let a = mk("w", 0);
        let b = mk("w", 1);
        let c = mk("w", 0);
        assert_ne!(
            fingerprint_programs(&[&a]),
            fingerprint_programs(&[&b]),
            "footprint change moves the fingerprint"
        );
        assert_eq!(fingerprint_programs(&[&a]), fingerprint_programs(&[&c]));
        assert_ne!(
            fingerprint_programs(&[&a, &b]),
            fingerprint_programs(&[&b, &a]),
            "program order is part of the binding"
        );
    }
}
