//! Fixed-width bitsets for hot search loops.
//!
//! The admissibility search keeps its scheduled set as a [`BitSet`] so that
//! schedule/unschedule are single word operations and the set never
//! reallocates after construction. The width is fixed at creation; indices
//! are checked in debug builds only, keeping the release path branch-lean.

/// A fixed-width set of `usize` indices backed by `u64` words.
///
/// Unlike `std::collections::HashSet`, membership updates never allocate,
/// and the backing words are exposed for fingerprinting or bulk scans.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// The universe width this set was created with.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds `i`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Removes every element (words are zeroed in place).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words, least-significant index first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Copies the contents of `other` into `self`. Both sets must share a
    /// universe width; no allocation happens.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "already present");
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn copy_from_matches_source() {
        let mut a = BitSet::new(70);
        a.insert(3);
        a.insert(69);
        let mut b = BitSet::new(70);
        b.insert(10);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert!(!b.contains(10));
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(7);
        s.clear();
        assert_eq!(s.count(), 0);
        assert_eq!(s.words(), &[0]);
    }
}
