//! A line-based text format for histories, so executions can be saved,
//! diffed, shipped in bug reports, and re-checked by the `moc` CLI.
//!
//! ```text
//! history v1
//! objects 2
//! mop P0#0 inv=0 resp=10 class=update label=wx
//!   w o0 1 @1
//! mop P1#0 inv=20 resp=30 class=query label=rx
//!   r o0 1 from=P0#0 @1
//! end
//! ```
//!
//! * one `mop` header per m-operation, indented operation lines below it;
//! * objects are `o<index>`; writers are `P<process>#<seq>` or `init`;
//! * `@<version>` is the object version read/established.
//!
//! [`to_text`] and [`from_text`] round-trip exactly ([`History`] equality
//! up to record order is preserved because order is kept verbatim).

use std::fmt::Write as _;

use crate::error::CoreError;
use crate::history::History;
use crate::ids::{MOpId, ObjectId, ProcessId};
use crate::mop::{EventTime, MOpClass, MOpRecord};
use crate::op::{CompletedOp, OpKind};

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The header line is missing or names an unsupported version.
    BadHeader(String),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The reconstructed history failed validation.
    Invalid(CoreError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            CodecError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            CodecError::Invalid(e) => write!(f, "invalid history: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a history to the text format.
pub fn to_text(h: &History) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "history v1");
    let _ = writeln!(out, "objects {}", h.num_objects());
    for rec in h.records() {
        let _ = writeln!(
            out,
            "mop {} inv={} resp={} class={} label={}",
            rec.id,
            rec.invoked_at.as_nanos(),
            rec.responded_at.as_nanos(),
            rec.treated_as,
            escape(&rec.label),
        );
        for op in &rec.ops {
            match op.kind {
                OpKind::Write => {
                    let _ = writeln!(
                        out,
                        "  w o{} {} @{}",
                        op.object.index(),
                        op.value,
                        op.version
                    );
                }
                OpKind::Read => {
                    let _ = writeln!(
                        out,
                        "  r o{} {} from={} @{}",
                        op.object.index(),
                        op.value,
                        op.writer,
                        op.version
                    );
                }
            }
        }
        if !rec.outputs.is_empty() {
            let outputs: Vec<String> = rec.outputs.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "  outputs {}", outputs.join(" "));
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// A stable 64-bit fingerprint of a history: FNV-1a over its canonical
/// [`to_text`] serialization. Certificates embed this value so an auditor
/// can verify that a certificate is bound to the history it is presented
/// with (see `docs/CERTIFICATES.md`).
pub fn fingerprint(h: &History) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in to_text(h).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn escape(s: &str) -> String {
    if s.is_empty() {
        "-".to_string()
    } else {
        s.replace(' ', "_")
    }
}

fn unescape(s: &str) -> String {
    if s == "-" {
        String::new()
    } else {
        s.replace('_', " ")
    }
}

fn parse_mop_id(s: &str, line: usize) -> Result<MOpId, CodecError> {
    if s == "init" {
        return Ok(MOpId::INITIAL);
    }
    let bad = || CodecError::BadLine {
        line,
        reason: format!("bad m-operation id {s:?}"),
    };
    let rest = s.strip_prefix('P').ok_or_else(bad)?;
    let (p, q) = rest.split_once('#').ok_or_else(bad)?;
    Ok(MOpId::new(
        ProcessId::new(p.parse().map_err(|_| bad())?),
        q.parse().map_err(|_| bad())?,
    ))
}

fn parse_object(s: &str, line: usize) -> Result<ObjectId, CodecError> {
    let bad = || CodecError::BadLine {
        line,
        reason: format!("bad object {s:?}"),
    };
    let idx = s.strip_prefix('o').ok_or_else(bad)?;
    Ok(ObjectId::new(idx.parse().map_err(|_| bad())?))
}

fn parse_kv<'a>(tok: &'a str, key: &str, line: usize) -> Result<&'a str, CodecError> {
    tok.strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or(CodecError::BadLine {
            line,
            reason: format!("expected {key}=…, got {tok:?}"),
        })
}

/// Parses a history from the text format.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed input or if the reconstructed
/// history fails [`History::new`] validation.
pub fn from_text(text: &str) -> Result<History, CodecError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CodecError::BadHeader("empty".into()))?;
    if header.trim() != "history v1" {
        return Err(CodecError::BadHeader(header.to_string()));
    }
    let (ln, objects_line) = lines
        .next()
        .ok_or(CodecError::BadHeader("missing objects line".into()))?;
    let num_objects: usize = objects_line
        .trim()
        .strip_prefix("objects ")
        .and_then(|s| s.parse().ok())
        .ok_or(CodecError::BadLine {
            line: ln + 1,
            reason: "expected `objects <n>`".into(),
        })?;

    let mut records: Vec<MOpRecord> = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "end" {
            break;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        match toks[0] {
            "mop" => {
                if toks.len() != 6 {
                    return Err(CodecError::BadLine {
                        line: line_no,
                        reason: "mop header needs 6 tokens".into(),
                    });
                }
                let id = parse_mop_id(toks[1], line_no)?;
                let inv: u64 = parse_kv(toks[2], "inv", line_no)?.parse().map_err(|_| {
                    CodecError::BadLine {
                        line: line_no,
                        reason: "bad inv time".into(),
                    }
                })?;
                let resp: u64 = parse_kv(toks[3], "resp", line_no)?.parse().map_err(|_| {
                    CodecError::BadLine {
                        line: line_no,
                        reason: "bad resp time".into(),
                    }
                })?;
                let class = match parse_kv(toks[4], "class", line_no)? {
                    "update" => MOpClass::Update,
                    "query" => MOpClass::Query,
                    other => {
                        return Err(CodecError::BadLine {
                            line: line_no,
                            reason: format!("bad class {other:?}"),
                        })
                    }
                };
                let label = unescape(parse_kv(toks[5], "label", line_no)?);
                records.push(MOpRecord {
                    id,
                    invoked_at: EventTime::from_nanos(inv),
                    responded_at: EventTime::from_nanos(resp),
                    ops: Vec::new(),
                    outputs: Vec::new(),
                    treated_as: class,
                    label,
                });
            }
            "w" | "r" => {
                let rec = records.last_mut().ok_or(CodecError::BadLine {
                    line: line_no,
                    reason: "operation before any mop header".into(),
                })?;
                let object = parse_object(toks[1], line_no)?;
                let value: i64 =
                    toks.get(2)
                        .and_then(|s| s.parse().ok())
                        .ok_or(CodecError::BadLine {
                            line: line_no,
                            reason: "bad value".into(),
                        })?;
                if toks[0] == "w" {
                    let version = parse_version(toks.get(3), line_no)?;
                    rec.ops
                        .push(CompletedOp::write(object, value, rec.id, version));
                } else {
                    let writer = parse_mop_id(parse_kv(toks[3], "from", line_no)?, line_no)?;
                    let version = parse_version(toks.get(4), line_no)?;
                    rec.ops
                        .push(CompletedOp::read(object, value, writer, version));
                }
            }
            "outputs" => {
                let rec = records.last_mut().ok_or(CodecError::BadLine {
                    line: line_no,
                    reason: "outputs before any mop header".into(),
                })?;
                rec.outputs = toks[1..]
                    .iter()
                    .map(|s| s.parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| CodecError::BadLine {
                        line: line_no,
                        reason: "bad output value".into(),
                    })?;
            }
            other => {
                return Err(CodecError::BadLine {
                    line: line_no,
                    reason: format!("unknown directive {other:?}"),
                })
            }
        }
    }
    History::new(num_objects, records).map_err(CodecError::Invalid)
}

fn parse_version(tok: Option<&&str>, line: usize) -> Result<u64, CodecError> {
    let tok = tok.ok_or(CodecError::BadLine {
        line,
        reason: "missing @version".into(),
    })?;
    tok.strip_prefix('@')
        .and_then(|v| v.parse().ok())
        .ok_or(CodecError::BadLine {
            line,
            reason: format!("bad version {tok:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn sample() -> History {
        let x = ObjectId::new(0);
        let y = ObjectId::new(1);
        let mut b = HistoryBuilder::new(2);
        let w = b
            .mop(ProcessId::new(0))
            .at(0, 10)
            .write(x, 1)
            .write(y, 2)
            .label("with space")
            .outputs(vec![7, -3])
            .finish();
        b.mop(ProcessId::new(1))
            .at(20, 30)
            .read_from(x, 1, w)
            .read_init(y)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let h = sample();
        let text = to_text(&h);
        let h2 = from_text(&text).unwrap();
        assert_eq!(h.records(), h2.records());
        assert_eq!(h.num_objects(), h2.num_objects());
        // And the text is stable.
        assert_eq!(text, to_text(&h2));
    }

    #[test]
    fn format_looks_as_documented() {
        let text = to_text(&sample());
        assert!(text.starts_with("history v1\nobjects 2\n"));
        assert!(text.contains("mop P0#0 inv=0 resp=10 class=update label=with_space"));
        assert!(text.contains("  w o0 1 @0"));
        assert!(text.contains("  r o1 0 from=init @0"));
        assert!(text.contains("  outputs 7 -3"));
        assert!(text.trim_end().ends_with("end"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(from_text(""), Err(CodecError::BadHeader(_))));
        assert!(matches!(
            from_text("history v9\nobjects 1\nend\n"),
            Err(CodecError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = "history v1\nobjects 1\nmop nonsense\nend\n";
        assert!(matches!(from_text(bad), Err(CodecError::BadLine { .. })));
        let bad = "history v1\nobjects 1\n  w o0 1 @1\nend\n";
        assert!(matches!(from_text(bad), Err(CodecError::BadLine { .. })));
        let bad = "history v1\nobjects 1\nwhat o0\nend\n";
        assert!(matches!(from_text(bad), Err(CodecError::BadLine { .. })));
    }

    #[test]
    fn rejects_semantically_invalid_histories() {
        // Reads from a writer that does not exist.
        let bad = "history v1\nobjects 1\nmop P0#0 inv=0 resp=10 class=query label=-\n  r o0 1 from=P9#9 @1\nend\n";
        assert!(matches!(from_text(bad), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let h = sample();
        assert_eq!(
            fingerprint(&h),
            fingerprint(&from_text(&to_text(&h)).unwrap())
        );
        // Any semantic difference moves the fingerprint.
        let mut b = HistoryBuilder::new(2);
        b.mop(ProcessId::new(0))
            .at(0, 10)
            .write(ObjectId::new(0), 1)
            .finish();
        let other = b.build().unwrap();
        assert_ne!(fingerprint(&h), fingerprint(&other));
    }

    #[test]
    fn empty_history_round_trips() {
        let h = HistoryBuilder::new(3).build().unwrap();
        let h2 = from_text(&to_text(&h)).unwrap();
        assert_eq!(h2.len(), 0);
        assert_eq!(h2.num_objects(), 3);
    }
}
