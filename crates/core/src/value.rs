//! Object values and write provenance.
//!
//! The paper models objects as integer registers; we follow suit with
//! [`Value`] = `i64`. Every write creates a new *version* of its object, and
//! every read records exactly which version (and hence which m-operation's
//! write) it observed. Tracking provenance makes the reads-from relation
//! `~rf` exact — no "all written values are unique" assumption is needed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::MOpId;

/// The value stored in a shared object.
///
/// The paper's examples use small integers; `i64` accommodates counters,
/// account balances and encoded composite values without loss of generality.
pub type Value = i64;

/// A versioned object state: the current value together with the provenance
/// of the write that produced it.
///
/// The `version` field mirrors the per-object entry of the replica's
/// [`crate::vv::VersionVector`]: the paper's protocols increment `ts[x]`
/// exactly once per m-operation that writes `x` (actions A2 of Figures 4 and
/// 6), so a `(object, version)` pair uniquely names a write event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Versioned {
    /// The stored value.
    pub value: Value,
    /// Version number of this object: 0 for the initial value, incremented
    /// by one for each m-operation that writes the object.
    pub version: u64,
    /// The m-operation whose write produced this version
    /// ([`MOpId::INITIAL`] for the initial value).
    pub writer: MOpId,
}

impl Versioned {
    /// The initial state of every object: value `0`, version `0`, written by
    /// the imaginary initial m-operation (Section 2.1: "we assume that an
    /// imaginary m-operation that writes to all objects is performed to
    /// initialize the objects").
    pub const INITIAL: Versioned = Versioned {
        value: 0,
        version: 0,
        writer: MOpId::INITIAL,
    };

    /// Creates a versioned value.
    pub const fn new(value: Value, version: u64, writer: MOpId) -> Self {
        Versioned {
            value,
            version,
            writer,
        }
    }

    /// Returns `true` if this is still the initial, never-written state.
    pub const fn is_initial(&self) -> bool {
        self.version == 0
    }
}

impl Default for Versioned {
    fn default() -> Self {
        Versioned::INITIAL
    }
}

impl fmt::Display for Versioned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}({})", self.value, self.version, self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[test]
    fn initial_is_version_zero() {
        assert!(Versioned::INITIAL.is_initial());
        assert_eq!(Versioned::INITIAL.value, 0);
        assert!(Versioned::INITIAL.writer.is_initial());
        assert_eq!(Versioned::default(), Versioned::INITIAL);
    }

    #[test]
    fn written_value_is_not_initial() {
        let v = Versioned::new(42, 3, MOpId::new(ProcessId::new(1), 0));
        assert!(!v.is_initial());
        assert_eq!(v.to_string(), "42@v3(P1#0)");
    }
}
