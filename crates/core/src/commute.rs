//! Commutativity certificates and Lipton-style mover classes.
//!
//! The Figure 4/6 protocols (and the sharded variant) totally order every
//! pair of update m-operations — even pairs whose footprints can never
//! interact. A [`CommuteCert`] is the analyzer's proof document that two
//! program instances *commute*: running them in either order produces the
//! same object states **and** the same return values, because neither may
//! write an object the other may touch. The certificate carries the full
//! pairwise commutativity matrix in CSR form plus a per-program
//! [`MoverClass`] summarizing how each program sits relative to the two
//! ordering mechanisms the protocols use (the broadcast update order and
//! local query linearization).
//!
//! Downstream the certificate is spent twice: the admissibility engine
//! prunes symmetric interleavings of commuting branches, and the sharded
//! broadcast applies commuting deliveries without waiting for cross-shard
//! barriers (deriving a [`CommutePlan`] against a [`ShardPlan`]).
//!
//! As with [`crate::shard`], this module owns only the data model and its
//! JSON codec so the emitter (`moc-analyze`) and the independent
//! validator (`moc-audit`) share one schema without sharing analysis
//! code.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::ObjectId;
use crate::json::{self, Json};
use crate::shard::ShardPlan;

/// Version tag of the commute-certificate JSON schema.
pub const COMMUTE_CERT_FORMAT: &str = "moc-commute-cert";
/// Current schema version.
pub const COMMUTE_CERT_VERSION: u64 = 1;

/// The side conditions under which the certificate's commutation claims
/// are valid, tied to the register semantics of the m-operation DSL. The
/// auditor rejects a certificate whose conditions differ: a document
/// produced for different semantics proves nothing here.
///
/// - `footprints-over-approximate-register-semantics`: the claimed
///   read/write sets over-approximate every object access any execution
///   of the program can perform under the register machine of
///   [`crate::program`].
/// - `commutation-is-state-and-observation`: a matrix pair commutes as
///   state transformers *and* in returned values — neither side may write
///   an object the other may touch.
/// - `self-pairs-model-concurrent-instances`: the diagonal entry `(i,i)`
///   claims two concurrent instances of program `i` commute with each
///   other (true exactly when the program may write nothing).
pub const COMMUTE_SIDE_CONDITIONS: &[&str] = &[
    "footprints-over-approximate-register-semantics",
    "commutation-is-state-and-observation",
    "self-pairs-model-concurrent-instances",
];

/// Lipton-style mover class of one program within a configuration,
/// derived from which *other* programs it commutes with (the diagonal
/// self-pair is recorded in the matrix but does not affect the class:
/// classes describe a program's freedom relative to the rest of the set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoverClass {
    /// May write nothing: invisible to every replica state, so it never
    /// needs a sequencer stamp at all.
    ReadOnly,
    /// Commutes with every other program (updates and queries alike):
    /// its position in any order is free.
    BothMover,
    /// Commutes with every other *update* but some query reads its
    /// writes: its slot in the broadcast update order is irrelevant to
    /// replica state — it can be delayed (moved right) past other
    /// updates; only query visibility pins it.
    RightMover,
    /// Conflicts with some update but no query observes it: it must keep
    /// its place in the update order, yet it can be advanced (moved left)
    /// past any query without changing what the query returns.
    LeftMover,
    /// Conflicts with an update and with a query: fully pinned.
    NonMover,
}

impl MoverClass {
    /// Stable tag used in the JSON document.
    pub fn tag(&self) -> &'static str {
        match self {
            MoverClass::ReadOnly => "read-only",
            MoverClass::BothMover => "both-mover",
            MoverClass::RightMover => "right-mover",
            MoverClass::LeftMover => "left-mover",
            MoverClass::NonMover => "non-mover",
        }
    }

    /// Parses a tag back.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "read-only" => Some(MoverClass::ReadOnly),
            "both-mover" => Some(MoverClass::BothMover),
            "right-mover" => Some(MoverClass::RightMover),
            "left-mover" => Some(MoverClass::LeftMover),
            "non-mover" => Some(MoverClass::NonMover),
            _ => None,
        }
    }
}

impl fmt::Display for MoverClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One program's entry in a commute certificate: the claimed (possibly
/// refined) footprint the matrix was computed from, plus its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommuteProgramEntry {
    /// Program name (unique within a certificate).
    pub name: String,
    /// Whether the program is classified as an update.
    pub update: bool,
    /// Whether the claimed footprint/classification is refined below the
    /// syntactic one (attested, not re-derived, by the auditor).
    pub refined: bool,
    /// Claimed read footprint (sorted, deduplicated).
    pub reads: Vec<ObjectId>,
    /// Claimed write footprint (sorted, deduplicated).
    pub writes: Vec<ObjectId>,
    /// The program's mover class within this configuration.
    pub class: MoverClass,
}

/// Whether two footprint claims commute: neither side may write an
/// object the other may touch (the exact negation of the conflict-graph
/// rule of [`crate::shard::conflicts`]).
pub fn footprints_commute(p: &CommuteProgramEntry, q: &CommuteProgramEntry) -> bool {
    let writes = |e: &CommuteProgramEntry| e.writes.iter().copied().collect::<BTreeSet<_>>();
    let touches = |e: &CommuteProgramEntry| {
        e.reads
            .iter()
            .chain(e.writes.iter())
            .copied()
            .collect::<BTreeSet<_>>()
    };
    writes(p).intersection(&touches(q)).next().is_none()
        && writes(q).intersection(&touches(p)).next().is_none()
}

/// Derives the mover class of program `i` from the full matrix rows.
/// Only off-diagonal pairs matter; the diagonal self-pair is a property
/// of concurrent instances, not of the program's place among the others.
pub fn derive_class(entries: &[CommuteProgramEntry], i: usize) -> MoverClass {
    if entries[i].writes.is_empty() {
        return MoverClass::ReadOnly;
    }
    let mut conflicts_update = false;
    let mut conflicts_query = false;
    for (j, q) in entries.iter().enumerate() {
        if j == i || footprints_commute(&entries[i], q) {
            continue;
        }
        if q.update {
            conflicts_update = true;
        } else {
            conflicts_query = true;
        }
    }
    match (conflicts_update, conflicts_query) {
        (false, false) => MoverClass::BothMover,
        (false, true) => MoverClass::RightMover,
        (true, false) => MoverClass::LeftMover,
        (true, true) => MoverClass::NonMover,
    }
}

/// The full symmetric pairwise commutativity matrix over a program set,
/// in compressed sparse row form: row `i` lists every `j` (ascending,
/// including `j == i` when two instances of `i` commute) such that the
/// pair `(i, j)` commutes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommuteMatrix {
    /// Row offsets into `cols`; `offsets.len() == n + 1`.
    pub offsets: Vec<u32>,
    /// Column indices, ascending within each row.
    pub cols: Vec<u32>,
}

impl CommuteMatrix {
    /// Computes the matrix from footprint claims.
    pub fn derive(entries: &[CommuteProgramEntry]) -> Self {
        let n = entries.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        offsets.push(0u32);
        for p in entries {
            for (j, q) in entries.iter().enumerate() {
                if footprints_commute(p, q) {
                    cols.push(j as u32);
                }
            }
            offsets.push(cols.len() as u32);
        }
        CommuteMatrix { offsets, cols }
    }

    /// Number of rows (programs).
    pub fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Row `i` as a slice of commuting partners.
    pub fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.cols[lo..hi]
    }

    /// Whether the pair `(i, j)` commutes.
    pub fn commutes(&self, i: usize, j: usize) -> bool {
        self.row(i).binary_search(&(j as u32)).is_ok()
    }

    /// Number of unordered commuting pairs `i <= j` (the diagonal counts
    /// once).
    pub fn num_commuting_pairs(&self) -> usize {
        (0..self.num_rows())
            .map(|i| self.row(i).iter().filter(|&&j| j as usize >= i).count())
            .sum()
    }

    /// Structural well-formedness: monotone offsets covering `cols`,
    /// ascending in-range rows, and symmetry.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.offsets.len() != n + 1 || self.offsets[0] != 0 {
            return Err("matrix offsets must have n+1 entries starting at 0".into());
        }
        if *self.offsets.last().unwrap() as usize != self.cols.len() {
            return Err("matrix offsets must cover the column arena".into());
        }
        for i in 0..n {
            if self.offsets[i] > self.offsets[i + 1] {
                return Err("matrix offsets must be monotone".into());
            }
            let row = self.row(i);
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("matrix row {i} is not strictly ascending"));
            }
            if row.iter().any(|&j| j as usize >= n) {
                return Err(format!("matrix row {i} references a program out of range"));
            }
        }
        for i in 0..n {
            for &j in self.row(i) {
                if !self.commutes(j as usize, i) {
                    return Err(format!("matrix is not symmetric at ({i}, {j})"));
                }
            }
        }
        Ok(())
    }
}

/// A versioned commutativity certificate: footprint claims, the pairwise
/// matrix, mover classes and the side conditions tying it all to the
/// register semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommuteCert {
    /// Size of the object universe the claims range over.
    pub num_objects: usize,
    /// FNV-1a fingerprint binding the certificate to the program set it
    /// was computed from (see [`crate::shard::fingerprint_programs`]).
    pub programs_fp: u64,
    /// One entry per analyzed program, in input order.
    pub programs: Vec<CommuteProgramEntry>,
    /// The pairwise commutativity matrix.
    pub matrix: CommuteMatrix,
    /// Semantic side conditions (must equal [`COMMUTE_SIDE_CONDITIONS`]).
    pub side_conditions: Vec<String>,
}

fn objects_json(objs: &[ObjectId]) -> Json {
    Json::Arr(objs.iter().map(|o| json::num(o.as_u32())).collect())
}

fn parse_objects(v: &Json, what: &str) -> Result<Vec<ObjectId>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{what}: expected array"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .map(|n| ObjectId::new(n as u32))
                .ok_or_else(|| format!("{what}: expected object id"))
        })
        .collect()
}

fn parse_u32s(v: &Json, what: &str) -> Result<Vec<u32>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{what}: expected array"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .map(|n| n as u32)
                .ok_or_else(|| format!("{what}: expected uint"))
        })
        .collect()
}

impl CommuteCert {
    /// Serializes the certificate to its canonical JSON document.
    pub fn to_json(&self) -> String {
        let programs = self
            .programs
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".to_string(), json::str(p.name.clone())),
                    ("update".to_string(), Json::Bool(p.update)),
                    ("refined".to_string(), Json::Bool(p.refined)),
                    ("reads".to_string(), objects_json(&p.reads)),
                    ("writes".to_string(), objects_json(&p.writes)),
                    ("class".to_string(), json::str(p.class.tag())),
                ])
            })
            .collect();
        let matrix = Json::Obj(vec![
            (
                "offsets".to_string(),
                Json::Arr(self.matrix.offsets.iter().map(|&o| json::num(o)).collect()),
            ),
            (
                "cols".to_string(),
                Json::Arr(self.matrix.cols.iter().map(|&c| json::num(c)).collect()),
            ),
        ]);
        Json::Obj(vec![
            ("format".to_string(), json::str(COMMUTE_CERT_FORMAT)),
            (
                "version".to_string(),
                json::num(COMMUTE_CERT_VERSION as u32),
            ),
            (
                "num_objects".to_string(),
                json::num(self.num_objects as u32),
            ),
            (
                "programs_fingerprint".to_string(),
                json::str(format!("{:016x}", self.programs_fp)),
            ),
            ("programs".to_string(), Json::Arr(programs)),
            ("matrix".to_string(), matrix),
            (
                "side_conditions".to_string(),
                Json::Arr(
                    self.side_conditions
                        .iter()
                        .map(|s| json::str(s.clone()))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a certificate document, checking format and version tags.
    /// Structural parse only — semantic validation is the auditor's job.
    pub fn parse(text: &str) -> Result<CommuteCert, String> {
        let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let format = field("format")?.as_str().ok_or("format: expected string")?;
        if format != COMMUTE_CERT_FORMAT {
            return Err(format!("not a commute certificate (format '{format}')"));
        }
        let version = field("version")?.as_u64().ok_or("version: expected uint")?;
        if version != COMMUTE_CERT_VERSION {
            return Err(format!("unsupported commute-cert version {version}"));
        }
        let num_objects = field("num_objects")?
            .as_usize()
            .ok_or("num_objects: expected uint")?;
        let fp_hex = field("programs_fingerprint")?
            .as_str()
            .ok_or("programs_fingerprint: expected string")?;
        let programs_fp = u64::from_str_radix(fp_hex, 16)
            .map_err(|_| "programs_fingerprint: expected hex u64".to_string())?;
        let programs = field("programs")?
            .as_arr()
            .ok_or("programs: expected array")?
            .iter()
            .map(|p| {
                let get = |key: &str| {
                    p.get(key)
                        .ok_or_else(|| format!("program entry missing '{key}'"))
                };
                Ok(CommuteProgramEntry {
                    name: get("name")?
                        .as_str()
                        .ok_or("name: expected string")?
                        .to_string(),
                    update: get("update")?.as_bool().ok_or("update: expected bool")?,
                    refined: get("refined")?.as_bool().ok_or("refined: expected bool")?,
                    reads: parse_objects(get("reads")?, "reads")?,
                    writes: parse_objects(get("writes")?, "writes")?,
                    class: MoverClass::from_tag(
                        get("class")?.as_str().ok_or("class: expected string")?,
                    )
                    .ok_or("class: expected a mover-class tag")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let m = field("matrix")?;
        let matrix = CommuteMatrix {
            offsets: parse_u32s(
                m.get("offsets").ok_or("matrix missing 'offsets'")?,
                "matrix offsets",
            )?,
            cols: parse_u32s(m.get("cols").ok_or("matrix missing 'cols'")?, "matrix cols")?,
        };
        let side_conditions = field("side_conditions")?
            .as_arr()
            .ok_or("side_conditions: expected array")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "side_conditions: expected string".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CommuteCert {
            num_objects,
            programs_fp,
            programs,
            matrix,
            side_conditions,
        })
    }

    /// Derives the delivery-time commute plan for a shard partition: the
    /// per-shard unions of claimed touch/write footprints that let the
    /// broadcast layer decide, from an item's own footprint, whether the
    /// item commutes with *everything* a shard channel can ever carry.
    pub fn delivery_plan(&self, plan: &ShardPlan) -> CommutePlan {
        let num_shards = plan.num_shards() as usize;
        let mut touch: Vec<BTreeSet<ObjectId>> = vec![BTreeSet::new(); num_shards];
        let mut write: Vec<BTreeSet<ObjectId>> = vec![BTreeSet::new(); num_shards];
        for p in &self.programs {
            let mut spans = BTreeSet::new();
            for o in p.reads.iter().chain(p.writes.iter()) {
                if o.index() < plan.num_objects() {
                    spans.insert(plan.shard_of(*o));
                }
            }
            for &s in &spans {
                let s = s as usize;
                touch[s].extend(p.reads.iter().copied());
                touch[s].extend(p.writes.iter().copied());
                write[s].extend(p.writes.iter().copied());
            }
        }
        CommutePlan {
            shard_touch: touch.into_iter().map(|s| s.into_iter().collect()).collect(),
            shard_write: write.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }
}

/// The delivery-time view of a commute certificate, installed into the
/// sharded broadcast: for each shard, the union of (claimed) touched and
/// written objects over every program whose footprint spans that shard.
///
/// A cross-shard item `g` commutes with shard `s` — and may therefore
/// apply without waiting for `s`'s barrier frontier — exactly when `g`
/// writes nothing shard `s`'s programs touch and `s`'s programs write
/// nothing `g` touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommutePlan {
    /// Per shard: every object a program spanning the shard may touch.
    pub shard_touch: Vec<Vec<ObjectId>>,
    /// Per shard: every object a program spanning the shard may write.
    pub shard_write: Vec<Vec<ObjectId>>,
}

impl CommutePlan {
    /// Number of shards the plan covers.
    pub fn num_shards(&self) -> usize {
        self.shard_touch.len()
    }

    /// Whether an item with the given footprints commutes with every
    /// program spanning shard `s`.
    pub fn commutes_with_shard(&self, s: usize, touches: &[ObjectId], writes: &[ObjectId]) -> bool {
        let shard_touch = &self.shard_touch[s];
        let shard_write = &self.shard_write[s];
        writes.iter().all(|o| shard_touch.binary_search(o).is_err())
            && touches
                .iter()
                .all(|o| shard_write.binary_search(o).is_err())
    }

    /// A sabotage plan for the chaos suite's wrong-cert negative control:
    /// claims every shard's programs touch and write nothing, so every
    /// cross-shard item "commutes" with every shard — exactly the damage
    /// a fabricated certificate does. Never use outside tests.
    pub fn vacuous(num_shards: usize) -> Self {
        CommutePlan {
            shard_touch: vec![Vec::new(); num_shards],
            shard_write: vec![Vec::new(); num_shards],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn entry(
        name: &str,
        update: bool,
        reads: &[u32],
        writes: &[u32],
        class: MoverClass,
    ) -> CommuteProgramEntry {
        CommuteProgramEntry {
            name: name.to_string(),
            update,
            refined: false,
            reads: reads.iter().map(|&i| oid(i)).collect(),
            writes: writes.iter().map(|&i| oid(i)).collect(),
            class,
        }
    }

    #[test]
    fn commutation_is_the_negation_of_conflict() {
        let w0 = entry("w0", true, &[], &[0], MoverClass::NonMover);
        let w1 = entry("w1", true, &[], &[1], MoverClass::NonMover);
        let q0 = entry("q0", false, &[0], &[], MoverClass::ReadOnly);
        assert!(footprints_commute(&w0, &w1));
        assert!(!footprints_commute(&w0, &q0));
        assert!(footprints_commute(&w1, &q0));
        assert!(!footprints_commute(&w0, &w0), "self WW pins instances");
        assert!(footprints_commute(&q0, &q0), "read-only self-commutes");
    }

    #[test]
    fn mover_classes_cover_the_lattice() {
        // w-priv writes an object nobody else touches: both-mover.
        // w-q's writes are read by a query but no update: right-mover.
        // w-u / w-u2 / w-x conflict with another update but no query:
        // left-movers. w-uq conflicts with a query (object 3) and an
        // update (object 4): non-mover. q0 / q3 are read-only.
        let entries = vec![
            entry("w-priv", true, &[], &[9], MoverClass::BothMover),
            entry("w-q", true, &[], &[0], MoverClass::RightMover),
            entry("q0", false, &[0], &[], MoverClass::ReadOnly),
            entry("w-u", true, &[], &[1], MoverClass::LeftMover),
            entry("w-u2", true, &[1], &[2], MoverClass::LeftMover),
            entry("w-uq", true, &[], &[3, 4], MoverClass::NonMover),
            entry("q3", false, &[3], &[], MoverClass::ReadOnly),
            entry("w-x", true, &[], &[4], MoverClass::LeftMover),
        ];
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(derive_class(&entries, i), e.class, "{}", e.name);
        }
    }

    #[test]
    fn matrix_is_symmetric_and_counts_pairs() {
        let entries = vec![
            entry("w0", true, &[], &[0], MoverClass::BothMover),
            entry("w1", true, &[], &[1], MoverClass::BothMover),
            entry("q2", false, &[2], &[], MoverClass::ReadOnly),
        ];
        let m = CommuteMatrix::derive(&entries);
        assert!(m.validate(3).is_ok());
        assert!(m.commutes(0, 1) && m.commutes(1, 0));
        assert!(m.commutes(0, 2) && m.commutes(2, 0));
        assert!(!m.commutes(0, 0), "writer self-pair conflicts");
        assert!(m.commutes(2, 2), "query self-pair commutes");
        // Pairs i <= j: (0,1), (0,2), (1,2), (2,2).
        assert_eq!(m.num_commuting_pairs(), 4);
    }

    #[test]
    fn matrix_validation_rejects_malformed_shapes() {
        let good = CommuteMatrix {
            offsets: vec![0, 1, 2],
            cols: vec![1, 0],
        };
        assert!(good.validate(2).is_ok());
        let bad_offsets = CommuteMatrix {
            offsets: vec![0, 2],
            cols: vec![0, 1],
        };
        assert!(bad_offsets.validate(2).is_err());
        let asym = CommuteMatrix {
            offsets: vec![0, 1, 1],
            cols: vec![1],
        };
        assert!(asym.validate(2).is_err(), "asymmetric matrix rejected");
        let out_of_range = CommuteMatrix {
            offsets: vec![0, 1],
            cols: vec![7],
        };
        assert!(out_of_range.validate(1).is_err());
        let unsorted = CommuteMatrix {
            offsets: vec![0, 2, 3, 4],
            cols: vec![2, 1, 2, 0],
        };
        assert!(unsorted.validate(3).is_err());
    }

    fn sample_cert() -> CommuteCert {
        let entries = vec![
            entry("w0", true, &[], &[0], MoverClass::BothMover),
            entry("w1", true, &[1], &[1], MoverClass::BothMover),
            entry("q2", false, &[2], &[], MoverClass::ReadOnly),
        ];
        let matrix = CommuteMatrix::derive(&entries);
        CommuteCert {
            num_objects: 3,
            programs_fp: 0x0123_4567_89ab_cdef,
            programs: entries,
            matrix,
            side_conditions: COMMUTE_SIDE_CONDITIONS
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    #[test]
    fn cert_json_round_trips() {
        let cert = sample_cert();
        let text = cert.to_json();
        let back = CommuteCert::parse(&text).expect("round trip");
        assert_eq!(back, cert);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(CommuteCert::parse("{}").is_err());
        assert!(CommuteCert::parse("{\"format\":\"moc-shard-cert\",\"version\":1}").is_err());
        assert!(CommuteCert::parse("not json").is_err());
        let v2 = sample_cert()
            .to_json()
            .replace("\"version\":1", "\"version\":2");
        assert!(CommuteCert::parse(&v2).is_err());
    }

    #[test]
    fn delivery_plan_unions_spanning_footprints() {
        // Objects 0,1 in shard 0; 2,3 in shard 1. w01 spans only shard 0,
        // bridge spans both.
        let plan = ShardPlan::new(vec![0, 0, 1, 1]).unwrap();
        let entries = vec![
            entry("w01", true, &[0], &[1], MoverClass::NonMover),
            entry("bridge", true, &[1], &[2], MoverClass::NonMover),
            entry("q3", false, &[3], &[], MoverClass::ReadOnly),
        ];
        let cert = CommuteCert {
            num_objects: 4,
            programs_fp: 0,
            matrix: CommuteMatrix::derive(&entries),
            programs: entries,
            side_conditions: vec![],
        };
        let cp = cert.delivery_plan(&plan);
        assert_eq!(cp.num_shards(), 2);
        // Shard 0 is touched by w01 and bridge: objects {0,1,2} touched,
        // {1,2} written. Shard 1 by bridge and q3: {1,2,3} touched, {2}
        // written.
        assert_eq!(cp.shard_touch[0], vec![oid(0), oid(1), oid(2)]);
        assert_eq!(cp.shard_write[0], vec![oid(1), oid(2)]);
        assert_eq!(cp.shard_touch[1], vec![oid(1), oid(2), oid(3)]);
        assert_eq!(cp.shard_write[1], vec![oid(2)]);
        // An item writing only object 3 commutes with shard 0 but not
        // shard 1 (q3 reads 3).
        assert!(cp.commutes_with_shard(0, &[oid(3)], &[oid(3)]));
        assert!(!cp.commutes_with_shard(1, &[oid(3)], &[oid(3)]));
        // A read-only item on object 0 conflicts with shard 0 (written
        // object 1? no — it reads 0, shard 0 writes {1,2}: commutes) and
        // commutes with shard 1.
        assert!(cp.commutes_with_shard(0, &[oid(0)], &[]));
        assert!(cp.commutes_with_shard(1, &[oid(0)], &[]));
        assert!(!cp.commutes_with_shard(0, &[oid(1)], &[]));
        // The vacuous sabotage plan commutes with everything.
        let bad = CommutePlan::vacuous(2);
        assert!(bad.commutes_with_shard(0, &[oid(1)], &[oid(1)]));
    }
}
