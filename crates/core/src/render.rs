//! ASCII rendering of histories — the textual counterpart of the paper's
//! figure style (one timeline per process, one interval per m-operation).
//!
//! ```text
//! P0 |[w(x)1      ]      [r(y)2 ]
//! P1 |      [w(y)2    ]
//! ```
//!
//! Intended for debugging protocol runs and for the examples' output;
//! the renderer never fails, degrading gracefully for histories that are
//! too dense for the requested width.

use std::fmt::Write as _;

use crate::history::History;

/// Renders one line per process with each m-operation drawn as a bracketed
/// interval `[label ]` positioned proportionally to its invocation and
/// response times. `width` is the number of columns for the time axis
/// (clamped to at least 20).
pub fn render_timeline(h: &History, width: usize) -> String {
    let width = width.max(20);
    let mut out = String::new();
    if h.is_empty() {
        out.push_str("(empty history)\n");
        return out;
    }
    let t_min = h
        .records()
        .iter()
        .map(|r| r.invoked_at.as_nanos())
        .min()
        .unwrap_or(0);
    let t_max = h
        .records()
        .iter()
        .map(|r| r.responded_at.as_nanos())
        .max()
        .unwrap_or(1)
        .max(t_min + 1);
    let span = (t_max - t_min) as f64;
    let col = |t: u64| -> usize {
        (((t - t_min) as f64 / span) * (width.saturating_sub(1)) as f64).round() as usize
    };

    let _ = writeln!(out, "time {t_min}..{t_max} ns, {} m-operations", h.len());
    for p in h.processes() {
        let mut line = vec![b' '; width];
        for &idx in h.by_process(p) {
            let rec = h.record(idx);
            let a = col(rec.invoked_at.as_nanos());
            let b = col(rec.responded_at.as_nanos()).max(a + 1).min(width - 1);
            line[a] = b'[';
            line[b] = b']';
            for c in line.iter_mut().take(b).skip(a + 1) {
                *c = b'-';
            }
            // Overlay the label (or the id) inside the interval.
            let label = if rec.label.is_empty() {
                rec.id.to_string()
            } else {
                rec.label.clone()
            };
            for (i, ch) in label.bytes().enumerate() {
                let pos = a + 1 + i;
                if pos >= b {
                    break;
                }
                line[pos] = ch;
            }
        }
        let _ = writeln!(
            out,
            "{:<4}|{}",
            p.to_string(),
            String::from_utf8_lossy(&line)
        );
    }
    out
}

/// Renders the history as one m-operation per line in the paper's inline
/// notation, sorted by invocation time.
pub fn render_listing(h: &History) -> String {
    let mut idxs: Vec<_> = h.iter().map(|(i, _)| i).collect();
    idxs.sort_by_key(|&i| (h.record(i).invoked_at, h.record(i).id));
    let mut out = String::new();
    for i in idxs {
        let r = h.record(i);
        let _ = writeln!(
            out,
            "[{:>8} .. {:>8}] {}  {}",
            r.invoked_at.as_nanos(),
            r.responded_at.as_nanos(),
            r.treated_as,
            r.notation()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{ObjectId, ProcessId};

    fn sample() -> History {
        let x = ObjectId::new(0);
        let mut b = HistoryBuilder::new(1);
        let w = b
            .mop(ProcessId::new(0))
            .at(0, 50)
            .write(x, 1)
            .label("wx")
            .finish();
        b.mop(ProcessId::new(1))
            .at(60, 100)
            .read_from(x, 1, w)
            .label("rx")
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn timeline_places_intervals() {
        let s = render_timeline(&sample(), 60);
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains('['));
        assert!(s.contains(']'));
        assert!(s.contains("wx"));
        assert!(s.contains("rx"));
        // P0's interval starts at the left margin; P1's does not.
        let p0_line = s.lines().find(|l| l.starts_with("P0")).unwrap();
        let p1_line = s.lines().find(|l| l.starts_with("P1")).unwrap();
        assert!(p0_line.find('[').unwrap() < p1_line.find('[').unwrap());
    }

    #[test]
    fn listing_sorted_by_invocation() {
        let s = render_listing(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("w(x)1"));
        assert!(lines[1].contains("r(x)1"));
        assert!(lines[0].contains("update"));
        assert!(lines[1].contains("query"));
    }

    #[test]
    fn empty_history_renders() {
        let h = HistoryBuilder::new(1).build().unwrap();
        assert!(render_timeline(&h, 40).contains("empty"));
        assert_eq!(render_listing(&h), "");
    }

    #[test]
    fn tiny_width_is_clamped() {
        let s = render_timeline(&sample(), 1);
        assert!(s.lines().count() >= 3);
    }
}
