//! Error types for the core model.

use std::fmt;

use crate::ids::{MOpId, ObjectId, ProcessId};

/// Errors produced while validating or constructing model artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An object identifier refers past the declared object universe.
    ObjectOutOfRange {
        /// The offending object.
        object: ObjectId,
        /// Number of objects the history or store was declared with.
        num_objects: usize,
    },
    /// Two m-operations carry the same identifier.
    DuplicateMOpId(MOpId),
    /// A process subhistory is not sequential: an m-operation was invoked
    /// before the previous one on the same process responded (violates
    /// well-formedness, P 4.2).
    OverlappingProcessOps {
        /// The process whose subhistory overlaps.
        process: ProcessId,
        /// The earlier m-operation.
        earlier: MOpId,
        /// The later (overlapping) m-operation.
        later: MOpId,
    },
    /// An m-operation's response event precedes its invocation event.
    ResponseBeforeInvocation(MOpId),
    /// A read refers to a writer m-operation that does not exist in the
    /// history (and is not the imaginary initial m-operation).
    UnknownWriter {
        /// The reading m-operation.
        reader: MOpId,
        /// The claimed writer.
        writer: MOpId,
        /// The object read.
        object: ObjectId,
    },
    /// A read claims to read object `x` from an m-operation that never
    /// writes `x`.
    ReaderWriterObjectMismatch {
        /// The reading m-operation.
        reader: MOpId,
        /// The claimed writer.
        writer: MOpId,
        /// The object read.
        object: ObjectId,
    },
    /// The identifier recorded on an m-operation disagrees with the process
    /// it was recorded under.
    ProcessMismatch {
        /// The m-operation.
        mop: MOpId,
        /// The process the record claims.
        recorded: ProcessId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ObjectOutOfRange {
                object,
                num_objects,
            } => write!(
                f,
                "object {object} out of range for a universe of {num_objects} objects"
            ),
            CoreError::DuplicateMOpId(id) => write!(f, "duplicate m-operation id {id}"),
            CoreError::OverlappingProcessOps {
                process,
                earlier,
                later,
            } => write!(
                f,
                "process {process} is not sequential: {later} invoked before {earlier} responded"
            ),
            CoreError::ResponseBeforeInvocation(id) => {
                write!(f, "m-operation {id} responds before it is invoked")
            }
            CoreError::UnknownWriter {
                reader,
                writer,
                object,
            } => write!(
                f,
                "{reader} reads {object} from unknown m-operation {writer}"
            ),
            CoreError::ReaderWriterObjectMismatch {
                reader,
                writer,
                object,
            } => write!(
                f,
                "{reader} reads {object} from {writer}, which never writes {object}"
            ),
            CoreError::ProcessMismatch { mop, recorded } => {
                write!(f, "m-operation {mop} recorded under process {recorded}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MOpId, ObjectId, ProcessId};

    #[test]
    fn errors_display_meaningfully() {
        let e = CoreError::ObjectOutOfRange {
            object: ObjectId::new(5),
            num_objects: 2,
        };
        assert!(e.to_string().contains("out of range"));
        let e = CoreError::DuplicateMOpId(MOpId::new(ProcessId::new(0), 1));
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<CoreError>();
    }
}
