//! # moc-core
//!
//! Core model for *multi-object distributed operations*, after Mittal &
//! Garg, "Consistency Conditions for Multi-Object Distributed Operations"
//! (TR-PDS-1998-005 / ICDCS 1998).
//!
//! The traditional distributed-shared-memory model provides atomicity at the
//! level of a read or write on a *single* object. This crate implements the
//! paper's generalized model in which a process applies *m-operations* —
//! deterministic procedures of read and write operations that may span
//! several objects — and defines the machinery needed to state and check the
//! generalized consistency conditions:
//!
//! * [`ids`] — strongly-typed process / object / m-operation identifiers.
//! * [`value`] — object values and write provenance ([`value::Versioned`]).
//! * [`vv`] — per-object [`vv::VersionVector`] timestamps (the paper's `ts`).
//! * [`program`] — the m-operation DSL: a small deterministic register
//!   machine over shared-object reads and writes, with static write-set
//!   analysis.
//! * [`op`], [`mop`] — completed operations `r(x)v` / `w(x)v` and executed
//!   m-operation records with invocation/response events.
//! * [`history`] — execution histories, process subhistories, reads-from,
//!   conflict and interference predicates (D 4.1–4.3).
//! * [`relations`] — dense relations over m-operations with closure, cycle
//!   detection and topological sorting; builders for process order `~p`,
//!   reads-from `~rf`, real-time order `~t`, and object order `~x`.
//! * [`legality`] — legal histories (D 4.6), the logical read-write
//!   precedence `~rw` (D 4.11), and the extended relation `~H+` (D 4.12).
//! * [`constraints`] — the OO-, WW- and WO-constraints (D 4.8–4.10).
//! * [`bitset`], [`csr`] — fixed-width bitsets and compressed sparse row
//!   adjacency, the allocation-lean layouts behind the checker's search
//!   engine.
//! * [`codec`], [`json`] — the `history v1` text format plus a minimal
//!   JSON codec for the checker/auditor certificate pipeline.
//!
//! Higher layers build on this crate: `moc-checker` decides admissibility
//! (m-sequential consistency, m-linearizability, m-normality), and
//! `moc-protocol` implements the paper's Figure 4 and Figure 6 protocols.
//!
//! ## Example
//!
//! ```
//! use moc_core::history::HistoryBuilder;
//! use moc_core::ids::{ObjectId, ProcessId};
//!
//! // Two processes, two objects. P0 writes x=1 and y=2 atomically; P1 reads
//! // both.
//! let x = ObjectId::new(0);
//! let y = ObjectId::new(1);
//! let mut h = HistoryBuilder::new(2);
//! let w = h
//!     .mop(ProcessId::new(0))
//!     .at(0, 10)
//!     .write(x, 1)
//!     .write(y, 2)
//!     .finish();
//! h.mop(ProcessId::new(1))
//!     .at(20, 30)
//!     .read_from(x, 1, w)
//!     .read_from(y, 2, w)
//!     .finish();
//! let history = h.build().expect("well-formed");
//! assert_eq!(history.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod codec;
pub mod commute;
pub mod constraints;
pub mod csr;
pub mod error;
pub mod history;
pub mod ids;
pub mod json;
pub mod legality;
pub mod mop;
pub mod op;
pub mod program;
pub mod relations;
pub mod render;
pub mod shard;
pub mod value;
pub mod vv;

pub use commute::{CommuteCert, CommuteMatrix, CommutePlan, MoverClass};
pub use error::CoreError;
pub use history::History;
pub use ids::{MOpId, ObjectId, ProcessId};
pub use mop::MOpRecord;
pub use op::{CompletedOp, OpKind};
pub use program::Program;
pub use relations::Relation;
pub use shard::{Footprinted, Route, RoutePolicy, ShardCert, ShardPlan};
pub use value::{Value, Versioned};
pub use vv::VersionVector;
