//! Strongly-typed identifiers for processes, objects and m-operations.
//!
//! These are thin newtypes (see the `C-NEWTYPE` API guideline) so that a
//! process index can never be confused with an object index, and so that an
//! m-operation identifier carries its issuing process.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a sequential thread of control (the paper's `P_1 … P_n`).
///
/// Processes are numbered densely from zero, so a `ProcessId` doubles as an
/// index into per-process tables via [`ProcessId::index`].
///
/// ```
/// use moc_core::ids::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(index: u32) -> Self {
        ProcessId(index)
    }
}

/// Identifier of a shared object (the paper's `x, y, z ∈ X`).
///
/// Objects are numbered densely from zero so that a [`crate::vv::VersionVector`]
/// can dedicate one slot per object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        ObjectId(index)
    }

    /// Returns the dense index of this object.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Objects in the paper's examples are named x, y, z; fall back to
        // obj<i> beyond the first few to keep Debug output readable.
        match self.0 {
            0 => f.write_str("x"),
            1 => f.write_str("y"),
            2 => f.write_str("z"),
            i => write!(f, "obj{i}"),
        }
    }
}

impl From<u32> for ObjectId {
    fn from(index: u32) -> Self {
        ObjectId(index)
    }
}

/// Identifier of an m-operation: the issuing process plus a per-process
/// sequence number.
///
/// The paper assumes an *imaginary initial m-operation* that writes every
/// object before any real operation executes; it is represented by the
/// distinguished value [`MOpId::INITIAL`], which never appears as the id of a
/// recorded m-operation.
///
/// ```
/// use moc_core::ids::{MOpId, ProcessId};
/// let alpha = MOpId::new(ProcessId::new(0), 0);
/// assert!(!alpha.is_initial());
/// assert!(MOpId::INITIAL.is_initial());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MOpId {
    /// The issuing process.
    pub process: ProcessId,
    /// Sequence number of this m-operation within the issuing process.
    pub seq: u32,
}

impl MOpId {
    /// The imaginary initial m-operation that writes the initial value of
    /// every object (Section 2.1 of the paper).
    pub const INITIAL: MOpId = MOpId {
        process: ProcessId(u32::MAX),
        seq: 0,
    };

    /// Creates an m-operation identifier.
    pub const fn new(process: ProcessId, seq: u32) -> Self {
        MOpId { process, seq }
    }

    /// Returns `true` for the imaginary initial m-operation.
    pub const fn is_initial(self) -> bool {
        self.process.0 == u32::MAX
    }
}

impl fmt::Display for MOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_initial() {
            f.write_str("init")
        } else {
            write!(f, "{}#{}", self.process, self.seq)
        }
    }
}

/// Identifier of a query round issued by the m-linearizability protocol
/// (Figure 6, actions A3–A6): the querying process plus a local counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId {
    /// The process that issued the query m-operation.
    pub process: ProcessId,
    /// Per-process query counter.
    pub seq: u64,
}

impl QueryId {
    /// Creates a query identifier.
    pub const fn new(process: ProcessId, seq: u64) -> Self {
        QueryId { process, seq }
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}@{}", self.seq, self.process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_u32(), 7);
        assert_eq!(ProcessId::from(7), p);
    }

    #[test]
    fn object_display_names() {
        assert_eq!(ObjectId::new(0).to_string(), "x");
        assert_eq!(ObjectId::new(1).to_string(), "y");
        assert_eq!(ObjectId::new(2).to_string(), "z");
        assert_eq!(ObjectId::new(9).to_string(), "obj9");
    }

    #[test]
    fn initial_mop_is_distinguished() {
        assert!(MOpId::INITIAL.is_initial());
        assert!(!MOpId::new(ProcessId::new(0), 0).is_initial());
        assert_eq!(MOpId::INITIAL.to_string(), "init");
    }

    #[test]
    fn mop_id_ordering_groups_by_process() {
        let a = MOpId::new(ProcessId::new(0), 5);
        let b = MOpId::new(ProcessId::new(1), 0);
        assert!(a < b);
    }

    #[test]
    fn query_id_display() {
        let q = QueryId::new(ProcessId::new(2), 4);
        assert_eq!(q.to_string(), "q4@P2");
    }
}
