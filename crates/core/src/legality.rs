//! Legality of histories, the read-write precedence `~rw`, and the extended
//! relation `~H+`.
//!
//! Intuitively a read is *legal* if it does not read from an overwritten
//! write (Section 2.2). Over a transitive relation `~H` this is D 4.6:
//!
//! ```text
//! legal(H) ≡ ∀ α,β,γ interfering in H : ¬(β ~H γ) ∨ ¬(γ ~H α)
//! ```
//!
//! i.e. no m-operation `γ` that writes an object `α` reads from `β` is
//! ordered *between* `β` and `α`.
//!
//! The imaginary initial m-operation (which writes every object before
//! anything else executes) participates as a `β` ordered before every other
//! m-operation; for a read of the initial value the condition degenerates to
//! "no writer of the object is ordered before the reader".

use crate::history::{History, MOpIdx};
use crate::relations::Relation;

/// A witness that a history relation is not legal: `gamma` is ordered
/// between `beta` (`None` = the initial m-operation) and the reader `alpha`,
/// yet `gamma` overwrites an object `alpha` reads from `beta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalRead {
    /// The reading m-operation.
    pub alpha: MOpIdx,
    /// The m-operation read from (`None` = the imaginary initial one).
    pub beta: Option<MOpIdx>,
    /// The intervening writer.
    pub gamma: MOpIdx,
}

/// Checks legality of `h` with respect to `order` (D 4.6).
///
/// `order` must be transitive (pass a closure of the raw relation); the
/// result is otherwise meaningless because `~H` is transitive by definition.
pub fn is_legal(h: &History, order: &Relation) -> bool {
    first_illegal_read(h, order).is_none()
}

/// Like [`is_legal`] but returns the first offending triple for diagnostics.
pub fn first_illegal_read(h: &History, order: &Relation) -> Option<IllegalRead> {
    for (alpha, beta, gamma) in h.interference_triples() {
        let between = match beta {
            Some(beta) => order.contains(beta, gamma) && order.contains(gamma, alpha),
            // The initial m-operation is before everything, so the first
            // conjunct holds vacuously.
            None => order.contains(gamma, alpha),
        };
        if between {
            return Some(IllegalRead { alpha, beta, gamma });
        }
    }
    None
}

/// The logical read-write precedence `~rw` (D 4.11):
///
/// ```text
/// α ~rw γ  ≝  ∃β : interfere(H, α, β, γ) : β ~H γ
/// ```
///
/// The intuition: in any legal sequential history equivalent to `H`, `γ`
/// must occur after `α` — otherwise it would overwrite the version of the
/// object `α` reads from `β`. `order` must be transitive.
pub fn read_write_precedence(h: &History, order: &Relation) -> Relation {
    let mut rw = Relation::new(h.len());
    for (alpha, beta, gamma) in h.interference_triples() {
        let beta_before_gamma = match beta {
            Some(beta) => order.contains(beta, gamma),
            // The initial m-operation precedes every other m-operation.
            None => true,
        };
        if beta_before_gamma && alpha != gamma {
            rw.add(alpha, gamma);
        }
    }
    rw
}

/// The extended relation `~H+ = (~H ∪ ~rw)+` (D 4.12).
///
/// `relation` need not be transitive; it is closed internally. Lemmas 3 and
/// 4 of the paper show `~H+` is irreflexive whenever `h` is legal and under
/// the OO- or WW-constraint; in general it may contain cycles (check with
/// [`Relation::is_irreflexive`] after closure, or via
/// [`Relation::has_cycle`] on the returned relation).
pub fn extended_relation(h: &History, relation: &Relation) -> Relation {
    let closed = relation.transitive_closure();
    let rw = read_write_precedence(h, &closed);
    closed.union(&rw).transitive_closure()
}

/// Checks whether a proposed total order (a permutation of all m-operations)
/// yields a *legal sequential history*: replaying the sequence, every
/// external read of each m-operation must observe the most recent write to
/// its object (D 4.6 restricted to total orders). This is the polynomial
/// verifier that places the membership side of Theorems 1 and 2 in NP.
pub fn sequence_is_legal(h: &History, sequence: &[MOpIdx]) -> bool {
    if sequence.len() != h.len() {
        return false;
    }
    let mut last_writer: Vec<Option<MOpIdx>> = vec![None; h.num_objects()];
    let mut seen = vec![false; h.len()];
    for &idx in sequence {
        if seen[idx.0] {
            return false;
        }
        seen[idx.0] = true;
        for &(obj, writer) in h.read_sources(idx) {
            if last_writer[obj.index()] != writer {
                return false;
            }
        }
        for &obj in h.wobjects(idx) {
            last_writer[obj.index()] = Some(idx);
        }
    }
    true
}

/// Checks that a proposed sequence both respects `relation` (is a linear
/// extension of it) and is legal — i.e. that it witnesses admissibility of
/// `(op(H), relation)` (D 4.7).
pub fn sequence_witnesses_admissibility(
    h: &History,
    relation: &Relation,
    sequence: &[MOpIdx],
) -> bool {
    if sequence.len() != h.len() {
        return false;
    }
    let mut position = vec![usize::MAX; h.len()];
    for (pos, &idx) in sequence.iter().enumerate() {
        if idx.0 >= h.len() || position[idx.0] != usize::MAX {
            return false;
        }
        position[idx.0] = pos;
    }
    for (i, j) in relation.edges() {
        if position[i.0] >= position[j.0] {
            return false;
        }
    }
    sequence_is_legal(h, sequence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, HistoryBuilder};
    use crate::ids::{ObjectId, ProcessId};
    use crate::relations::{process_order, reads_from};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn m(i: usize) -> MOpIdx {
        MOpIdx(i)
    }

    /// Figure 2 of the paper: history H1 under WW-constraint.
    ///
    /// P1: α = r(x)0 w(y)2 then β = r(y)2
    /// P2: γ = w(x)1 then δ = w(y)3
    /// WW order: α < γ < δ (updates globally ordered).
    /// Index map: α=0, β=1, γ=2, δ=3.
    fn figure2() -> (History, Relation) {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
        b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
        b.mop(pid(2)).at(15, 25).write(x, 1).finish();
        b.mop(pid(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();

        // ~H = process order ∪ reads-from ∪ ww (α<γ<δ).
        let mut rel = process_order(&h).union(&reads_from(&h));
        rel.add(m(0), m(2));
        rel.add(m(2), m(3));
        (h, rel)
    }

    #[test]
    fn figure2_is_legal() {
        let (h, rel) = figure2();
        let closed = rel.transitive_closure();
        assert!(is_legal(&h, &closed));
    }

    #[test]
    fn figure3_extension_is_not_legal() {
        // Figure 3: S1 = α γ δ β is sequential but not legal: β reads y
        // from α, yet δ (which writes y) is ordered between them.
        let (h, _) = figure2();
        let s1 = [m(0), m(2), m(3), m(1)];
        assert!(!sequence_is_legal(&h, &s1));
        let total = Relation::from_sequence(4, &s1);
        assert!(!is_legal(&h, &total));
        assert_eq!(
            first_illegal_read(&h, &total),
            Some(IllegalRead {
                alpha: m(1),
                beta: Some(m(0)),
                gamma: m(3),
            })
        );
    }

    #[test]
    fn rw_precedence_repairs_figure2() {
        // δ writes y which β reads from α; with α ~H δ the rw edge β ~rw δ
        // forces β before δ, ruling out the illegal extension of Figure 3.
        let (h, rel) = figure2();
        let closed = rel.transitive_closure();
        let rw = read_write_precedence(&h, &closed);
        assert!(rw.contains(m(1), m(3)));
        let ext = extended_relation(&h, &rel);
        assert!(ext.is_irreflexive());
        assert!(ext.contains(m(1), m(3)));
        // Any linear extension of ext is legal: take the topological sort.
        let order = ext.topological_sort().unwrap();
        assert!(sequence_is_legal(&h, &order));
        assert!(sequence_witnesses_admissibility(&h, &rel, &order));
    }

    #[test]
    fn initial_reads_generate_rw_edges() {
        // α reads the initial value of x; γ writes x. In any legal
        // sequential history α must precede γ.
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).read_init(x).finish();
        b.mop(pid(1)).at(0, 10).write(x, 1).finish();
        let h = b.build().unwrap();
        let empty = Relation::new(2);
        let rw = read_write_precedence(&h, &empty);
        assert!(rw.contains(m(0), m(1)));
        assert!(!rw.contains(m(1), m(0)));
        // Sequence γ then α is illegal; α then γ is legal.
        assert!(!sequence_is_legal(&h, &[m(1), m(0)]));
        assert!(sequence_is_legal(&h, &[m(0), m(1)]));
    }

    #[test]
    fn sequence_checks_reject_malformed_sequences() {
        let (h, rel) = figure2();
        assert!(!sequence_is_legal(&h, &[m(0), m(0), m(1), m(2)]));
        assert!(!sequence_is_legal(&h, &[m(0)]));
        // Correct set but violates the relation (β before α's process order).
        assert!(!sequence_witnesses_admissibility(
            &h,
            &rel,
            &[m(1), m(0), m(2), m(3)]
        ));
    }

    #[test]
    fn legal_sequence_replays_versions() {
        let (h, _) = figure2();
        // α β would leave γ δ; full order α γ β δ: β reads y from α — legal
        // since δ (writer of y) comes after β.
        assert!(sequence_is_legal(&h, &[m(0), m(2), m(1), m(3)]));
        // γ first: α reads initial x but γ already wrote x — illegal.
        assert!(!sequence_is_legal(&h, &[m(2), m(0), m(1), m(3)]));
    }
}
