//! Completed read and write operations on single objects.
//!
//! An m-operation is a sequence of operations, each a read `r(x)v` or a
//! write `w(x)v` on a single object `x` (Section 2.1). A [`CompletedOp`]
//! additionally records the *provenance* of the value involved — which
//! m-operation's write produced it and which per-object version it is — so
//! the reads-from relation can be recovered exactly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{MOpId, ObjectId};
use crate::value::Value;

/// Whether an operation reads or writes its object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read operation `r(x)v`.
    Read,
    /// A write operation `w(x)v`.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("r"),
            OpKind::Write => f.write_str("w"),
        }
    }
}

/// A completed single-object operation within an m-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompletedOp {
    /// Read or write.
    pub kind: OpKind,
    /// The object acted upon.
    pub object: ObjectId,
    /// For a read, the value returned; for a write, the value written.
    pub value: Value,
    /// For a read, the m-operation whose write produced the value observed
    /// (possibly [`MOpId::INITIAL`], possibly the *enclosing* m-operation if
    /// the read follows a write to the same object within the same
    /// m-operation). For a write, the enclosing m-operation itself.
    pub writer: MOpId,
    /// For a read, the object version observed; for a write, the object
    /// version the write (will have) established.
    pub version: u64,
}

impl CompletedOp {
    /// Constructs a completed read.
    pub fn read(object: ObjectId, value: Value, writer: MOpId, version: u64) -> Self {
        CompletedOp {
            kind: OpKind::Read,
            object,
            value,
            writer,
            version,
        }
    }

    /// Constructs a completed write by m-operation `writer` establishing
    /// `version` of `object`.
    pub fn write(object: ObjectId, value: Value, writer: MOpId, version: u64) -> Self {
        CompletedOp {
            kind: OpKind::Write,
            object,
            value,
            writer,
            version,
        }
    }

    /// Returns `true` for read operations.
    pub fn is_read(&self) -> bool {
        self.kind == OpKind::Read
    }

    /// Returns `true` for write operations.
    pub fn is_write(&self) -> bool {
        self.kind == OpKind::Write
    }
}

impl fmt::Display for CompletedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}){}", self.kind, self.object, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[test]
    fn display_matches_paper_notation() {
        let id = MOpId::new(ProcessId::new(0), 0);
        let r = CompletedOp::read(ObjectId::new(0), 5, MOpId::INITIAL, 0);
        let w = CompletedOp::write(ObjectId::new(1), 7, id, 1);
        assert_eq!(r.to_string(), "r(x)5");
        assert_eq!(w.to_string(), "w(y)7");
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
    }
}
