//! Compressed sparse row (CSR) adjacency storage.
//!
//! The admissibility engine walks predecessor lists, read requirements and
//! write sets for every DFS node. Storing them as `Vec<Vec<_>>` scatters
//! each row in its own heap allocation; a [`Csr`] packs all rows into one
//! arena (`data`) indexed by an offsets table, so row access is a pair of
//! loads with no pointer chasing and construction is the only allocation.

/// Rows of `T` packed back-to-back, addressed through an offsets table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T> Csr<T> {
    /// Builds a CSR with `n` rows, where row `i` holds the items yielded by
    /// `row(i)` in order.
    pub fn from_fn(n: usize, mut row: impl FnMut(usize) -> Vec<T>) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        offsets.push(0);
        for i in 0..n {
            data.extend(row(i));
            let end = u32::try_from(data.len()).expect("CSR arena fits in u32 offsets");
            offsets.push(end);
        }
        Csr { offsets, data }
    }

    /// Builds a CSR from per-row vectors.
    pub fn from_rows(rows: &[Vec<T>]) -> Self
    where
        T: Clone,
    {
        Self::from_fn(rows.len(), |i| rows[i].clone())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored items across all rows.
    pub fn num_items(&self) -> usize {
        self.data.len()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.data[lo..hi]
    }
}

/// Builds the predecessor CSR of a digraph on `n` vertices from an edge
/// iterator. Edge `(from, to)` contributes `from` to `to`'s row.
pub fn predecessor_csr(n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> Csr<u32> {
    let mut counts = vec![0u32; n];
    for (_, to) in edges.clone() {
        counts[to as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    let mut data = vec![0u32; acc as usize];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (from, to) in edges {
        let slot = cursor[to as usize];
        data[slot as usize] = from;
        cursor[to as usize] += 1;
    }
    Csr { offsets, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_packs_rows() {
        let c = Csr::from_fn(3, |i| vec![i as u32; i]);
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.row(0), &[] as &[u32]);
        assert_eq!(c.row(1), &[1]);
        assert_eq!(c.row(2), &[2, 2]);
        assert_eq!(c.num_items(), 3);
    }

    #[test]
    fn predecessor_csr_groups_by_target() {
        let edges = [(0u32, 2u32), (1, 2), (2, 0)];
        let c = predecessor_csr(3, edges.iter().copied());
        assert_eq!(c.row(0), &[2]);
        assert_eq!(c.row(1), &[] as &[u32]);
        let mut r2 = c.row(2).to_vec();
        r2.sort_unstable();
        assert_eq!(r2, vec![0, 1]);
    }

    #[test]
    fn from_rows_matches_inputs() {
        let rows = vec![vec![(1u32, 2u32)], vec![], vec![(3, 4), (5, 6)]];
        let c = Csr::from_rows(&rows);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(c.row(i), r.as_slice());
        }
    }
}
