//! Executed m-operation records.
//!
//! Execution of an m-operation is modeled by two events, an *invocation*
//! and a *response* (Section 2.1). An [`MOpRecord`] captures both event
//! times plus the sequence of completed single-object operations the
//! m-operation performed and the output values it returned.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{MOpId, ObjectId, ProcessId};
use crate::op::{CompletedOp, OpKind};
use crate::value::Value;

/// A point on the global real-time axis at which an invocation or response
/// event occurred.
///
/// In the simulator this is virtual time in nanoseconds; in the live thread
/// runtime it is nanoseconds since a cluster-wide epoch. Only the order of
/// event times matters to the model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EventTime(pub u64);

impl EventTime {
    /// The zero of the time axis.
    pub const ZERO: EventTime = EventTime(0);

    /// Creates an event time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        EventTime(nanos)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Classification of an m-operation.
///
/// An m-operation is an *update* iff it writes to some object, and a *query*
/// otherwise (Section 4). The protocols take the paper's conservative
/// stance: an m-operation whose program *potentially* writes is treated as
/// an update even if, on the values it read, it ended up writing nothing
/// (e.g. a failed DCAS). [`MOpRecord::treated_as`] records the protocol's
/// classification, while [`MOpRecord::is_update`] reports the actual
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MOpClass {
    /// Performs no write operation.
    Query,
    /// Performs (or may perform) at least one write operation.
    Update,
}

impl fmt::Display for MOpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MOpClass::Query => f.write_str("query"),
            MOpClass::Update => f.write_str("update"),
        }
    }
}

/// The record of one executed m-operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MOpRecord {
    /// Identifier (issuing process + per-process sequence number).
    pub id: MOpId,
    /// Real time of the invocation event.
    pub invoked_at: EventTime,
    /// Real time of the response event.
    pub responded_at: EventTime,
    /// The completed operations, in program order.
    pub ops: Vec<CompletedOp>,
    /// Output values returned by the m-operation (`res` in `α(arg, res)`).
    pub outputs: Vec<Value>,
    /// How the protocol that executed this m-operation classified it
    /// (conservatively, based on the program's potential write set).
    pub treated_as: MOpClass,
    /// Human-readable label (e.g. the program name), for diagnostics.
    pub label: String,
}

impl MOpRecord {
    /// The issuing process, `proc(α)`.
    pub fn process(&self) -> ProcessId {
        self.id.process
    }

    /// `objects(α)`: every object this m-operation read or wrote.
    pub fn objects(&self) -> BTreeSet<ObjectId> {
        self.ops.iter().map(|op| op.object).collect()
    }

    /// `wobjects(α)`: the objects this m-operation wrote.
    pub fn wobjects(&self) -> BTreeSet<ObjectId> {
        self.ops
            .iter()
            .filter(|op| op.is_write())
            .map(|op| op.object)
            .collect()
    }

    /// `robjects(α)`: the objects this m-operation read.
    pub fn robjects(&self) -> BTreeSet<ObjectId> {
        self.ops
            .iter()
            .filter(|op| op.is_read())
            .map(|op| op.object)
            .collect()
    }

    /// Whether this m-operation actually performed a write.
    pub fn is_update(&self) -> bool {
        self.ops.iter().any(|op| op.is_write())
    }

    /// Whether this m-operation performed no write.
    pub fn is_query(&self) -> bool {
        !self.is_update()
    }

    /// The *external* reads of this m-operation: reads whose value was not
    /// produced by an earlier write of the same m-operation.
    ///
    /// Section 2.2: "if there exists a write operation `w(x)v` before a read
    /// operation `r(x)u` in an m-operation … then `u` must be equal to `v`
    /// … In the rest of the paper, we ignore such read operations." Only
    /// external reads participate in the reads-from relation.
    pub fn external_reads(&self) -> impl Iterator<Item = &CompletedOp> {
        self.ops
            .iter()
            .filter(move |op| op.is_read() && op.writer != self.id)
    }

    /// The *final* writes of this m-operation: for each written object, the
    /// last write to it. Earlier writes to the same object are overwritten
    /// within the m-operation and, per Section 2.2, ignored ("no read
    /// operation of another m-operation can read from `w(x)u`").
    pub fn final_writes(&self) -> Vec<&CompletedOp> {
        let mut last: Vec<Option<&CompletedOp>> = Vec::new();
        let mut order: Vec<ObjectId> = Vec::new();
        for op in self.ops.iter().filter(|op| op.is_write()) {
            let idx = op.object.index();
            if idx >= last.len() {
                last.resize(idx + 1, None);
            }
            if last[idx].is_none() {
                order.push(op.object);
            }
            last[idx] = Some(op);
        }
        order.into_iter().filter_map(|o| last[o.index()]).collect()
    }

    /// The objects and writer provenance of every external read:
    /// `(object, writer, version)` triples.
    pub fn read_sources(&self) -> impl Iterator<Item = (ObjectId, MOpId, u64)> + '_ {
        self.external_reads()
            .map(|op| (op.object, op.writer, op.version))
    }

    /// Renders the m-operation in the paper's inline notation, e.g.
    /// `α = r(x)0 w(y)2`.
    pub fn notation(&self) -> String {
        let body: Vec<String> = self.ops.iter().map(|op| op.to_string()).collect();
        format!("{} = {}", self.id, body.join(" "))
    }
}

impl fmt::Display for MOpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}..{}] {}",
            self.notation(),
            self.invoked_at,
            self.responded_at,
            self.treated_as
        )
    }
}

/// Convenience constructor used by tests and the history builder.
#[derive(Debug, Clone)]
pub struct MOpRecordBuilder {
    record: MOpRecord,
}

impl MOpRecordBuilder {
    /// Starts building a record for m-operation `id`.
    pub fn new(id: MOpId) -> Self {
        MOpRecordBuilder {
            record: MOpRecord {
                id,
                invoked_at: EventTime::ZERO,
                responded_at: EventTime::ZERO,
                ops: Vec::new(),
                outputs: Vec::new(),
                treated_as: MOpClass::Query,
                label: String::new(),
            },
        }
    }

    /// Sets invocation and response times.
    pub fn at(mut self, invoked: u64, responded: u64) -> Self {
        self.record.invoked_at = EventTime(invoked);
        self.record.responded_at = EventTime(responded);
        self
    }

    /// Appends a completed operation.
    pub fn op(mut self, op: CompletedOp) -> Self {
        if op.kind == OpKind::Write {
            self.record.treated_as = MOpClass::Update;
        }
        self.record.ops.push(op);
        self
    }

    /// Sets the output values.
    pub fn outputs(mut self, outputs: Vec<Value>) -> Self {
        self.record.outputs = outputs;
        self
    }

    /// Sets the label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.record.label = label.into();
        self
    }

    /// Overrides the protocol classification.
    pub fn treated_as(mut self, class: MOpClass) -> Self {
        self.record.treated_as = class;
        self
    }

    /// Finishes the record.
    pub fn build(self) -> MOpRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn sample() -> MOpRecord {
        let id = MOpId::new(pid(0), 0);
        MOpRecordBuilder::new(id)
            .at(0, 10)
            .op(CompletedOp::read(oid(0), 0, MOpId::INITIAL, 0))
            .op(CompletedOp::write(oid(1), 2, id, 1))
            .op(CompletedOp::read(oid(1), 2, id, 1)) // internal read
            .op(CompletedOp::write(oid(1), 3, id, 1)) // overwrites earlier write
            .outputs(vec![0])
            .label("sample")
            .build()
    }

    #[test]
    fn object_sets() {
        let r = sample();
        assert_eq!(r.objects(), [oid(0), oid(1)].into_iter().collect());
        assert_eq!(r.wobjects(), [oid(1)].into_iter().collect());
        assert_eq!(r.robjects(), [oid(0), oid(1)].into_iter().collect());
        assert!(r.is_update());
        assert!(!r.is_query());
    }

    #[test]
    fn external_reads_skip_own_writes() {
        let r = sample();
        let ext: Vec<_> = r.external_reads().collect();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].object, oid(0));
        assert!(ext[0].writer.is_initial());
    }

    #[test]
    fn final_writes_keep_last_per_object() {
        let r = sample();
        let finals = r.final_writes();
        assert_eq!(finals.len(), 1);
        assert_eq!(finals[0].value, 3);
    }

    #[test]
    fn notation_matches_paper() {
        let r = sample();
        assert!(r.notation().starts_with("P0#0 = r(x)0 w(y)2"));
    }

    #[test]
    fn builder_classifies_updates() {
        let id = MOpId::new(pid(1), 0);
        let q = MOpRecordBuilder::new(id)
            .op(CompletedOp::read(oid(0), 0, MOpId::INITIAL, 0))
            .build();
        assert_eq!(q.treated_as, MOpClass::Query);
        let u = MOpRecordBuilder::new(id)
            .op(CompletedOp::write(oid(0), 1, id, 1))
            .build();
        assert_eq!(u.treated_as, MOpClass::Update);
    }

    #[test]
    fn event_time_ordering() {
        assert!(EventTime::from_nanos(3) < EventTime::from_nanos(5));
        assert_eq!(EventTime::from_nanos(3).as_nanos(), 3);
    }
}
