//! Execution histories.
//!
//! A history models an execution of the concurrent system: a set of executed
//! m-operations together with the real-time placement of their invocation
//! and response events (Section 2.2). All histories are *well-formed*: each
//! process subhistory is sequential (P 4.2). [`History::new`] validates
//! this, along with referential integrity of the recorded reads-from
//! provenance.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::ids::{MOpId, ObjectId, ProcessId};
use crate::mop::{EventTime, MOpRecord, MOpRecordBuilder};
use crate::op::CompletedOp;
use crate::value::Value;

/// Dense index of an m-operation within a [`History`].
///
/// All relation machinery ([`crate::relations::Relation`]) works over these
/// indices rather than [`MOpId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MOpIdx(pub usize);

impl MOpIdx {
    /// The underlying index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MOpIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Cached per-record derived data.
#[derive(Debug, Clone)]
struct RecordMeta {
    objects: BTreeSet<ObjectId>,
    wobjects: BTreeSet<ObjectId>,
    /// External reads resolved to history indices: `(object, writer)` where
    /// `writer = None` denotes the imaginary initial m-operation.
    read_sources: Vec<(ObjectId, Option<MOpIdx>)>,
}

/// A validated, well-formed execution history.
#[derive(Debug, Clone)]
pub struct History {
    num_objects: usize,
    records: Vec<MOpRecord>,
    by_id: HashMap<MOpId, MOpIdx>,
    meta: Vec<RecordMeta>,
    /// For each object, the m-operations that write it (final writes).
    writers: Vec<Vec<MOpIdx>>,
    by_process: HashMap<ProcessId, Vec<MOpIdx>>,
}

impl History {
    /// Validates `records` and builds a history over `num_objects` objects.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if any record references an out-of-range
    /// object, ids collide, a process subhistory is not sequential, a
    /// response precedes its invocation, or a read's recorded writer does
    /// not exist / never writes the object read.
    pub fn new(num_objects: usize, records: Vec<MOpRecord>) -> Result<Self, CoreError> {
        let mut by_id = HashMap::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            if by_id.insert(rec.id, MOpIdx(i)).is_some() {
                return Err(CoreError::DuplicateMOpId(rec.id));
            }
            if rec.responded_at < rec.invoked_at {
                return Err(CoreError::ResponseBeforeInvocation(rec.id));
            }
            for op in &rec.ops {
                if op.object.index() >= num_objects {
                    return Err(CoreError::ObjectOutOfRange {
                        object: op.object,
                        num_objects,
                    });
                }
            }
        }

        // Per-process sequentiality: order by per-process sequence number
        // and require response-before-next-invocation.
        let mut by_process: HashMap<ProcessId, Vec<MOpIdx>> = HashMap::new();
        for (i, rec) in records.iter().enumerate() {
            by_process.entry(rec.process()).or_default().push(MOpIdx(i));
        }
        for (process, idxs) in by_process.iter_mut() {
            idxs.sort_by_key(|&MOpIdx(i)| records[i].id.seq);
            for pair in idxs.windows(2) {
                let (a, b) = (&records[pair[0].0], &records[pair[1].0]);
                if b.invoked_at < a.responded_at {
                    return Err(CoreError::OverlappingProcessOps {
                        process: *process,
                        earlier: a.id,
                        later: b.id,
                    });
                }
            }
        }

        // Resolve read provenance and validate it.
        let mut meta = Vec::with_capacity(records.len());
        for rec in &records {
            let mut read_sources = Vec::new();
            for op in rec.external_reads() {
                let writer = if op.writer.is_initial() {
                    None
                } else {
                    let widx = *by_id.get(&op.writer).ok_or(CoreError::UnknownWriter {
                        reader: rec.id,
                        writer: op.writer,
                        object: op.object,
                    })?;
                    let wrec = &records[widx.0];
                    if !wrec
                        .ops
                        .iter()
                        .any(|w| w.is_write() && w.object == op.object)
                    {
                        return Err(CoreError::ReaderWriterObjectMismatch {
                            reader: rec.id,
                            writer: op.writer,
                            object: op.object,
                        });
                    }
                    Some(widx)
                };
                read_sources.push((op.object, writer));
            }
            meta.push(RecordMeta {
                objects: rec.objects(),
                wobjects: rec.wobjects(),
                read_sources,
            });
        }

        let mut writers = vec![Vec::new(); num_objects];
        for (i, m) in meta.iter().enumerate() {
            for &obj in &m.wobjects {
                writers[obj.index()].push(MOpIdx(i));
            }
        }

        Ok(History {
            num_objects,
            records,
            by_id,
            meta,
            writers,
            by_process,
        })
    }

    /// Number of m-operations in the history.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the history contains no m-operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of the object universe.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// All records, in construction order.
    pub fn records(&self) -> &[MOpRecord] {
        &self.records
    }

    /// The record at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn record(&self, idx: MOpIdx) -> &MOpRecord {
        &self.records[idx.0]
    }

    /// Looks up the index of an m-operation by id.
    pub fn idx_of(&self, id: MOpId) -> Option<MOpIdx> {
        self.by_id.get(&id).copied()
    }

    /// Iterates over `(index, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MOpIdx, &MOpRecord)> {
        self.records.iter().enumerate().map(|(i, r)| (MOpIdx(i), r))
    }

    /// The set of processes appearing in the history.
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        self.by_process.keys().copied().collect()
    }

    /// The process subhistory `H|P`, in process order.
    pub fn by_process(&self, process: ProcessId) -> &[MOpIdx] {
        self.by_process
            .get(&process)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// `objects(α)` for the m-operation at `idx`.
    pub fn objects(&self, idx: MOpIdx) -> &BTreeSet<ObjectId> {
        &self.meta[idx.0].objects
    }

    /// `wobjects(α)` for the m-operation at `idx`.
    pub fn wobjects(&self, idx: MOpIdx) -> &BTreeSet<ObjectId> {
        &self.meta[idx.0].wobjects
    }

    /// The external reads of `idx` resolved to history indices:
    /// `(object, writer)` pairs with `None` for the initial m-operation.
    pub fn read_sources(&self, idx: MOpIdx) -> &[(ObjectId, Option<MOpIdx>)] {
        &self.meta[idx.0].read_sources
    }

    /// `rfobjects(H, α, β)`: the objects that `alpha` reads from `beta`
    /// (D 4.3 context). `beta = None` denotes the initial m-operation.
    pub fn rfobjects(&self, alpha: MOpIdx, beta: Option<MOpIdx>) -> BTreeSet<ObjectId> {
        self.meta[alpha.0]
            .read_sources
            .iter()
            .filter(|(_, w)| *w == beta)
            .map(|(o, _)| *o)
            .collect()
    }

    /// The m-operations that write `object`.
    pub fn writers_of(&self, object: ObjectId) -> &[MOpIdx] {
        &self.writers[object.index()]
    }

    /// `conflict(α, β)` (D 4.1): distinct m-operations that share an object
    /// at least one of them writes.
    pub fn conflict(&self, a: MOpIdx, b: MOpIdx) -> bool {
        if a == b {
            return false;
        }
        let (ma, mb) = (&self.meta[a.0], &self.meta[b.0]);
        ma.wobjects.iter().any(|o| mb.objects.contains(o))
            || mb.wobjects.iter().any(|o| ma.objects.contains(o))
    }

    /// `interfere(H, α, β, γ)` (D 4.2): distinct m-operations such that
    /// `gamma` writes some object that `alpha` reads from `beta`.
    pub fn interfere(&self, alpha: MOpIdx, beta: MOpIdx, gamma: MOpIdx) -> bool {
        if alpha == beta || beta == gamma || alpha == gamma {
            return false;
        }
        let wg = &self.meta[gamma.0].wobjects;
        self.meta[alpha.0]
            .read_sources
            .iter()
            .any(|&(o, w)| w == Some(beta) && wg.contains(&o))
    }

    /// All interfering triples `(alpha, beta, gamma)` in the history, i.e.
    /// triples for which `gamma` writes an object `alpha` reads from `beta`.
    ///
    /// The initial m-operation also participates as a `beta`; those triples
    /// are reported with `beta = None`.
    pub fn interference_triples(&self) -> Vec<(MOpIdx, Option<MOpIdx>, MOpIdx)> {
        let mut out = Vec::new();
        for (i, m) in self.meta.iter().enumerate() {
            let alpha = MOpIdx(i);
            for &(obj, writer) in &m.read_sources {
                for &gamma in &self.writers[obj.index()] {
                    if gamma == alpha || Some(gamma) == writer {
                        continue;
                    }
                    out.push((alpha, writer, gamma));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether two histories are *equivalent* (Section 2.2): same process
    /// subhistories and same reads-from relation. Records are matched by id.
    pub fn equivalent(&self, other: &History) -> bool {
        if self.len() != other.len() || self.num_objects != other.num_objects {
            return false;
        }
        for rec in &self.records {
            let Some(oidx) = other.idx_of(rec.id) else {
                return false;
            };
            let orec = other.record(oidx);
            if rec.ops != orec.ops || rec.process() != orec.process() {
                return false;
            }
        }
        // Same per-process ordering.
        for (p, idxs) in &self.by_process {
            let ours: Vec<MOpId> = idxs.iter().map(|&i| self.records[i.0].id).collect();
            let theirs: Vec<MOpId> = other
                .by_process(*p)
                .iter()
                .map(|&i| other.records[i.0].id)
                .collect();
            if ours != theirs {
                return false;
            }
        }
        true
    }
}

/// Incrementally constructs a [`History`], assigning per-process sequence
/// numbers automatically. Intended for tests, examples and the paper's
/// worked figures.
///
/// See the crate-level documentation for an example.
#[derive(Debug)]
pub struct HistoryBuilder {
    num_objects: usize,
    records: Vec<MOpRecord>,
    next_seq: HashMap<ProcessId, u32>,
}

impl HistoryBuilder {
    /// Starts a builder over `num_objects` objects.
    pub fn new(num_objects: usize) -> Self {
        HistoryBuilder {
            num_objects,
            records: Vec::new(),
            next_seq: HashMap::new(),
        }
    }

    /// Begins a new m-operation on `process`.
    pub fn mop(&mut self, process: ProcessId) -> MOpBuilder<'_> {
        let seq = self.next_seq.entry(process).or_insert(0);
        let id = MOpId::new(process, *seq);
        *seq += 1;
        MOpBuilder {
            parent: self,
            inner: MOpRecordBuilder::new(id),
            id,
        }
    }

    /// Finishes the history.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`History::new`].
    pub fn build(self) -> Result<History, CoreError> {
        History::new(self.num_objects, self.records)
    }
}

/// Builder for a single m-operation within a [`HistoryBuilder`].
#[derive(Debug)]
pub struct MOpBuilder<'a> {
    parent: &'a mut HistoryBuilder,
    inner: MOpRecordBuilder,
    id: MOpId,
}

impl<'a> MOpBuilder<'a> {
    /// Sets invocation and response times (raw nanoseconds).
    pub fn at(mut self, invoked: u64, responded: u64) -> Self {
        self.inner = self.inner.at(invoked, responded);
        self
    }

    /// Appends a write `w(object)value`.
    pub fn write(mut self, object: ObjectId, value: Value) -> Self {
        self.inner = self.inner.op(CompletedOp::write(object, value, self.id, 0));
        self
    }

    /// Appends a read `r(object)value` that reads from `writer`'s write.
    pub fn read_from(mut self, object: ObjectId, value: Value, writer: MOpId) -> Self {
        self.inner = self.inner.op(CompletedOp::read(object, value, writer, 0));
        self
    }

    /// Appends a read of the initial value `r(object)0`.
    pub fn read_init(mut self, object: ObjectId) -> Self {
        self.inner = self
            .inner
            .op(CompletedOp::read(object, 0, MOpId::INITIAL, 0));
        self
    }

    /// Sets a diagnostic label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.inner = self.inner.label(label);
        self
    }

    /// Sets output values.
    pub fn outputs(mut self, outputs: Vec<Value>) -> Self {
        self.inner = self.inner.outputs(outputs);
        self
    }

    /// Completes the m-operation and returns its id (usable as a `writer`
    /// for later `read_from` calls).
    pub fn finish(self) -> MOpId {
        self.parent.records.push(self.inner.build());
        self.id
    }
}

/// Extends a builder with invocation events placed strictly after all prior
/// events, useful for quickly writing sequential scenarios.
impl HistoryBuilder {
    /// Latest event time used so far.
    pub fn horizon(&self) -> EventTime {
        self.records
            .iter()
            .map(|r| r.responded_at)
            .max()
            .unwrap_or(EventTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, ProcessId};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// Figure 1 of the paper (relations exercised in relations.rs tests).
    fn figure1() -> History {
        let x = oid(0);
        let y = oid(1);
        let z = oid(2);
        let mut b = HistoryBuilder::new(3);
        // P2: η = w(x)1 (early), then μ later.
        let eta = b.mop(pid(2)).at(0, 10).write(x, 1).finish();
        // P1: α = r(x).. w(y).. w(z).. then β.
        let alpha = b
            .mop(pid(1))
            .at(5, 25)
            .read_from(x, 1, eta)
            .write(y, 2)
            .write(z, 3)
            .finish();
        let _beta = b.mop(pid(1)).at(30, 40).read_init(x).finish();
        // P3: δ reads from α and η.
        let _delta = b
            .mop(pid(3))
            .at(30, 50)
            .read_from(y, 2, alpha)
            .read_from(x, 1, eta)
            .finish();
        let _mu = b.mop(pid(2)).at(45, 55).write(x, 9).finish();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let h = figure1();
        assert_eq!(h.len(), 5);
        assert_eq!(h.num_objects(), 3);
        assert_eq!(h.processes().len(), 3);
        assert_eq!(h.by_process(pid(1)).len(), 2);
        let eta = h.idx_of(MOpId::new(pid(2), 0)).unwrap();
        assert_eq!(h.record(eta).notation(), "P2#0 = w(x)1");
    }

    #[test]
    fn reads_from_resolution() {
        let h = figure1();
        let alpha = h.idx_of(MOpId::new(pid(1), 0)).unwrap();
        let eta = h.idx_of(MOpId::new(pid(2), 0)).unwrap();
        let sources = h.read_sources(alpha);
        assert_eq!(sources, &[(oid(0), Some(eta))]);
        assert_eq!(h.rfobjects(alpha, Some(eta)), [oid(0)].into());
    }

    #[test]
    fn conflict_and_interfere() {
        let h = figure1();
        let alpha = h.idx_of(MOpId::new(pid(1), 0)).unwrap();
        let eta = h.idx_of(MOpId::new(pid(2), 0)).unwrap();
        let delta = h.idx_of(MOpId::new(pid(3), 0)).unwrap();
        let mu = h.idx_of(MOpId::new(pid(2), 1)).unwrap();
        // α conflicts with η (α reads x, η writes x).
        assert!(h.conflict(alpha, eta));
        assert!(!h.conflict(alpha, alpha));
        // δ, η and μ interfere: δ reads x from η, μ writes x.
        assert!(h.interfere(delta, eta, mu));
        assert!(!h.interfere(delta, eta, alpha)); // α does not write x
        let triples = h.interference_triples();
        assert!(triples.contains(&(delta, Some(eta), mu)));
    }

    #[test]
    fn rejects_overlapping_process_ops() {
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(oid(0), 1).finish();
        b.mop(pid(0)).at(5, 15).write(oid(0), 2).finish();
        assert!(matches!(
            b.build(),
            Err(CoreError::OverlappingProcessOps { .. })
        ));
    }

    #[test]
    fn rejects_bad_read_provenance() {
        let mut b = HistoryBuilder::new(2);
        let w = b.mop(pid(0)).at(0, 10).write(oid(0), 1).finish();
        // Claims to read object y from an op that only writes x.
        b.mop(pid(1)).at(20, 30).read_from(oid(1), 1, w).finish();
        assert!(matches!(
            b.build(),
            Err(CoreError::ReaderWriterObjectMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unknown_writer() {
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0))
            .at(0, 10)
            .read_from(oid(0), 1, MOpId::new(pid(9), 7))
            .finish();
        assert!(matches!(b.build(), Err(CoreError::UnknownWriter { .. })));
    }

    #[test]
    fn rejects_out_of_range_object() {
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(oid(3), 1).finish();
        assert!(matches!(b.build(), Err(CoreError::ObjectOutOfRange { .. })));
    }

    #[test]
    fn rejects_response_before_invocation() {
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(10, 5).write(oid(0), 1).finish();
        assert!(matches!(
            b.build(),
            Err(CoreError::ResponseBeforeInvocation(_))
        ));
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_reorder() {
        let h = figure1();
        assert!(h.equivalent(&h));
        // A history with one record dropped is not equivalent.
        let mut recs = h.records().to_vec();
        recs.pop();
        // Removing μ invalidates nothing structurally; rebuild.
        let h2 = History::new(3, recs).unwrap();
        assert!(!h.equivalent(&h2));
    }

    #[test]
    fn horizon_tracks_latest_response() {
        let mut b = HistoryBuilder::new(1);
        assert_eq!(b.horizon(), EventTime::ZERO);
        b.mop(pid(0)).at(0, 42).write(oid(0), 1).finish();
        assert_eq!(b.horizon(), EventTime::from_nanos(42));
    }
}
