//! Execution constraints (Section 4): OO-, WW- and WO-constraints.
//!
//! Because verifying m-sequential consistency and m-linearizability is
//! NP-complete (Theorems 1 and 2), practical implementations enforce
//! *constraints* that order certain m-operations up front. Under the OO- or
//! WW-constraint, admissibility collapses to legality (Theorem 7), which is
//! checkable in polynomial time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::history::{History, MOpIdx};
use crate::relations::Relation;

/// The execution constraints of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// D 4.8 — any pair of *conflicting* m-operations is ordered.
    Oo,
    /// D 4.9 — any pair of *update* m-operations is ordered (this is what
    /// the Section 5 protocols enforce via atomic broadcast).
    Ww,
    /// D 4.10 — any pair of m-operations *writing a common object* is
    /// ordered. WO is implied by both OO and WW and suffices for Lemma 5.
    Wo,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Oo => f.write_str("OO-constraint"),
            Constraint::Ww => f.write_str("WW-constraint"),
            Constraint::Wo => f.write_str("WO-constraint"),
        }
    }
}

/// A pair of m-operations that the constraint requires to be ordered but
/// `order` leaves unordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnorderedPair {
    /// The violated constraint.
    pub constraint: Constraint,
    /// First m-operation of the unordered pair.
    pub a: MOpIdx,
    /// Second m-operation of the unordered pair.
    pub b: MOpIdx,
}

/// Checks whether `(h, order)` satisfies `constraint`. `order` should be
/// transitively closed (pairs ordered only through intermediate operations
/// still count as ordered).
pub fn satisfies(constraint: Constraint, h: &History, order: &Relation) -> bool {
    first_violation(constraint, h, order).is_none()
}

/// Like [`satisfies`] but reports the first unordered pair.
pub fn first_violation(
    constraint: Constraint,
    h: &History,
    order: &Relation,
) -> Option<UnorderedPair> {
    for i in 0..h.len() {
        for j in (i + 1)..h.len() {
            let (a, b) = (MOpIdx(i), MOpIdx(j));
            let must_order = match constraint {
                Constraint::Oo => h.conflict(a, b),
                Constraint::Ww => !h.wobjects(a).is_empty() && !h.wobjects(b).is_empty(),
                Constraint::Wo => h.wobjects(a).iter().any(|o| h.wobjects(b).contains(o)),
            };
            if must_order && !order.ordered(a, b) {
                return Some(UnorderedPair { constraint, a, b });
            }
        }
    }
    None
}

/// Data-race freedom of an *execution*: every pair of conflicting
/// m-operations is ordered by real time (they never overlap). Section 4
/// mentions DRF as the alternate, programmer-enforced route to efficient
/// implementations: a DRF execution satisfies the OO-constraint under any
/// relation containing `~t`, so Theorem 7's polynomial checking applies.
pub fn is_data_race_free(h: &History) -> bool {
    for i in 0..h.len() {
        for j in (i + 1)..h.len() {
            let (a, b) = (MOpIdx(i), MOpIdx(j));
            if h.conflict(a, b) && !real_time_ordered(h, a, b) {
                return false;
            }
        }
    }
    true
}

/// Concurrent-write freedom of an execution: every pair of m-operations
/// writing a common object is ordered by real time. Weaker than DRF
/// (read/write races allowed); implies the WO-constraint under any
/// relation containing `~t`.
pub fn is_concurrent_write_free(h: &History) -> bool {
    for i in 0..h.len() {
        for j in (i + 1)..h.len() {
            let (a, b) = (MOpIdx(i), MOpIdx(j));
            let write_common = h.wobjects(a).iter().any(|o| h.wobjects(b).contains(o));
            if write_common && !real_time_ordered(h, a, b) {
                return false;
            }
        }
    }
    true
}

fn real_time_ordered(h: &History, a: MOpIdx, b: MOpIdx) -> bool {
    let (ra, rb) = (h.record(a), h.record(b));
    ra.responded_at < rb.invoked_at || rb.responded_at < ra.invoked_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::ids::{ObjectId, ProcessId};
    use crate::relations::{process_order, reads_from};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn m(i: usize) -> MOpIdx {
        MOpIdx(i)
    }

    /// The Figure 2 history: α(upd), β(query), γ(upd), δ(upd).
    fn figure2() -> (crate::history::History, Relation) {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
        b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
        b.mop(pid(2)).at(15, 25).write(x, 1).finish();
        b.mop(pid(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        (h, rel)
    }

    #[test]
    fn ww_requires_all_update_pairs_ordered() {
        let (h, rel) = figure2();
        let closed = rel.transitive_closure();
        // Updates α, γ, δ: α and γ unordered so far.
        assert!(!satisfies(Constraint::Ww, &h, &closed));
        let v = first_violation(Constraint::Ww, &h, &closed).unwrap();
        assert_eq!((v.a, v.b), (m(0), m(2)));

        // Add the ww edges of Figure 2: α < γ < δ.
        let mut rel = rel;
        rel.add(m(0), m(2));
        rel.add(m(2), m(3));
        let closed = rel.transitive_closure();
        assert!(satisfies(Constraint::Ww, &h, &closed));
        // WW implies WO here.
        assert!(satisfies(Constraint::Wo, &h, &closed));
        // But not OO: β (reads y) conflicts with δ (writes y), unordered.
        assert!(!satisfies(Constraint::Oo, &h, &closed));
        let v = first_violation(Constraint::Oo, &h, &closed).unwrap();
        assert_eq!(v.constraint, Constraint::Oo);
        assert_eq!((v.a, v.b), (m(1), m(3)));
    }

    #[test]
    fn wo_only_needs_common_written_objects() {
        let (h, _) = figure2();
        // Order only the pairs writing a common object: α and δ both write y.
        let mut rel = Relation::new(4);
        rel.add(m(0), m(3));
        assert!(satisfies(Constraint::Wo, &h, &rel));
        assert!(!satisfies(Constraint::Ww, &h, &rel));
    }

    #[test]
    fn disjoint_queries_need_no_order() {
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).read_init(oid(0)).finish();
        b.mop(pid(1)).at(0, 10).read_init(oid(1)).finish();
        let h = b.build().unwrap();
        let empty = Relation::new(2);
        for c in [Constraint::Oo, Constraint::Ww, Constraint::Wo] {
            assert!(satisfies(c, &h, &empty), "{c} should hold vacuously");
        }
    }

    #[test]
    fn drf_and_cwf_on_executions() {
        // Sequential execution: DRF and CWF.
        let mut b = HistoryBuilder::new(1);
        let w = b.mop(pid(0)).at(0, 10).write(oid(0), 1).finish();
        b.mop(pid(1)).at(20, 30).read_from(oid(0), 1, w).finish();
        let h = b.build().unwrap();
        assert!(is_data_race_free(&h));
        assert!(is_concurrent_write_free(&h));

        // Overlapping read/write on the same object: a data race, but
        // still concurrent-write free.
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 20).write(oid(0), 1).finish();
        b.mop(pid(1)).at(10, 30).read_init(oid(0)).finish();
        let h = b.build().unwrap();
        assert!(!is_data_race_free(&h));
        assert!(is_concurrent_write_free(&h));

        // Overlapping writes to the same object: neither.
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 20).write(oid(0), 1).finish();
        b.mop(pid(1)).at(10, 30).write(oid(0), 2).finish();
        let h = b.build().unwrap();
        assert!(!is_data_race_free(&h));
        assert!(!is_concurrent_write_free(&h));

        // Overlapping ops on disjoint objects: both hold vacuously.
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 20).write(oid(0), 1).finish();
        b.mop(pid(1)).at(10, 30).write(oid(1), 2).finish();
        let h = b.build().unwrap();
        assert!(is_data_race_free(&h));
        assert!(is_concurrent_write_free(&h));
    }

    #[test]
    fn drf_implies_oo_under_real_time() {
        use crate::relations::real_time;
        let mut b = HistoryBuilder::new(2);
        let w = b.mop(pid(0)).at(0, 10).write(oid(0), 1).finish();
        b.mop(pid(1)).at(20, 30).read_from(oid(0), 1, w).finish();
        b.mop(pid(2)).at(20, 30).write(oid(1), 5).finish();
        let h = b.build().unwrap();
        assert!(is_data_race_free(&h));
        let rt = real_time(&h).transitive_closure();
        assert!(satisfies(Constraint::Oo, &h, &rt));
        assert!(satisfies(Constraint::Wo, &h, &rt));
    }

    #[test]
    fn display_names() {
        assert_eq!(Constraint::Oo.to_string(), "OO-constraint");
        assert_eq!(Constraint::Ww.to_string(), "WW-constraint");
        assert_eq!(Constraint::Wo.to_string(), "WO-constraint");
    }
}
