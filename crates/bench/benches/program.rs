//! Criterion benches for the m-operation program interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use moc_core::ids::ObjectId;
use moc_core::program::{arg, execute, imm, reg, CmpOp, ProgramBuilder, VecContext, DEFAULT_FUEL};

fn oid(i: u32) -> ObjectId {
    ObjectId::new(i)
}

fn bench_dcas(c: &mut Criterion) {
    let mut b = ProgramBuilder::new("dcas");
    let fail = b.fresh_label();
    b.read(oid(0), 0)
        .read(oid(1), 1)
        .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
        .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
        .write(oid(0), arg(2))
        .write(oid(1), arg(3))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    let p = b.build().unwrap();
    c.bench_function("interpreter/dcas_success", |b| {
        b.iter(|| {
            let mut ctx = VecContext::new(2);
            let out = execute(&p, &[0, 0, 5, 7], &mut ctx, DEFAULT_FUEL).unwrap();
            assert_eq!(out.outputs, vec![1]);
        })
    });
}

fn bench_sum16(c: &mut Criterion) {
    let mut b = ProgramBuilder::new("sum16");
    b.mov(0, imm(0));
    for i in 0..16u32 {
        b.read(oid(i), 1).add(0, reg(0), reg(1));
    }
    b.ret(vec![reg(0)]);
    let p = b.build().unwrap();
    let values: Vec<i64> = (0..16).collect();
    c.bench_function("interpreter/sum16", |b| {
        b.iter(|| {
            let mut ctx = VecContext {
                values: values.clone(),
            };
            let out = execute(&p, &[], &mut ctx, DEFAULT_FUEL).unwrap();
            assert_eq!(out.outputs, vec![120]);
        })
    });
}

fn bench_loop(c: &mut Criterion) {
    // Tight loop of 1000 iterations: raw instruction dispatch rate.
    let mut b = ProgramBuilder::new("loop1000");
    let top = b.fresh_label();
    let done = b.fresh_label();
    b.mov(0, imm(0));
    b.bind(top);
    b.jump_if(reg(0), CmpOp::Ge, imm(1_000), done)
        .add(0, reg(0), imm(1))
        .jump(top);
    b.bind(done);
    b.ret(vec![reg(0)]);
    let p = b.build().unwrap();
    c.bench_function("interpreter/loop1000", |b| {
        b.iter(|| {
            let out = execute(&p, &[], &mut VecContext::new(0), DEFAULT_FUEL).unwrap();
            assert_eq!(out.outputs, vec![1_000]);
        })
    });
}

criterion_group!(benches, bench_dcas, bench_sum16, bench_loop);
criterion_main!(benches);
