//! Criterion benches for the atomic broadcast substrates: simulator
//! throughput of the sequencer vs ISIS state machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moc_bench::run_protocol;
use moc_protocol::{MscOverIsis, MscOverSequencer};

fn bench_broadcast_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("abcast_sim_run");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sequencer", n), &n, |b, &n| {
            b.iter(|| {
                let report = run_protocol::<MscOverSequencer>(n, 10, 1.0, 3);
                assert_eq!(report.history.len(), n * 10);
            })
        });
        group.bench_with_input(BenchmarkId::new("isis", n), &n, |b, &n| {
            b.iter(|| {
                let report = run_protocol::<MscOverIsis>(n, 10, 1.0, 3);
                assert_eq!(report.history.len(), n * 10);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast_protocols);
criterion_main!(benches);
