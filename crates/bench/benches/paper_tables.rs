//! Regenerates the EXPERIMENTS.md tables as part of `cargo bench`
//! (harness-free bench target): every table and figure reproduction is
//! printed, with a reduced grid to keep bench runs quick. For the full
//! grid run `cargo run --release -p moc-bench --bin paper_experiments`.

use moc_bench::{
    experiment_abcast, experiment_baseline, experiment_checker_scaling,
    experiment_condition_spectrum, experiment_fast_vs_brute, experiment_memo_ablation,
    experiment_model_checking, experiment_query_cost, experiment_query_scope,
    experiment_validation,
};

fn main() {
    // `cargo bench` passes --bench; ignore arguments.
    let seed = 20260706;
    println!("paper tables (reduced grid; see paper_experiments for full)");
    println!("{}", experiment_validation(seed));
    println!("{}", experiment_query_cost(&[2, 4, 8], 10, seed));
    println!("{}", experiment_baseline(&[0.1, 0.5, 0.9], 10, seed));
    println!("{}", experiment_checker_scaling(&[2, 4, 6, 8]));
    println!("{}", experiment_fast_vs_brute(&[5, 10, 20], seed));
    println!("{}", experiment_query_scope(&[4, 16, 64], seed));
    println!("{}", experiment_abcast(&[2, 4, 8], 10, seed));
    println!("{}", experiment_memo_ablation(&[2, 4, 6]));
    println!("{}", experiment_condition_spectrum(6));
    println!("{}", experiment_model_checking());
}
