//! Criterion benches for the consistency checkers (experiments E4/E5):
//! the polynomial witness verifier and Theorem 7 fast path vs the
//! exponential brute-force search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moc_bench::run_protocol;
use moc_checker::admissible::{find_legal_extension, SearchLimits};
use moc_checker::fast::check_under_constraint;
use moc_core::constraints::Constraint;
use moc_core::legality::sequence_witnesses_admissibility;
use moc_core::relations::{process_order, reads_from};
use moc_protocol::MscOverSequencer;
use moc_workload::histories::concurrent_writers_history;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_brute_force_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force/concurrent_writers");
    for k in [3usize, 5, 7] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let (outcome, _) = find_legal_extension(&h, &rel, SearchLimits::default());
                assert!(outcome.is_admissible());
            })
        });
    }
    group.finish();
}

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem7_fast_path/msc_history");
    for ops in [10usize, 25, 50] {
        let report = run_protocol::<MscOverSequencer>(4, ops, 0.6, 1);
        let rel = report.ww_relation();
        group.bench_with_input(
            BenchmarkId::from_parameter(report.history.len()),
            &ops,
            |b, _| {
                b.iter(|| {
                    let out = check_under_constraint(&report.history, &rel, Constraint::Ww)
                        .expect("under WW");
                    assert!(out.is_admissible());
                })
            },
        );
    }
    group.finish();
}

fn bench_witness_validation(c: &mut Criterion) {
    let report = run_protocol::<MscOverSequencer>(4, 50, 0.6, 2);
    let rel = report.ww_relation();
    let out = check_under_constraint(&report.history, &rel, Constraint::Ww).expect("under WW");
    let moc_checker::fast::FastOutcome::Admissible(witness) = out else {
        panic!("admissible");
    };
    c.bench_function("witness_validation/200_ops", |b| {
        b.iter(|| {
            assert!(sequence_witnesses_admissibility(
                &report.history,
                &rel,
                &witness
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_brute_force_adversarial,
    bench_fast_path,
    bench_witness_validation
);
criterion_main!(benches);
