//! Criterion benches for full protocol simulations: wall-clock cost of one
//! simulated workload per protocol (throughput of the whole stack —
//! simulator, broadcast, replica, interpreter, recorder).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moc_bench::run_protocol;
use moc_protocol::{AggregateOverSequencer, MlinOverSequencer, MscOverSequencer};

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_sim_run/4x20ops");
    group.bench_function(BenchmarkId::from_parameter("msc"), |b| {
        b.iter(|| run_protocol::<MscOverSequencer>(4, 20, 0.5, 5))
    });
    group.bench_function(BenchmarkId::from_parameter("mlin"), |b| {
        b.iter(|| run_protocol::<MlinOverSequencer>(4, 20, 0.5, 5))
    });
    group.bench_function(BenchmarkId::from_parameter("aggregate"), |b| {
        b.iter(|| run_protocol::<AggregateOverSequencer>(4, 20, 0.5, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
