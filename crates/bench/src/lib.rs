//! # moc-bench
//!
//! The experiment harness behind EXPERIMENTS.md: each function regenerates
//! one of the paper-derived tables (experiments E4, E5, E10, E11 and the
//! query-scope optimization of Section 5.2) as a formatted [`Table`].
//!
//! `cargo run -p moc-bench --bin paper_experiments` prints every table;
//! the Criterion benches in `benches/` cover the wall-clock
//! micro-benchmarks (checker, interpreter, broadcast, simulator).

use std::fmt;
use std::time::Instant;

use moc_checker::admissible::{find_legal_extension, SearchLimits, SearchOutcome};
use moc_checker::fast::check_under_constraint;
use moc_core::constraints::Constraint;
use moc_core::mop::MOpClass;
use moc_core::relations::{process_order, reads_from, real_time};
use moc_protocol::{
    run_cluster, AggregateOverSequencer, ClusterConfig, MlinOverSequencer,
    MlinRelevantOverSequencer, MscOverIsis, MscOverSequencer, ReplicaProtocol, RunReport,
};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::histories::concurrent_writers_history;
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1_000.0)
}

/// Runs one protocol over a standard randomized workload.
pub fn run_protocol<R: ReplicaProtocol + 'static>(
    processes: usize,
    ops_per_process: usize,
    update_fraction: f64,
    seed: u64,
) -> RunReport {
    let spec = WorkloadSpec {
        processes,
        ops_per_process,
        num_objects: 8,
        update_fraction,
        max_span: 3,
        hot_fraction: 0.5,
        hot_objects: 2,
        think_ns: 500,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(spec.num_objects, seed).with_network(
        NetworkConfig::with_delay(DelayModel::Uniform {
            lo: 1_000,
            hi: 10_000,
        }),
    );
    run_cluster::<R>(&config, s)
}

/// E11 — per-class response time and message cost as the cluster grows.
/// Shape to reproduce: msc queries are local (flat, ~0); mlin queries pay a
/// round trip that grows with message delay; update latencies are similar
/// for both (one atomic broadcast); the aggregate baseline's queries cost
/// as much as updates.
pub fn experiment_query_cost(ns: &[usize], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E11: response time by class (virtual µs) and messages per op",
        &["n", "protocol", "query µs", "update µs", "msgs/op"],
    );
    for &n in ns {
        let mut add = |report: RunReport| {
            let ops = report.history.len() as f64;
            t.row(vec![
                n.to_string(),
                report.protocol.to_string(),
                report
                    .mean_latency(MOpClass::Query)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                report
                    .mean_latency(MOpClass::Update)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", report.total_messages() as f64 / ops),
            ]);
        };
        add(run_protocol::<MscOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
        add(run_protocol::<MlinOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
        add(run_protocol::<AggregateOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
    }
    t
}

/// E10 — the aggregate-object strawman vs the multi-object protocols as
/// the query fraction grows. Shape: the query-heavier the workload, the
/// larger aggregate's penalty (its queries still pay a broadcast), while
/// msc's mean latency falls toward zero.
pub fn experiment_baseline(query_fracs: &[f64], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E10: aggregate-object baseline vs multi-object protocols (n = 4)",
        &["query frac", "protocol", "mean op µs", "msgs/op"],
    );
    for &qf in query_fracs {
        let uf = 1.0 - qf;
        let mut add = |report: RunReport| {
            let ops = report.history.len() as f64;
            let mean: f64 = report.latencies.iter().map(|&(_, l)| l as f64).sum::<f64>() / ops;
            t.row(vec![
                format!("{qf:.1}"),
                report.protocol.to_string(),
                us(mean),
                format!("{:.1}", report.total_messages() as f64 / ops),
            ]);
        };
        add(run_protocol::<MscOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
        add(run_protocol::<MlinOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
        add(run_protocol::<AggregateOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
    }
    t
}

/// E4 — brute-force verification cost on the adversarial
/// concurrent-writers family (Theorems 1 and 2 in action). Shape: nodes
/// explored grow combinatorially with k; the wall time follows.
pub fn experiment_checker_scaling(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "E4: brute-force admissibility search on k writers + k readers",
        &["k", "m-ops", "nodes explored", "wall ms", "admissible"],
    );
    for &k in ks {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        let start = Instant::now();
        let (outcome, stats) =
            find_legal_extension(&h, &rel, SearchLimits::with_max_nodes(20_000_000));
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        t.row(vec![
            k.to_string(),
            h.len().to_string(),
            stats.nodes.to_string(),
            format!("{elapsed:.2}"),
            match outcome {
                SearchOutcome::Admissible(_) => "yes".into(),
                SearchOutcome::NotAdmissible => "no".into(),
                SearchOutcome::LimitExceeded => "budget".into(),
            },
        ]);
    }
    t
}

/// E5 — the Theorem 7 polynomial path vs brute force on protocol-generated
/// histories. Shape: the fast path scales smoothly with history size; the
/// brute force (without the ~ww hint) blows up and is skipped beyond small
/// sizes.
pub fn experiment_fast_vs_brute(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "E5: Theorem 7 fast path vs brute-force search (msc histories)",
        &["m-ops", "fast ms", "brute ms", "brute nodes"],
    );
    for &ops_per_process in sizes {
        let report = run_protocol::<MscOverSequencer>(4, ops_per_process, 0.6, seed);
        let rel = report.ww_relation();
        let start = Instant::now();
        let fast = check_under_constraint(&report.history, &rel, Constraint::Ww)
            .expect("protocol history is under WW");
        let fast_ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(fast.is_admissible());

        // Brute force on the *plain* relation (no ~ww) — the verification
        // problem the paper proves NP-complete. Cap the budget.
        let plain = process_order(&report.history).union(&reads_from(&report.history));
        let start = Instant::now();
        let (outcome, stats) = find_legal_extension(
            &report.history,
            &plain,
            SearchLimits::with_max_nodes(3_000_000),
        );
        let brute_ms = start.elapsed().as_secs_f64() * 1_000.0;
        t.row(vec![
            report.history.len().to_string(),
            format!("{fast_ms:.2}"),
            match outcome {
                SearchOutcome::LimitExceeded => format!(">{brute_ms:.0} (budget)"),
                _ => format!("{brute_ms:.2}"),
            },
            stats.nodes.to_string(),
        ]);
    }
    t
}

/// Section 5.2's closing remark — query responses carrying only the
/// relevant objects. Shape: Full ships the whole universe per response;
/// Relevant ships only what the query reads, independent of universe size.
pub fn experiment_query_scope(universe_sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Query-scope optimization: values shipped per query response",
        &["objects", "protocol", "values/query-response"],
    );
    for &num_objects in universe_sizes {
        let spec = WorkloadSpec {
            processes: 4,
            ops_per_process: 12,
            num_objects,
            update_fraction: 0.3,
            max_span: 2,
            ..WorkloadSpec::default()
        };
        let mut add = |report: RunReport| {
            let values: u64 = report
                .replica_metrics
                .iter()
                .map(|m| m.query_values_sent)
                .sum();
            let queries: u64 = report
                .replica_metrics
                .iter()
                .map(|m| m.queries_completed)
                .sum();
            let responses = queries * report.replica_metrics.len() as u64;
            t.row(vec![
                num_objects.to_string(),
                report.protocol.to_string(),
                if responses == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", values as f64 / responses as f64)
                },
            ]);
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ClusterConfig::new(num_objects, seed);
        add(run_cluster::<MlinOverSequencer>(&config, s.clone()));
        add(run_cluster::<MlinRelevantOverSequencer>(&config, s));
    }
    t
}

/// Broadcast substrate comparison: messages per delivered update and
/// update latency, sequencer vs ISIS. Shape: the sequencer uses ~(n+1)
/// messages per update and two hops; ISIS uses ~3n messages and three
/// hops, so its update latency is higher.
pub fn experiment_abcast(ns: &[usize], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Atomic broadcast cost under the msc protocol (updates only)",
        &["n", "abcast", "update µs", "msgs/update"],
    );
    for &n in ns {
        let mut add = |report: RunReport, name: &str| {
            let updates = report
                .latencies
                .iter()
                .filter(|(c, _)| *c == MOpClass::Update)
                .count() as f64;
            t.row(vec![
                n.to_string(),
                name.to_string(),
                report
                    .mean_latency(MOpClass::Update)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", report.total_messages() as f64 / updates),
            ]);
        };
        add(
            run_protocol::<MscOverSequencer>(n, ops_per_process, 1.0, seed),
            "sequencer",
        );
        add(
            run_protocol::<MscOverIsis>(n, ops_per_process, 1.0, seed),
            "isis",
        );
    }
    t
}

/// Ablation — the searcher's configuration memoization. Shape: identical
/// verdicts, with the memo pruning a growing share of the explored nodes
/// as instances get harder.
pub fn experiment_memo_ablation(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "Ablation: configuration memoization in the brute-force search",
        &[
            "k",
            "nodes (memo)",
            "nodes (no memo)",
            "memo hits",
            "speedup",
        ],
    );
    for &k in ks {
        let mut rng = StdRng::seed_from_u64(k as u64 + 100);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        let limits = SearchLimits::with_max_nodes(50_000_000);
        let (a, s1) = find_legal_extension(&h, &rel, limits);
        let (b, s2) = find_legal_extension(&h, &rel, limits.without_memo());
        assert_eq!(a.is_admissible(), b.is_admissible());
        t.row(vec![
            k.to_string(),
            s1.nodes.to_string(),
            s2.nodes.to_string(),
            s1.memo_hits.to_string(),
            format!("{:.1}x", s2.nodes as f64 / s1.nodes.max(1) as f64),
        ]);
    }
    t
}

/// The condition spectrum: over many seeds, how often do the protocols'
/// histories satisfy each condition? Shape (the paper's separations):
/// msc histories are always m-SC but only sometimes m-linearizable; mlin
/// histories satisfy all three; m-normality sits between.
pub fn experiment_condition_spectrum(seeds: u64) -> Table {
    use moc_checker::causal::check_m_causal;
    use moc_checker::conditions::{check, Condition, Strategy};
    let mut t = Table::new(
        "Condition spectrum: fraction of runs satisfying each condition",
        &[
            "protocol",
            "m-causal",
            "m-seq-consistent",
            "m-normal",
            "m-linearizable",
        ],
    );
    let conditions = [
        Condition::MSequentialConsistency,
        Condition::MNormality,
        Condition::MLinearizability,
    ];
    let tally = |reports: Vec<RunReport>, name: &str, t: &mut Table| {
        let mut counts = [0u64; 3];
        let mut causal_count = 0u64;
        let total = reports.len() as u64;
        for report in reports {
            if check_m_causal(&report.history, SearchLimits::default())
                .map(|r| r.satisfied)
                .unwrap_or(false)
            {
                causal_count += 1;
            }
            for (i, c) in conditions.iter().enumerate() {
                if check(&report.history, *c, Strategy::Auto)
                    .map(|r| r.satisfied)
                    .unwrap_or(false)
                {
                    counts[i] += 1;
                }
            }
        }
        t.row(vec![
            name.to_string(),
            format!("{causal_count}/{total}"),
            format!("{}/{}", counts[0], total),
            format!("{}/{}", counts[1], total),
            format!("{}/{}", counts[2], total),
        ]);
    };
    tally(
        (0..seeds)
            .map(|s| run_protocol::<MscOverSequencer>(3, 5, 0.4, s))
            .collect(),
        "msc",
        &mut t,
    );
    tally(
        (0..seeds)
            .map(|s| run_protocol::<MlinOverSequencer>(3, 5, 0.4, s))
            .collect(),
        "mlin",
        &mut t,
    );
    t
}

/// Exhaustive verification: every message interleaving of small
/// configurations, checked against the protocol's condition (and against
/// the stronger condition for msc, where counterexamples are expected).
pub fn experiment_model_checking() -> Table {
    use moc_checker::conditions::Condition;
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_mc::{explore, ExploreLimits};
    use moc_protocol::OpSpec;
    use std::sync::Arc;

    let wx = |v: i64| {
        let mut b = ProgramBuilder::new(format!("w{v}"));
        b.write(ObjectId::new(0), imm(v)).ret(vec![]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };
    let rx = || {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };

    let mut t = Table::new(
        "Exhaustive schedule exploration (all interleavings, small configs)",
        &[
            "protocol",
            "condition",
            "schedules",
            "violations",
            "expected",
        ],
    );
    let mut add = |name: &str,
                   condition: Condition,
                   expected_violations: bool,
                   result: moc_mc::ExploreResult| {
        t.row(vec![
            name.to_string(),
            condition.to_string(),
            format!(
                "{}{}",
                result.schedules,
                if result.truncated { "+ (cap)" } else { "" }
            ),
            result.violations.len().to_string(),
            if expected_violations {
                "violations (protocol too weak)".into()
            } else {
                "none".into()
            },
        ]);
    };
    add(
        "msc",
        Condition::MSequentialConsistency,
        false,
        explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), rx()], vec![wx(2), rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits::default(),
        ),
    );
    add(
        "msc",
        Condition::MLinearizability,
        true,
        explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        ),
    );
    add(
        "mlin",
        Condition::MLinearizability,
        false,
        explore::<MlinOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx(), rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        ),
    );
    t
}

/// End-to-end verification that every experiment's protocol runs satisfy
/// their conditions — printed as a PASS table so the experiment output is
/// self-validating.
pub fn experiment_validation(seed: u64) -> Table {
    use moc_checker::conditions::Condition;
    let mut t = Table::new(
        "Validation: protocol executions vs their consistency conditions",
        &["protocol", "condition", "m-ops", "verdict"],
    );
    let mut add = |report: RunReport, condition: Condition, with_rt: bool| {
        let mut rel = report.ww_relation();
        if with_rt {
            rel = rel.union(&real_time(&report.history));
        }
        let verdict = check_under_constraint(&report.history, &rel, Constraint::Ww)
            .map(|o| if o.is_admissible() { "PASS" } else { "FAIL" })
            .unwrap_or("ERROR");
        t.row(vec![
            report.protocol.to_string(),
            condition.to_string(),
            report.history.len().to_string(),
            verdict.to_string(),
        ]);
    };
    add(
        run_protocol::<MscOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MSequentialConsistency,
        false,
    );
    add(
        run_protocol::<MlinOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MLinearizability,
        true,
    );
    add(
        run_protocol::<AggregateOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MLinearizability,
        true,
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("a  bb"));
    }

    #[test]
    fn small_experiments_run() {
        let t = experiment_query_cost(&[2], 3, 1);
        assert_eq!(t.rows.len(), 3);
        let t = experiment_checker_scaling(&[2, 3]);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_query_scope(&[4], 1);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_validation(1);
        assert!(t.rows.iter().all(|r| r[3] == "PASS"));
        let t = experiment_memo_ablation(&[2, 3]);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_condition_spectrum(2);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_model_checking();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][3], "0");
        assert_ne!(t.rows[1][3], "0");
        assert_eq!(t.rows[2][3], "0");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
