//! # moc-bench
//!
//! The experiment harness behind EXPERIMENTS.md: each function regenerates
//! one of the paper-derived tables (experiments E4, E5, E10, E11 and the
//! query-scope optimization of Section 5.2) as a formatted [`Table`].
//!
//! `cargo run -p moc-bench --bin paper_experiments` prints every table;
//! the Criterion benches in `benches/` cover the wall-clock
//! micro-benchmarks (checker, interpreter, broadcast, simulator).

use std::fmt;
use std::time::Instant;

use moc_checker::admissible::{find_legal_extension, SearchLimits, SearchOutcome};
use moc_checker::fast::check_under_constraint;
use moc_checker::find_legal_extension_pruned;
use moc_core::constraints::Constraint;
use moc_core::history::{History, MOpIdx};
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::json::{num, str as jstr, Json};
use moc_core::mop::MOpClass;
use moc_core::op::CompletedOp;
use moc_core::relations::{process_order, reads_from, real_time, Relation};
use moc_protocol::{
    run_cluster, AggregateOverSequencer, ClusterConfig, MlinOverSequencer, MlinOverView,
    MlinRelevantOverSequencer, MscOverIsis, MscOverSequencer, MscOverView, ReplicaProtocol,
    RunReport,
};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::histories::{
    concurrent_writers_history, multi_component_history, poisoned_multi_component_history,
};
use moc_workload::synth::{tiled, SynthFamily};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1_000.0)
}

/// Runs one protocol over a standard randomized workload.
pub fn run_protocol<R: ReplicaProtocol + 'static>(
    processes: usize,
    ops_per_process: usize,
    update_fraction: f64,
    seed: u64,
) -> RunReport {
    let spec = WorkloadSpec {
        processes,
        ops_per_process,
        num_objects: 8,
        update_fraction,
        max_span: 3,
        hot_fraction: 0.5,
        hot_objects: 2,
        think_ns: 500,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(spec.num_objects, seed).with_network(
        NetworkConfig::with_delay(DelayModel::Uniform {
            lo: 1_000,
            hi: 10_000,
        }),
    );
    run_cluster::<R>(&config, s)
}

/// E11 — per-class response time and message cost as the cluster grows.
/// Shape to reproduce: msc queries are local (flat, ~0); mlin queries pay a
/// round trip that grows with message delay; update latencies are similar
/// for both (one atomic broadcast); the aggregate baseline's queries cost
/// as much as updates.
pub fn experiment_query_cost(ns: &[usize], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E11: response time by class (virtual µs) and messages per op",
        &["n", "protocol", "query µs", "update µs", "msgs/op"],
    );
    for &n in ns {
        let mut add = |report: RunReport| {
            let ops = report.history.len() as f64;
            t.row(vec![
                n.to_string(),
                report.protocol.to_string(),
                report
                    .mean_latency(MOpClass::Query)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                report
                    .mean_latency(MOpClass::Update)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", report.total_messages() as f64 / ops),
            ]);
        };
        add(run_protocol::<MscOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
        add(run_protocol::<MlinOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
        add(run_protocol::<AggregateOverSequencer>(
            n,
            ops_per_process,
            0.5,
            seed,
        ));
    }
    t
}

/// E10 — the aggregate-object strawman vs the multi-object protocols as
/// the query fraction grows. Shape: the query-heavier the workload, the
/// larger aggregate's penalty (its queries still pay a broadcast), while
/// msc's mean latency falls toward zero.
pub fn experiment_baseline(query_fracs: &[f64], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "E10: aggregate-object baseline vs multi-object protocols (n = 4)",
        &["query frac", "protocol", "mean op µs", "msgs/op"],
    );
    for &qf in query_fracs {
        let uf = 1.0 - qf;
        let mut add = |report: RunReport| {
            let ops = report.history.len() as f64;
            let mean: f64 = report.latencies.iter().map(|&(_, l)| l as f64).sum::<f64>() / ops;
            t.row(vec![
                format!("{qf:.1}"),
                report.protocol.to_string(),
                us(mean),
                format!("{:.1}", report.total_messages() as f64 / ops),
            ]);
        };
        add(run_protocol::<MscOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
        add(run_protocol::<MlinOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
        add(run_protocol::<AggregateOverSequencer>(
            4,
            ops_per_process,
            uf,
            seed,
        ));
    }
    t
}

/// E4 — brute-force verification cost on the adversarial
/// concurrent-writers family (Theorems 1 and 2 in action). Shape: nodes
/// explored grow combinatorially with k; the wall time follows.
pub fn experiment_checker_scaling(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "E4: brute-force admissibility search on k writers + k readers",
        &["k", "m-ops", "nodes explored", "wall ms", "admissible"],
    );
    for &k in ks {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        let start = Instant::now();
        let (outcome, stats) =
            find_legal_extension(&h, &rel, SearchLimits::with_max_nodes(20_000_000));
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        t.row(vec![
            k.to_string(),
            h.len().to_string(),
            stats.nodes.to_string(),
            format!("{elapsed:.2}"),
            match outcome {
                SearchOutcome::Admissible(_) => "yes".into(),
                SearchOutcome::NotAdmissible => "no".into(),
                SearchOutcome::LimitExceeded => "budget".into(),
            },
        ]);
    }
    t
}

/// E5 — the Theorem 7 polynomial path vs brute force on protocol-generated
/// histories. Shape: the fast path scales smoothly with history size; the
/// brute force (without the ~ww hint) blows up and is skipped beyond small
/// sizes.
pub fn experiment_fast_vs_brute(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "E5: Theorem 7 fast path vs brute-force search (msc histories)",
        &["m-ops", "fast ms", "brute ms", "brute nodes"],
    );
    for &ops_per_process in sizes {
        let report = run_protocol::<MscOverSequencer>(4, ops_per_process, 0.6, seed);
        let rel = report.ww_relation();
        let start = Instant::now();
        let fast = check_under_constraint(&report.history, &rel, Constraint::Ww)
            .expect("protocol history is under WW");
        let fast_ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(fast.is_admissible());

        // Brute force on the *plain* relation (no ~ww) — the verification
        // problem the paper proves NP-complete. Cap the budget.
        let plain = process_order(&report.history).union(&reads_from(&report.history));
        let start = Instant::now();
        let (outcome, stats) = find_legal_extension(
            &report.history,
            &plain,
            SearchLimits::with_max_nodes(3_000_000),
        );
        let brute_ms = start.elapsed().as_secs_f64() * 1_000.0;
        t.row(vec![
            report.history.len().to_string(),
            format!("{fast_ms:.2}"),
            match outcome {
                SearchOutcome::LimitExceeded => format!(">{brute_ms:.0} (budget)"),
                _ => format!("{brute_ms:.2}"),
            },
            stats.nodes.to_string(),
        ]);
    }
    t
}

/// Section 5.2's closing remark — query responses carrying only the
/// relevant objects. Shape: Full ships the whole universe per response;
/// Relevant ships only what the query reads, independent of universe size.
pub fn experiment_query_scope(universe_sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Query-scope optimization: values shipped per query response",
        &["objects", "protocol", "values/query-response"],
    );
    for &num_objects in universe_sizes {
        let spec = WorkloadSpec {
            processes: 4,
            ops_per_process: 12,
            num_objects,
            update_fraction: 0.3,
            max_span: 2,
            ..WorkloadSpec::default()
        };
        let mut add = |report: RunReport| {
            let values: u64 = report
                .replica_metrics
                .iter()
                .map(|m| m.query_values_sent)
                .sum();
            let queries: u64 = report
                .replica_metrics
                .iter()
                .map(|m| m.queries_completed)
                .sum();
            let responses = queries * report.replica_metrics.len() as u64;
            t.row(vec![
                num_objects.to_string(),
                report.protocol.to_string(),
                if responses == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", values as f64 / responses as f64)
                },
            ]);
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ClusterConfig::new(num_objects, seed);
        add(run_cluster::<MlinOverSequencer>(&config, s.clone()));
        add(run_cluster::<MlinRelevantOverSequencer>(&config, s));
    }
    t
}

/// Broadcast substrate comparison: messages per delivered update and
/// update latency, sequencer vs ISIS. Shape: the sequencer uses ~(n+1)
/// messages per update and two hops; ISIS uses ~3n messages and three
/// hops, so its update latency is higher.
pub fn experiment_abcast(ns: &[usize], ops_per_process: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Atomic broadcast cost under the msc protocol (updates only)",
        &["n", "abcast", "update µs", "msgs/update"],
    );
    for &n in ns {
        let mut add = |report: RunReport, name: &str| {
            let updates = report
                .latencies
                .iter()
                .filter(|(c, _)| *c == MOpClass::Update)
                .count() as f64;
            t.row(vec![
                n.to_string(),
                name.to_string(),
                report
                    .mean_latency(MOpClass::Update)
                    .map(us)
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", report.total_messages() as f64 / updates),
            ]);
        };
        add(
            run_protocol::<MscOverSequencer>(n, ops_per_process, 1.0, seed),
            "sequencer",
        );
        add(
            run_protocol::<MscOverIsis>(n, ops_per_process, 1.0, seed),
            "isis",
        );
    }
    t
}

/// Ablation — the searcher's configuration memoization. Shape: identical
/// verdicts, with the memo pruning a growing share of the explored nodes
/// as instances get harder.
pub fn experiment_memo_ablation(ks: &[usize]) -> Table {
    let mut t = Table::new(
        "Ablation: configuration memoization in the brute-force search",
        &[
            "k",
            "nodes (memo)",
            "nodes (no memo)",
            "memo hits",
            "speedup",
        ],
    );
    for &k in ks {
        let mut rng = StdRng::seed_from_u64(k as u64 + 100);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        let limits = SearchLimits::with_max_nodes(50_000_000);
        let (a, s1) = find_legal_extension(&h, &rel, limits);
        let (b, s2) = find_legal_extension(&h, &rel, limits.without_memo());
        assert_eq!(a.is_admissible(), b.is_admissible());
        t.row(vec![
            k.to_string(),
            s1.nodes.to_string(),
            s2.nodes.to_string(),
            s1.memo_hits.to_string(),
            format!("{:.1}x", s2.nodes as f64 / s1.nodes.max(1) as f64),
        ]);
    }
    t
}

/// The condition spectrum: over many seeds, how often do the protocols'
/// histories satisfy each condition? Shape (the paper's separations):
/// msc histories are always m-SC but only sometimes m-linearizable; mlin
/// histories satisfy all three; m-normality sits between.
pub fn experiment_condition_spectrum(seeds: u64) -> Table {
    use moc_checker::causal::check_m_causal;
    use moc_checker::conditions::{check, Condition, Strategy};
    let mut t = Table::new(
        "Condition spectrum: fraction of runs satisfying each condition",
        &[
            "protocol",
            "m-causal",
            "m-seq-consistent",
            "m-normal",
            "m-linearizable",
        ],
    );
    let conditions = [
        Condition::MSequentialConsistency,
        Condition::MNormality,
        Condition::MLinearizability,
    ];
    let tally = |reports: Vec<RunReport>, name: &str, t: &mut Table| {
        let mut counts = [0u64; 3];
        let mut causal_count = 0u64;
        let total = reports.len() as u64;
        for report in reports {
            if check_m_causal(&report.history, SearchLimits::default())
                .map(|r| r.satisfied)
                .unwrap_or(false)
            {
                causal_count += 1;
            }
            for (i, c) in conditions.iter().enumerate() {
                if check(&report.history, *c, Strategy::Auto)
                    .map(|r| r.satisfied)
                    .unwrap_or(false)
                {
                    counts[i] += 1;
                }
            }
        }
        t.row(vec![
            name.to_string(),
            format!("{causal_count}/{total}"),
            format!("{}/{}", counts[0], total),
            format!("{}/{}", counts[1], total),
            format!("{}/{}", counts[2], total),
        ]);
    };
    tally(
        (0..seeds)
            .map(|s| run_protocol::<MscOverSequencer>(3, 5, 0.4, s))
            .collect(),
        "msc",
        &mut t,
    );
    tally(
        (0..seeds)
            .map(|s| run_protocol::<MlinOverSequencer>(3, 5, 0.4, s))
            .collect(),
        "mlin",
        &mut t,
    );
    t
}

/// Exhaustive verification: every message interleaving of small
/// configurations, checked against the protocol's condition (and against
/// the stronger condition for msc, where counterexamples are expected).
pub fn experiment_model_checking() -> Table {
    use moc_checker::conditions::Condition;
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_mc::{explore, ExploreLimits};
    use moc_protocol::OpSpec;
    use std::sync::Arc;

    let wx = |v: i64| {
        let mut b = ProgramBuilder::new(format!("w{v}"));
        b.write(ObjectId::new(0), imm(v)).ret(vec![]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };
    let rx = || {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };

    let mut t = Table::new(
        "Exhaustive schedule exploration (all interleavings, small configs)",
        &[
            "protocol",
            "condition",
            "schedules",
            "violations",
            "expected",
        ],
    );
    let mut add = |name: &str,
                   condition: Condition,
                   expected_violations: bool,
                   result: moc_mc::ExploreResult| {
        t.row(vec![
            name.to_string(),
            condition.to_string(),
            format!(
                "{}{}",
                result.schedules,
                if result.truncated { "+ (cap)" } else { "" }
            ),
            result.violations.len().to_string(),
            if expected_violations {
                "violations (protocol too weak)".into()
            } else {
                "none".into()
            },
        ]);
    };
    add(
        "msc",
        Condition::MSequentialConsistency,
        false,
        explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), rx()], vec![wx(2), rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits::default(),
        ),
    );
    add(
        "msc",
        Condition::MLinearizability,
        true,
        explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        ),
    );
    add(
        "mlin",
        Condition::MLinearizability,
        false,
        explore::<MlinOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx(), rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        ),
    );
    t
}

/// End-to-end verification that every experiment's protocol runs satisfy
/// their conditions — printed as a PASS table so the experiment output is
/// self-validating.
pub fn experiment_validation(seed: u64) -> Table {
    use moc_checker::conditions::Condition;
    let mut t = Table::new(
        "Validation: protocol executions vs their consistency conditions",
        &["protocol", "condition", "m-ops", "verdict"],
    );
    let mut add = |report: RunReport, condition: Condition, with_rt: bool| {
        let mut rel = report.ww_relation();
        if with_rt {
            rel = rel.union(&real_time(&report.history));
        }
        let verdict = check_under_constraint(&report.history, &rel, Constraint::Ww)
            .map(|o| if o.is_admissible() { "PASS" } else { "FAIL" })
            .unwrap_or("ERROR");
        t.row(vec![
            report.protocol.to_string(),
            condition.to_string(),
            report.history.len().to_string(),
            verdict.to_string(),
        ]);
    };
    add(
        run_protocol::<MscOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MSequentialConsistency,
        false,
    );
    add(
        run_protocol::<MlinOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MLinearizability,
        true,
    );
    add(
        run_protocol::<AggregateOverSequencer>(4, 12, 0.5, seed),
        moc_checker::Condition::MLinearizability,
        true,
    );
    t
}

/// One measured configuration of the certified-checker benchmark behind
/// `BENCH_checker.json`: the same history decided by the naive search
/// (under a per-family node budget), the precedence-pruned parallel engine
/// at several thread counts, and (where the writer order is known sound)
/// the Theorem 7 fast path.
#[derive(Debug, Clone)]
pub struct CheckerBenchRow {
    /// Family label (`writers-KxM`, `multi-CxK`, `torn-CxK`,
    /// `shred-CxK`, `poisoned-CxK`).
    pub family: String,
    /// History size in m-operations.
    pub m_ops: usize,
    /// The pruned engine's verdict (`admissible` / `inadmissible` /
    /// `budget`); the naive search, when it completes, must agree.
    pub verdict: String,
    /// Naive-search wall time (ms) and DFS nodes, or `None` when the
    /// naive search exceeded [`Self::naive_budget`].
    pub naive: Option<(f64, u64)>,
    /// Node budget the naive search ran under.
    pub naive_budget: u64,
    /// Pruned-search wall time (ms), single-threaded.
    pub pruned_ms: f64,
    /// Nodes the pruned search expanded (identical at every thread count).
    pub pruned_nodes: u64,
    /// Interaction components the pruned search solved independently.
    pub components: u64,
    /// M-operations scheduled by forced-prefix peeling.
    pub peeled: u64,
    /// `~rw` edges forced by the precedence saturation.
    pub forced_edges: u64,
    /// Transposition-table hits charged on the fold's decision path.
    pub memo_hits: u64,
    /// Peak transposition-table occupancy over the decision path.
    pub memo_peak: u64,
    /// Theorem 7 fast-path wall time (ms); `None` = not applicable (the
    /// torn/shredded families reuse version numbers across writers, which
    /// the version-based legality scan cannot arbitrate).
    pub fast: Option<f64>,
    /// Pruned wall time (ms) per thread count, `(threads, ms)`.
    pub parallel: Vec<(usize, f64)>,
    /// `naive_nodes / max(pruned_nodes, 1)`; `None` when the naive search
    /// was budget-capped (the true ratio is only bounded below).
    pub node_speedup: Option<f64>,
    /// `naive_ms / pruned_ms`; `None` when naive was budget-capped.
    pub wall_speedup: Option<f64>,
    /// Commutativity skips the default (symmetry-on) search charged:
    /// extension steps refused because a provably-independent lower-index
    /// m-operation was schedulable (the canonical representative covers
    /// the skipped interleaving).
    pub symmetry_skips: u64,
    /// Nodes the same search expands with symmetry reduction ablated
    /// (`SearchLimits::without_symmetry`) — the PR 5 engine's behavior.
    pub nosym_nodes: u64,
    /// Wall time (ms) of the ablated search, single-threaded, best of 3.
    pub nosym_ms: f64,
}

impl CheckerBenchRow {
    /// The row as a JSON object (`BENCH_checker.json` version 4 schema).
    pub fn to_json(&self) -> Json {
        let naive = match self.naive {
            Some((ms, nodes)) => Json::Obj(vec![
                ("ms".into(), Json::Num(ms)),
                ("nodes".into(), num(nodes as i64)),
            ]),
            None => jstr("budget"),
        };
        let fast = match self.fast {
            Some(ms) => Json::Obj(vec![("ms".into(), Json::Num(ms))]),
            None => jstr("n/a"),
        };
        Json::Obj(vec![
            ("family".into(), jstr(self.family.clone())),
            ("m_ops".into(), num(self.m_ops as i64)),
            ("verdict".into(), jstr(self.verdict.clone())),
            ("naive".into(), naive),
            ("naive_budget".into(), num(self.naive_budget as i64)),
            (
                "pruned".into(),
                Json::Obj(vec![
                    ("ms".into(), Json::Num(self.pruned_ms)),
                    ("nodes".into(), num(self.pruned_nodes as i64)),
                    ("components".into(), num(self.components as i64)),
                    ("peeled".into(), num(self.peeled as i64)),
                    ("forced_edges".into(), num(self.forced_edges as i64)),
                    ("memo_hits".into(), num(self.memo_hits as i64)),
                    ("memo_peak".into(), num(self.memo_peak as i64)),
                ]),
            ),
            ("fast".into(), fast),
            (
                "parallel".into(),
                Json::Arr(
                    self.parallel
                        .iter()
                        .map(|&(threads, ms)| {
                            Json::Obj(vec![
                                ("threads".into(), num(threads as i64)),
                                ("ms".into(), Json::Num(ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "node_speedup".into(),
                self.node_speedup.map_or(Json::Null, Json::Num),
            ),
            (
                "wall_speedup".into(),
                self.wall_speedup.map_or(Json::Null, Json::Num),
            ),
            (
                "symmetry".into(),
                Json::Obj(vec![
                    ("skips".into(), num(self.symmetry_skips as i64)),
                    ("nodes_without".into(), num(self.nosym_nodes as i64)),
                    ("ms_without".into(), Json::Num(self.nosym_ms)),
                    (
                        "node_reduction".into(),
                        Json::Num(self.nosym_nodes as f64 / self.pruned_nodes.max(1) as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// A sound `~ww` augmentation for the generator families: every pair of
/// updates ordered by history index (D 4.9 obligates *all* update pairs).
/// Every generator edge already goes from a lower to a higher index, so
/// the union stays acyclic.
fn index_ww_relation(h: &History) -> Relation {
    let mut rel = process_order(h).union(&reads_from(h));
    for i in 0..h.len() {
        for j in (i + 1)..h.len() {
            let (a, b) = (MOpIdx(i), MOpIdx(j));
            if !h.wobjects(a).is_empty() && !h.wobjects(b).is_empty() {
                rel.add(a, b);
            }
        }
    }
    rel
}

/// [`multi_component_history`] with component 0's first reader torn: it
/// keeps object 0 from writer 0 but takes object 1 from writer 1. The
/// writers are atomic, so the history is inadmissible — yet `~H+` stays
/// acyclic, forcing the searches down the exhaustion path. The naive
/// search exhausts the *product* of the per-component state spaces; the
/// component-aware search only the sum.
fn torn_multi_component(components: usize, k: usize, seed: u64) -> History {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let h = multi_component_history(components, k, 2, &mut rng);
    let mut records = h.records().to_vec();
    let w0 = MOpId::new(ProcessId::new(0), 0);
    let w1 = MOpId::new(ProcessId::new(1), 0);
    let reader = records
        .iter_mut()
        .find(|r| r.label == "c0reader0")
        .expect("component 0 has a first reader");
    reader.ops[0] = CompletedOp::read(ObjectId::new(0), 1, w0, 1);
    reader.ops[1] = CompletedOp::read(ObjectId::new(1), 2, w1, 1);
    History::new(h.num_objects(), records).expect("torn history stays well-formed")
}

/// [`multi_component_history`] with *every* component's first reader torn
/// the way [`torn_multi_component`] tears component 0: object `2c` from
/// writer 0, object `2c+1` from writer 1 of component `c`. Each component
/// is independently inadmissible, so a component-aware search must
/// exhaustively refute every one of them — the workload whose wall-clock
/// benefit from the parallel engine comes from fanning disjoint component
/// refutations out across workers.
fn shredded_multi_component(components: usize, k: usize, seed: u64) -> History {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let h = multi_component_history(components, k, 2, &mut rng);
    let mut records = h.records().to_vec();
    for c in 0..components {
        let proc_base = (c * 2 * k) as u32;
        let w0 = MOpId::new(ProcessId::new(proc_base), 0);
        let w1 = MOpId::new(ProcessId::new(proc_base + 1), 0);
        let label = format!("c{c}reader0");
        let reader = records
            .iter_mut()
            .find(|r| r.label == label)
            .expect("every component has a first reader");
        reader.ops[0] = CompletedOp::read(ObjectId::new((2 * c) as u32), 1, w0, 1);
        reader.ops[1] = CompletedOp::read(ObjectId::new((2 * c + 1) as u32), 2, w1, 1);
    }
    History::new(h.num_objects(), records).expect("shredded history stays well-formed")
}

/// Thread counts every family's pruned search is timed at.
pub const BENCH_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The benchmark families: label, history, whether the Theorem 7 fast path
/// applies, and an optional per-family naive node budget overriding the
/// experiment-wide one (the ≥4x4 families' naive product spaces are far
/// past any practical budget, so they run under a small cap that documents
/// the blow-up without dominating the run).
fn checker_families(default_budget: u64) -> Vec<(String, History, bool, u64)> {
    let mut rng = StdRng::seed_from_u64(42);
    let big = default_budget.min(200_000);
    vec![
        (
            "writers-3x3".into(),
            concurrent_writers_history(3, 3, &mut rng),
            true,
            default_budget,
        ),
        (
            "multi-2x3".into(),
            multi_component_history(2, 3, 2, &mut rng),
            true,
            default_budget,
        ),
        (
            "multi-3x3".into(),
            multi_component_history(3, 3, 2, &mut rng),
            true,
            default_budget,
        ),
        (
            "torn-2x3".into(),
            torn_multi_component(2, 3, 7),
            false,
            default_budget,
        ),
        (
            "torn-3x3".into(),
            torn_multi_component(3, 3, 7),
            false,
            default_budget,
        ),
        ("torn-4x4".into(), torn_multi_component(4, 4, 7), false, big),
        (
            "shred-4x5".into(),
            shredded_multi_component(4, 5, 7),
            false,
            big,
        ),
        (
            "shred-4x6".into(),
            shredded_multi_component(4, 6, 7),
            false,
            big,
        ),
        (
            "poisoned-2x3".into(),
            poisoned_multi_component_history(2, 3, 2, &mut rng),
            true,
            default_budget,
        ),
        // Synthesized stress rows: boundary specimens `moc synth` hunted
        // out of the history grammar (see docs/SYNTH.md), tiled into
        // disjoint copies so interaction components multiply while the
        // per-component structure stays pinned by the seed. The fast path
        // is off: raw synthesized histories do not promise that index
        // order satisfies their WW obligations. Replay any base with
        // `moc synth --family NAME`.
        (
            "synth-peak0-x4".into(),
            tiled(
                &SynthFamily::by_name("peak-0").expect("pinned").history(),
                4,
            ),
            false,
            big,
        ),
        (
            "synth-lbi0-x4".into(),
            tiled(&SynthFamily::by_name("lbi-0").expect("pinned").history(), 4),
            false,
            big,
        ),
        (
            "synth-cycle0-x4".into(),
            tiled(
                &SynthFamily::by_name("cycle-0").expect("pinned").history(),
                4,
            ),
            false,
            big,
        ),
    ]
}

/// The benchmark behind `BENCH_checker.json`: naive vs the precedence-
/// pruned parallel engine (at 1/2/4/8 threads) vs the Theorem 7 fast path
/// over the generator families. `budget` caps the naive search's node
/// count (per-family overrides apply, see [`checker_families`]).
///
/// Wall times are the best of three runs; node counts and verdicts are
/// deterministic, and the experiment asserts they agree across thread
/// counts and engines.
///
/// The fast path is only timed on families whose index order is a sound
/// writer order for the plain-relation question (the admissible families,
/// and the poisoned one, where the stale read is illegal under *any*
/// writer order); the torn/shredded families reuse version numbers across
/// writers, which the version-based legality scan cannot arbitrate, so
/// they report `fast: "n/a"`.
pub fn experiment_certified_checker(budget: u64) -> Vec<CheckerBenchRow> {
    let mut rows = Vec::new();
    for (family, h, fast_applies, naive_budget) in checker_families(budget) {
        let rel = process_order(&h).union(&reads_from(&h));
        let naive_limits = SearchLimits::with_max_nodes(naive_budget);

        let start = Instant::now();
        let (naive_out, naive_stats) = find_legal_extension(&h, &rel, naive_limits);
        let naive_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let limits = SearchLimits::with_max_nodes(budget);
        let mut pruned_ms = f64::INFINITY;
        let mut pruned = None;
        for _ in 0..3 {
            let start = Instant::now();
            let result = find_legal_extension_pruned(&h, &rel, limits);
            pruned_ms = pruned_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
            pruned = Some(result);
        }
        let (pruned_out, pruned_stats) = pruned.expect("three timed runs");

        // Symmetry ablation: the same pruned search with the
        // commutativity-aware reduction disabled (the pre-symmetry
        // engine). Verdicts must agree; the node delta is the measured
        // value of the commute certificate inside the checker.
        let nosym_limits = limits.without_symmetry();
        let mut nosym_ms = f64::INFINITY;
        let mut nosym = None;
        for _ in 0..3 {
            let start = Instant::now();
            let result = find_legal_extension_pruned(&h, &rel, nosym_limits);
            nosym_ms = nosym_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
            nosym = Some(result);
        }
        let (nosym_out, nosym_stats) = nosym.expect("three timed runs");
        if !matches!(nosym_out, SearchOutcome::LimitExceeded)
            && !matches!(pruned_out, SearchOutcome::LimitExceeded)
        {
            assert_eq!(
                nosym_out.is_admissible(),
                pruned_out.is_admissible(),
                "{family}: symmetry reduction must not change the verdict"
            );
        }

        let mut parallel = Vec::new();
        for threads in BENCH_THREAD_COUNTS {
            let t_limits = limits.with_threads(threads);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                let (t_out, t_stats) = find_legal_extension_pruned(&h, &rel, t_limits);
                best = best.min(start.elapsed().as_secs_f64() * 1_000.0);
                assert_eq!(
                    t_out.is_admissible(),
                    pruned_out.is_admissible(),
                    "{family}: verdict must not depend on thread count"
                );
                assert_eq!(
                    t_stats.nodes, pruned_stats.nodes,
                    "{family}: node count must not depend on thread count"
                );
            }
            parallel.push((threads, best));
        }

        let verdict = match &pruned_out {
            SearchOutcome::LimitExceeded => "budget",
            out => {
                if !matches!(naive_out, SearchOutcome::LimitExceeded) {
                    assert_eq!(
                        naive_out.is_admissible(),
                        out.is_admissible(),
                        "{family}: naive and pruned verdicts must agree"
                    );
                }
                if out.is_admissible() {
                    "admissible"
                } else {
                    "inadmissible"
                }
            }
        };

        let fast = if fast_applies {
            let augmented = index_ww_relation(&h);
            let start = Instant::now();
            let fast = check_under_constraint(&h, &augmented, Constraint::Ww)
                .expect("index order satisfies WW on generator families");
            let ms = start.elapsed().as_secs_f64() * 1_000.0;
            if verdict != "budget" {
                assert_eq!(
                    fast.is_admissible(),
                    verdict == "admissible",
                    "{family}: fast path must agree"
                );
            }
            Some(ms)
        } else {
            None
        };

        let naive = match naive_out {
            SearchOutcome::LimitExceeded => None,
            _ => Some((naive_ms, naive_stats.nodes)),
        };
        rows.push(CheckerBenchRow {
            family,
            m_ops: h.len(),
            verdict: verdict.into(),
            naive,
            naive_budget,
            pruned_ms,
            pruned_nodes: pruned_stats.nodes,
            components: pruned_stats.components,
            peeled: pruned_stats.peeled,
            forced_edges: pruned_stats.forced_edges,
            memo_hits: pruned_stats.memo_hits,
            memo_peak: pruned_stats.memo_peak,
            fast,
            parallel,
            node_speedup: naive.map(|(_, nodes)| nodes as f64 / pruned_stats.nodes.max(1) as f64),
            wall_speedup: naive.map(|(ms, _)| ms / pruned_ms.max(1e-6)),
            symmetry_skips: pruned_stats.symmetry_skips,
            nosym_nodes: nosym_stats.nodes,
            nosym_ms,
        });
    }
    rows
}

/// Renders the certified-checker rows as a printable table.
pub fn checker_bench_table(rows: &[CheckerBenchRow]) -> Table {
    let mut t = Table::new(
        "Certified checker: naive vs parallel pruned engine vs Theorem 7 fast path",
        &[
            "family",
            "m-ops",
            "verdict",
            "naive ms",
            "naive nodes",
            "pruned ms",
            "pruned nodes",
            "comps",
            "peeled",
            "rw edges",
            "memo hits",
            "memo peak",
            "fast ms",
            "t2/t4/t8 ms",
            "node speedup",
            "sym skips",
            "nosym nodes",
        ],
    );
    for r in rows {
        let threaded = r
            .parallel
            .iter()
            .filter(|(threads, _)| *threads > 1)
            .map(|(_, ms)| format!("{ms:.2}"))
            .collect::<Vec<_>>()
            .join("/");
        t.row(vec![
            r.family.clone(),
            r.m_ops.to_string(),
            r.verdict.clone(),
            r.naive
                .map(|(ms, _)| format!("{ms:.3}"))
                .unwrap_or_else(|| "budget".into()),
            r.naive
                .map(|(_, nodes)| nodes.to_string())
                .unwrap_or_else(|| format!(">{}", r.naive_budget)),
            format!("{:.3}", r.pruned_ms),
            r.pruned_nodes.to_string(),
            r.components.to_string(),
            r.peeled.to_string(),
            r.forced_edges.to_string(),
            r.memo_hits.to_string(),
            r.memo_peak.to_string(),
            r.fast
                .map(|ms| format!("{ms:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            threaded,
            r.node_speedup
                .map(|s| format!("{s:.1}x"))
                .unwrap_or_else(|| "-".into()),
            r.symmetry_skips.to_string(),
            r.nosym_nodes.to_string(),
        ]);
    }
    t
}

/// Serializes the certified-checker rows as the `BENCH_checker.json`
/// version 4 document (version 3 plus the `synth-*` stress rows tiled
/// from synthesized boundary specimens), headlined by the best
/// completed-naive node speedup among the component families and stamped
/// with the parallelism the machine actually offered.
pub fn checker_bench_json(rows: &[CheckerBenchRow]) -> String {
    let headline = rows
        .iter()
        .filter(|r| {
            r.family.starts_with("multi-")
                || r.family.starts_with("torn-")
                || r.family.starts_with("shred-")
        })
        .filter(|r| r.node_speedup.is_some())
        .max_by(|a, b| {
            a.node_speedup
                .unwrap_or(0.0)
                .total_cmp(&b.node_speedup.unwrap_or(0.0))
        });
    let mut fields = vec![
        ("bench".into(), jstr("checker")),
        ("version".into(), num(4)),
        ("cpus".into(), num(bench_cpus())),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        ),
    ];
    if let Some(best) = headline {
        fields.push((
            "headline".into(),
            Json::Obj(vec![
                ("family".into(), jstr(best.family.clone())),
                (
                    "node_speedup".into(),
                    best.node_speedup.map_or(Json::Null, Json::Num),
                ),
                (
                    "wall_speedup".into(),
                    best.wall_speedup.map_or(Json::Null, Json::Num),
                ),
            ]),
        ));
    }
    Json::Obj(fields).render()
}

/// Golden per-family caps on the pruned engine's deterministic node count.
/// The counts are exactly reproducible (fixed seeds, fixed Zobrist keys),
/// so the caps hold a little slack only for future *intentional* pruning
/// improvements — a regression that explores past a cap fails CI.
pub const CHECKER_NODE_CAPS: [(&str, u64); 12] = [
    ("writers-3x3", 50),
    ("multi-2x3", 50),
    ("multi-3x3", 80),
    ("torn-2x3", 120),
    ("torn-3x3", 120),
    ("torn-4x4", 500),
    ("shred-4x5", 3_000),
    ("shred-4x6", 20_000),
    ("poisoned-2x3", 0),
    ("synth-peak0-x4", 500),
    ("synth-lbi0-x4", 120),
    ("synth-cycle0-x4", 0),
];

/// CI perf-smoke gate: runs the checker families under a small naive
/// budget, checks every family's pruned node count against its golden cap,
/// and re-checks thread-count determinism (which
/// [`experiment_certified_checker`] asserts internally for 1/2/4/8
/// threads). Returns the offending families on failure.
pub fn checker_smoke() -> Result<Vec<CheckerBenchRow>, String> {
    let rows = experiment_certified_checker(200_000);
    let mut failures = Vec::new();
    for (family, cap) in CHECKER_NODE_CAPS {
        match rows.iter().find(|r| r.family == family) {
            Some(row) => {
                if row.pruned_nodes > cap {
                    failures.push(format!(
                        "{family}: pruned explored {} nodes, golden cap is {cap}",
                        row.pruned_nodes
                    ));
                }
                if row.verdict == "budget" {
                    failures.push(format!("{family}: pruned engine exceeded the budget"));
                }
            }
            None => failures.push(format!("{family}: missing from the experiment")),
        }
    }
    if rows.len() != CHECKER_NODE_CAPS.len() {
        failures.push(format!(
            "expected {} families, experiment produced {}",
            CHECKER_NODE_CAPS.len(),
            rows.len()
        ));
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(failures.join("\n"))
    }
}

/// One (fault plan, protocol) cell of the chaos benchmark: network and
/// link counters plus response-time percentiles, aggregated over a seed
/// sweep.
#[derive(Debug, Clone)]
pub struct ChaosBenchRow {
    /// Fault-plan name (`none`, `lossy-dup`, `storm`).
    pub plan: String,
    /// Protocol name (`msc`, `mlin`).
    pub protocol: String,
    /// Seeds aggregated into this row.
    pub runs: u64,
    /// Messages the simulator delivered.
    pub delivered: u64,
    /// Messages the fault plan dropped (includes deliveries suppressed by
    /// partitions and crash windows).
    pub dropped: u64,
    /// Messages the fault plan duplicated.
    pub duplicated: u64,
    /// Frames the reliable link retransmitted to recover losses.
    pub retransmitted: u64,
    /// Duplicate frames the link's receive side discarded.
    pub dedup_discarded: u64,
    /// Query response-time percentiles (ns of virtual time).
    pub query_p50_ns: u64,
    /// 99th-percentile query response time (ns).
    pub query_p99_ns: u64,
    /// Median update response time (ns).
    pub update_p50_ns: u64,
    /// 99th-percentile update response time (ns).
    pub update_p99_ns: u64,
}

impl ChaosBenchRow {
    /// The row as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("plan".into(), jstr(self.plan.clone())),
            ("protocol".into(), jstr(self.protocol.clone())),
            ("runs".into(), num(self.runs as i64)),
            ("delivered".into(), num(self.delivered as i64)),
            ("dropped".into(), num(self.dropped as i64)),
            ("duplicated".into(), num(self.duplicated as i64)),
            ("retransmitted".into(), num(self.retransmitted as i64)),
            ("dedup_discarded".into(), num(self.dedup_discarded as i64)),
            (
                "query_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.query_p50_ns as i64)),
                    ("p99".into(), num(self.query_p99_ns as i64)),
                ]),
            ),
            (
                "update_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.update_p50_ns as i64)),
                    ("p99".into(), num(self.update_p99_ns as i64)),
                ]),
            ),
        ])
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// E-chaos — what the fault plans cost: delivered/dropped/retransmitted
/// traffic and response-time percentiles for both protocols under three
/// canned plans (`none` baseline, `lossy-dup`, `storm`), each aggregated
/// over `seeds` seeds. Shape to reproduce: the lossy plans inflate tail
/// latency (retransmission round trips) but never cost a completion —
/// every sweep run still quiesces with a full history.
pub fn experiment_chaos(seeds: u64) -> Vec<ChaosBenchRow> {
    use moc_protocol::chaos::{run_chaos_cluster, ChaosConfig, ChaosRunReport};
    use moc_workload::chaos::{FaultFamily, WorkloadFamily};

    const PROCESSES: usize = 4;
    const OPS: usize = 5;
    const HORIZON_NS: u64 = 1_000_000;

    let run_one = |protocol: &str, family: FaultFamily, seed: u64| -> ChaosRunReport {
        let spec = WorkloadFamily::Mixed.spec(PROCESSES, OPS);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ChaosConfig::new(spec.num_objects, seed)
            .with_faults(family.plan(PROCESSES, HORIZON_NS));
        match protocol {
            "msc" => run_chaos_cluster::<MscOverSequencer>(&config, s),
            _ => run_chaos_cluster::<MlinOverSequencer>(&config, s),
        }
    };

    let mut rows = Vec::new();
    for family in [FaultFamily::None, FaultFamily::LossyDup, FaultFamily::Storm] {
        for protocol in ["msc", "mlin"] {
            let mut row = ChaosBenchRow {
                plan: family.name().into(),
                protocol: protocol.into(),
                runs: seeds,
                delivered: 0,
                dropped: 0,
                duplicated: 0,
                retransmitted: 0,
                dedup_discarded: 0,
                query_p50_ns: 0,
                query_p99_ns: 0,
                update_p50_ns: 0,
                update_p99_ns: 0,
            };
            let mut queries = Vec::new();
            let mut updates = Vec::new();
            for seed in 0..seeds {
                let report = run_one(protocol, family, seed);
                assert!(
                    report.anomalies.is_clean(),
                    "bench run must be fault-masked ({protocol}, {}, seed {seed}): {:?}",
                    family.name(),
                    report.anomalies
                );
                row.delivered += report.sim.messages_delivered;
                row.dropped += report.sim.messages_dropped;
                row.duplicated += report.sim.messages_duplicated;
                let link = report.total_link_stats();
                row.retransmitted += link.retransmissions;
                row.dedup_discarded += link.duplicates_discarded;
                for &(class, l) in &report.latencies {
                    match class {
                        MOpClass::Query => queries.push(l),
                        MOpClass::Update => updates.push(l),
                    }
                }
            }
            queries.sort_unstable();
            updates.sort_unstable();
            row.query_p50_ns = percentile(&queries, 50.0);
            row.query_p99_ns = percentile(&queries, 99.0);
            row.update_p50_ns = percentile(&updates, 50.0);
            row.update_p99_ns = percentile(&updates, 99.0);
            rows.push(row);
        }
    }
    rows
}

/// One (fault plan, protocol) cell of the failover benchmark: what a
/// coordinator crash costs under the view-based atomic broadcast,
/// aggregated over a seed sweep.
#[derive(Debug, Clone)]
pub struct FailoverBenchRow {
    /// Fault-plan name (a `leader-crash-*` family).
    pub plan: String,
    /// Protocol name (`msc`, `mlin`); the broadcast is always `view`.
    pub protocol: String,
    /// Seeds aggregated into this row.
    pub runs: u64,
    /// Runs in which some replica actually installed a successor view.
    pub failovers: u64,
    /// Median update response time across all runs (ns of virtual time).
    pub update_p50_ns: u64,
    /// 99th-percentile update response time (ns).
    pub update_p99_ns: u64,
    /// Failover latency: in each failed-over run, the slowest update's
    /// submit→deliver time — the operation stranded across the view
    /// change. Median over those runs (ns).
    pub failover_p50_ns: u64,
    /// 99th-percentile failover latency (ns).
    pub failover_p99_ns: u64,
}

impl FailoverBenchRow {
    /// The row as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("plan".into(), jstr(self.plan.clone())),
            ("protocol".into(), jstr(self.protocol.clone())),
            ("abcast".into(), jstr("view")),
            ("runs".into(), num(self.runs as i64)),
            ("failovers".into(), num(self.failovers as i64)),
            (
                "update_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.update_p50_ns as i64)),
                    ("p99".into(), num(self.update_p99_ns as i64)),
                ]),
            ),
            (
                "failover_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.failover_p50_ns as i64)),
                    ("p99".into(), num(self.failover_p99_ns as i64)),
                ]),
            ),
        ])
    }
}

/// E-failover — what a leader crash costs: the view-based broadcast is
/// swept over the three `leader-crash-*` families and the latency of the
/// operation stranded across the view change is reported per run. Shape
/// to reproduce: every run still quiesces cleanly (the crash is masked),
/// but the stranded update's latency is dominated by the suspicion
/// timeout plus the view-change handshake, several times the
/// fair-weather update path.
pub fn experiment_failover(seeds: u64) -> Vec<FailoverBenchRow> {
    use moc_protocol::chaos::{run_chaos_cluster, ChaosConfig, ChaosRunReport};
    use moc_workload::chaos::{FaultFamily, WorkloadFamily};

    const PROCESSES: usize = 3;
    const OPS: usize = 4;
    // Same timing discipline as the integration sweep: think time keeps
    // submissions in flight through the crash windows, and suspicion
    // sits well below the outage lengths so failover actually fires.
    const HORIZON_NS: u64 = 240_000;
    const THINK_NS: u64 = 60_000;

    let run_one = |protocol: &str, family: FaultFamily, seed: u64| -> ChaosRunReport {
        let spec = WorkloadSpec {
            think_ns: THINK_NS,
            ..WorkloadFamily::Mixed.spec(PROCESSES, OPS)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ChaosConfig::new(spec.num_objects, seed)
            .with_faults(family.plan(PROCESSES, HORIZON_NS))
            .with_failover_timeouts(15_000, 120_000);
        match protocol {
            "msc" => run_chaos_cluster::<MscOverView>(&config, s),
            _ => run_chaos_cluster::<MlinOverView>(&config, s),
        }
    };

    let mut rows = Vec::new();
    for family in FaultFamily::LEADER_CRASH {
        for protocol in ["msc", "mlin"] {
            let mut failovers = 0u64;
            let mut updates = Vec::new();
            let mut stranded = Vec::new();
            for seed in 0..seeds {
                let report = run_one(protocol, family, seed);
                assert!(
                    report.anomalies.is_clean(),
                    "failover bench run must be masked ({protocol}, {}, seed {seed}): {:?}",
                    family.name(),
                    report.anomalies
                );
                let run_updates: Vec<u64> = report
                    .latencies
                    .iter()
                    .filter(|(class, _)| *class == MOpClass::Update)
                    .map(|&(_, l)| l)
                    .collect();
                updates.extend_from_slice(&run_updates);
                let failed_over = report
                    .view_transcripts
                    .iter()
                    .flatten()
                    .any(|line| line.contains("install v"));
                if failed_over {
                    failovers += 1;
                    if let Some(&worst) = run_updates.iter().max() {
                        stranded.push(worst);
                    }
                }
            }
            assert!(
                failovers > 0,
                "failover bench is vacuous ({protocol}, {}): no seed installed a view",
                family.name()
            );
            updates.sort_unstable();
            stranded.sort_unstable();
            rows.push(FailoverBenchRow {
                plan: family.name().into(),
                protocol: protocol.into(),
                runs: seeds,
                failovers,
                update_p50_ns: percentile(&updates, 50.0),
                update_p99_ns: percentile(&updates, 99.0),
                failover_p50_ns: percentile(&stranded, 50.0),
                failover_p99_ns: percentile(&stranded, 99.0),
            });
        }
    }
    rows
}

/// Renders the failover rows as a printable table.
pub fn failover_bench_table(rows: &[FailoverBenchRow]) -> Table {
    let mut t = Table::new(
        "failover: leader-crash cost under the view-based broadcast (virtual time; latencies in µs)",
        &[
            "plan", "proto", "runs", "failovers", "u p50", "u p99", "fo p50", "fo p99",
        ],
    );
    for r in rows {
        t.row(vec![
            r.plan.clone(),
            r.protocol.clone(),
            r.runs.to_string(),
            r.failovers.to_string(),
            us(r.update_p50_ns as f64),
            us(r.update_p99_ns as f64),
            us(r.failover_p50_ns as f64),
            us(r.failover_p99_ns as f64),
        ]);
    }
    t
}

/// Renders the chaos rows as a printable table.
pub fn chaos_bench_table(rows: &[ChaosBenchRow]) -> Table {
    let mut t = Table::new(
        "chaos: fault-plan cost (virtual time; latencies in µs)",
        &[
            "plan",
            "proto",
            "runs",
            "delivered",
            "dropped",
            "dup'd",
            "retx",
            "dedup",
            "q p50",
            "q p99",
            "u p50",
            "u p99",
        ],
    );
    for r in rows {
        t.row(vec![
            r.plan.clone(),
            r.protocol.clone(),
            r.runs.to_string(),
            r.delivered.to_string(),
            r.dropped.to_string(),
            r.duplicated.to_string(),
            r.retransmitted.to_string(),
            r.dedup_discarded.to_string(),
            us(r.query_p50_ns as f64),
            us(r.query_p99_ns as f64),
            us(r.update_p50_ns as f64),
            us(r.update_p99_ns as f64),
        ]);
    }
    t
}

/// One row of the streaming-sentinel benchmark: a base history tiled
/// `tiles`-fold and replayed through the monitor as a live event stream.
#[derive(Debug, Clone)]
pub struct MonitorBenchRow {
    /// Condition the sentinel decided ("m-SC" / "m-lin").
    pub condition: String,
    /// Base workload shape ("serial" retiring / "writers" non-retiring).
    pub workload: String,
    /// Tile multiplier applied to the base history.
    pub tiles: usize,
    /// m-operations in the tiled stream.
    pub mops: usize,
    /// Events ingested (invocations + completions).
    pub events: u64,
    /// Wall-clock ingest rate, events per second.
    pub ingest_eps: u64,
    /// Median completion-to-verdict latency in virtual stream time (ns).
    pub verdict_p50_ns: u64,
    /// 99th-percentile completion-to-verdict latency (ns).
    pub verdict_p99_ns: u64,
    /// Peak live (unsettled) records the sentinel ever held.
    pub peak_live_nodes: usize,
    /// Window checks performed.
    pub windows_checked: u64,
    /// Rolling certificates emitted.
    pub certs: u64,
    /// Records force-dropped at the live-set cap.
    pub force_dropped: u64,
    /// Whether the sentinel ended the run in degraded mode.
    pub degraded: bool,
}

impl MonitorBenchRow {
    /// The row as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("condition".into(), jstr(self.condition.clone())),
            ("workload".into(), jstr(self.workload.clone())),
            ("tiles".into(), num(self.tiles as i64)),
            ("mops".into(), num(self.mops as i64)),
            ("events".into(), num(self.events as i64)),
            ("ingest_events_per_s".into(), num(self.ingest_eps as i64)),
            (
                "verdict_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.verdict_p50_ns as i64)),
                    ("p99".into(), num(self.verdict_p99_ns as i64)),
                ]),
            ),
            ("peak_live_nodes".into(), num(self.peak_live_nodes as i64)),
            ("windows_checked".into(), num(self.windows_checked as i64)),
            ("certs".into(), num(self.certs as i64)),
            ("force_dropped".into(), num(self.force_dropped as i64)),
            ("degraded".into(), Json::Bool(self.degraded)),
        ])
    }
}

/// E-monitor — what streaming incremental checking costs and holds: the
/// same base history tiled 1×..K× and replayed through the sentinel.
/// Shape to reproduce: under m-lin the serial stream retires at every
/// quiescence point, so `peak_live_nodes` stays FLAT while the stream
/// grows K-fold (sublinear live state — the bounded-memory claim); under
/// m-SC the concurrent-writer tiles never fully retire, so the capped
/// sentinel force-drops and degrades instead of growing without bound.
pub fn experiment_monitor(tile_counts: &[usize]) -> Vec<MonitorBenchRow> {
    use moc_checker::conditions::Condition;
    use moc_monitor::{replay, MonitorConfig, MonitorMode, OnlineMonitor};
    use moc_workload::histories::{serial_history, tile_history, HistorySpec};

    const WINDOW: usize = 4;
    const CAP: usize = 24;

    let spec = HistorySpec {
        processes: 3,
        ops_per_process: 6,
        num_objects: 4,
        update_fraction: 0.6,
        max_span: 2,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let serial = serial_history(&spec, &mut rng);
    let mut rng = StdRng::seed_from_u64(7);
    let writers = concurrent_writers_history(3, 3, &mut rng);

    let mut rows = Vec::new();
    let cases: [(&str, &str, &History, Condition, Option<usize>); 2] = [
        (
            "m-lin",
            "serial",
            &serial,
            Condition::MLinearizability,
            None,
        ),
        (
            "m-SC",
            "writers",
            &writers,
            Condition::MSequentialConsistency,
            Some(CAP),
        ),
    ];
    for (cond_name, wl_name, base, condition, cap) in cases {
        for &tiles in tile_counts {
            let h = tile_history(base, tiles);
            let mut cfg = MonitorConfig::new(condition).with_window(WINDOW);
            if let Some(cap) = cap {
                cfg = cfg.with_max_live_nodes(cap);
            }
            let start = Instant::now();
            let summary = replay(&h, OnlineMonitor::new(h.num_objects(), cfg));
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            let stats = &summary.stats;
            let events = stats.invocations + stats.completions;
            // Completion-to-verdict latency in virtual stream time: each
            // record in a certified window got its verdict when the cert
            // was emitted.
            let mut verdict_ns: Vec<u64> = summary
                .certs
                .iter()
                .flat_map(|rc| {
                    rc.window
                        .records()
                        .iter()
                        .map(|r| rc.emitted_at_ns.saturating_sub(r.responded_at.as_nanos()))
                        .collect::<Vec<_>>()
                })
                .collect();
            verdict_ns.sort_unstable();
            rows.push(MonitorBenchRow {
                condition: cond_name.to_string(),
                workload: wl_name.to_string(),
                tiles,
                mops: h.len(),
                events,
                ingest_eps: (events as f64 / elapsed) as u64,
                verdict_p50_ns: percentile(&verdict_ns, 50.0),
                verdict_p99_ns: percentile(&verdict_ns, 99.0),
                peak_live_nodes: stats.peak_live_nodes,
                windows_checked: stats.windows_checked,
                certs: stats.certs_emitted,
                force_dropped: stats.force_dropped,
                degraded: matches!(summary.mode, MonitorMode::Degraded { .. }),
            });
        }
    }
    rows
}

/// Renders the monitor rows as a comparison table.
pub fn monitor_bench_table(rows: &[MonitorBenchRow]) -> Table {
    let mut t = Table::new(
        "E-monitor — streaming sentinel: live state stays bounded as the stream grows",
        &[
            "condition",
            "workload",
            "tiles",
            "mops",
            "events",
            "ingest ev/s",
            "verdict p50",
            "verdict p99",
            "peak live",
            "checks",
            "certs",
            "dropped",
            "mode",
        ],
    );
    for r in rows {
        t.row(vec![
            r.condition.clone(),
            r.workload.clone(),
            r.tiles.to_string(),
            r.mops.to_string(),
            r.events.to_string(),
            r.ingest_eps.to_string(),
            us(r.verdict_p50_ns as f64),
            us(r.verdict_p99_ns as f64),
            r.peak_live_nodes.to_string(),
            r.windows_checked.to_string(),
            r.certs.to_string(),
            r.force_dropped.to_string(),
            if r.degraded { "DEGRADED" } else { "healthy" }.to_string(),
        ]);
    }
    t
}

/// The parallelism stamp shared by every bench document.
fn bench_cpus() -> i64 {
    std::thread::available_parallelism().map_or(1, |n| n.get()) as i64
}

/// The monitor rows as a machine-readable JSON document
/// (`BENCH_monitor.json`). Version 2 aligned the envelope with
/// `BENCH_checker.json` (`bench`/`version`/`cpus` header).
pub fn monitor_bench_json(rows: &[MonitorBenchRow]) -> String {
    Json::Obj(vec![
        ("bench".into(), jstr("monitor")),
        ("version".into(), num(2)),
        ("cpus".into(), num(bench_cpus())),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        ),
    ])
    .render()
}

/// The chaos and failover rows as a machine-readable JSON document
/// (`BENCH_chaos.json`). Version 2 added `failover_rows`; version 3
/// aligned the envelope with `BENCH_checker.json`
/// (`bench`/`version`/`cpus` header).
pub fn chaos_bench_json(rows: &[ChaosBenchRow], failover: &[FailoverBenchRow]) -> String {
    Json::Obj(vec![
        ("bench".into(), jstr("chaos")),
        ("version".into(), num(3)),
        ("cpus".into(), num(bench_cpus())),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "failover_rows".into(),
            Json::Arr(failover.iter().map(|r| r.to_json()).collect()),
        ),
    ])
    .render()
}

/// How a load-harness client issues its operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Closed loop: the next operation is issued as soon as the pipeline
    /// window admits it (window 1 ⇒ strictly after the previous reply).
    Closed,
    /// Open loop: operations are issued on a fixed schedule, one every
    /// `interval_ns`, regardless of completions — latency then includes
    /// the queueing the offered rate induces. The pipeline window still
    /// bounds in-flight operations; a saturated window blocks the
    /// schedule.
    Open {
        /// Inter-arrival gap per client.
        interval_ns: u64,
    },
}

impl LoadMode {
    fn label(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        }
    }
}

/// One configuration of the end-to-end runtime load harness: a live
/// [`moc_runtime::LiveCluster`] with one client thread per process, all
/// released from a barrier together.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeLoadSpec {
    /// Closed- or open-loop issue discipline.
    pub mode: LoadMode,
    /// Number of processes = number of client threads.
    pub clients: usize,
    /// m-operations each client issues.
    pub ops_per_client: usize,
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Key-popularity profile (seed-deterministic per thread).
    pub skew: moc_workload::skew::KeySkew,
    /// Probability an operation is a single-key write (the rest are
    /// single-key reads, which gate on the process's pending updates).
    pub update_fraction: f64,
    /// Seed for the key and class streams.
    pub seed: u64,
    /// Group-commit batching for the ordering layer; `None` = off.
    pub batching: Option<moc_abcast::BatchConfig>,
    /// Client pipeline window; 1 = blocking (pipelining off).
    pub window: usize,
}

/// One row of `BENCH_runtime.json`: a [`RuntimeLoadSpec`] run to
/// completion, with wall-clock throughput/latency plus the deterministic
/// transport and pipeline counters the CI smoke gate checks.
#[derive(Debug, Clone)]
pub struct RuntimeBenchRow {
    /// `closed` or `open`.
    pub mode: String,
    /// Client thread count.
    pub clients: usize,
    /// Key-skew label (`uniform`, `zipfian`, `normal`).
    pub skew: String,
    /// Whether group-commit batching was on.
    pub batching: bool,
    /// Whether the clients pipelined (window above 1).
    pub pipelining: bool,
    /// Pipeline window used.
    pub window: usize,
    /// Total operations completed.
    pub ops: u64,
    /// Aggregate completed operations per wall-clock second.
    pub qps: u64,
    /// Invoke-to-reply latency percentiles (wall-clock ns).
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Mean items per flushed ordering batch (0 when batching never
    /// flushed).
    pub batch_occupancy: f64,
    /// Deepest replica pipeline observed.
    pub peak_depth: u64,
    /// Completions that overtook invocation order (retired FIFO).
    pub out_of_order: u64,
    /// Replies with no waiting client — must be zero.
    pub dropped_replies: u64,
    /// First-hand link data frames sent cluster-wide.
    pub data_frames: u64,
    /// Link-layer retransmissions cluster-wide.
    pub retransmissions: u64,
}

impl RuntimeBenchRow {
    /// The row as a JSON object (`BENCH_runtime.json` version 1 schema).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mode".into(), jstr(self.mode.clone())),
            ("clients".into(), num(self.clients as i64)),
            ("skew".into(), jstr(self.skew.clone())),
            ("batching".into(), Json::Bool(self.batching)),
            ("pipelining".into(), Json::Bool(self.pipelining)),
            ("window".into(), num(self.window as i64)),
            ("ops".into(), num(self.ops as i64)),
            ("qps".into(), num(self.qps as i64)),
            (
                "latency_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), num(self.p50_ns as i64)),
                    ("p99".into(), num(self.p99_ns as i64)),
                    ("p999".into(), num(self.p999_ns as i64)),
                ]),
            ),
            ("batch_occupancy".into(), Json::Num(self.batch_occupancy)),
            ("peak_depth".into(), num(self.peak_depth as i64)),
            ("out_of_order".into(), num(self.out_of_order as i64)),
            ("dropped_replies".into(), num(self.dropped_replies as i64)),
            ("data_frames".into(), num(self.data_frames as i64)),
            ("retransmissions".into(), num(self.retransmissions as i64)),
        ])
    }
}

/// The consolidated transport/runtime counters of one load run: the
/// cluster-wide reliable-link totals, the merged replica pipeline
/// metrics and the merged group-commit batch statistics. `moc load`
/// prints these as one block so a single command surfaces what the
/// network and the replicas actually did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeCounters {
    /// Field-wise sum of every node's [`moc_abcast::LinkStats`].
    pub link: moc_abcast::LinkStats,
    /// Merged per-replica pipeline metrics (sums; peak depth is a max).
    pub pipeline: moc_runtime::PipelineMetrics,
    /// Merged group-commit batch statistics.
    pub batch: moc_abcast::BatchStats,
}

/// Runs one load-harness configuration against a live
/// [`moc_runtime::LiveCluster`] of the Figure 4 protocol over the
/// sequencer broadcast, and reduces it to a [`RuntimeBenchRow`].
///
/// Every client thread owns one process via a pipelined session, draws
/// its keys from its own seed-deterministic skew stream, and records the
/// true invoke-to-reply time of every operation. The run panics if any
/// invocation goes unanswered — the harness refuses to report a lossy
/// run as a result.
pub fn run_runtime_load(spec: &RuntimeLoadSpec) -> RuntimeBenchRow {
    run_runtime_load_counters(spec).0
}

/// [`run_runtime_load`] plus the full [`RuntimeCounters`] the row
/// condenses — the `moc load` entry point.
pub fn run_runtime_load_counters(spec: &RuntimeLoadSpec) -> (RuntimeBenchRow, RuntimeCounters) {
    use moc_runtime::{LiveCluster, RuntimeConfig};
    use moc_workload::skew::{KeyPicker, SkewRng};
    use moc_workload::{query_program, write_program};
    use std::sync::Barrier;

    assert!(spec.clients > 0 && spec.ops_per_client > 0 && spec.window >= 1);
    let mut cfg = RuntimeConfig::new(spec.num_objects);
    if let Some(batch) = spec.batching {
        cfg = cfg.with_batching(batch);
    }
    let cluster: std::sync::Arc<LiveCluster<MscOverSequencer>> =
        std::sync::Arc::new(LiveCluster::start(spec.clients, cfg));
    // One write and one read program per key, prebuilt so the measured
    // path is the protocol, not program construction.
    let writes: Vec<_> = (0..spec.num_objects)
        .map(|k| write_program(&[ObjectId::new(k as u32)]))
        .collect();
    let reads: Vec<_> = (0..spec.num_objects)
        .map(|k| query_program(&[ObjectId::new(k as u32)]))
        .collect();
    let writes = std::sync::Arc::new(writes);
    let reads = std::sync::Arc::new(reads);
    let barrier = std::sync::Arc::new(Barrier::new(spec.clients + 1));

    let mut joins = Vec::new();
    for t in 0..spec.clients {
        let cluster = std::sync::Arc::clone(&cluster);
        let writes = std::sync::Arc::clone(&writes);
        let reads = std::sync::Arc::clone(&reads);
        let barrier = std::sync::Arc::clone(&barrier);
        let spec = *spec;
        joins.push(std::thread::spawn(move || {
            let mut keys = KeyPicker::new(spec.skew, spec.num_objects, spec.seed, t);
            // The class stream is its own deterministic generator so key
            // and class choices never perturb each other.
            let mut class = SkewRng::new(spec.seed ^ 0xc1a5_55ed ^ ((t as u64) << 17));
            let mut session = cluster.pipelined(ProcessId::new(t as u32), spec.window);
            let mut lat: Vec<u64> = Vec::with_capacity(spec.ops_per_client);
            barrier.wait();
            let start = Instant::now();
            for i in 0..spec.ops_per_client {
                if let LoadMode::Open { interval_ns } = spec.mode {
                    let due = std::time::Duration::from_nanos(interval_ns * i as u64);
                    let elapsed = start.elapsed();
                    if elapsed < due {
                        std::thread::sleep(due - elapsed);
                    }
                }
                let k = keys.next_key() as usize;
                let (program, args) = if class.next_f64() < spec.update_fraction {
                    (writes[k].clone(), vec![i as i64])
                } else {
                    (reads[k].clone(), vec![])
                };
                let retired = session
                    .invoke(program, args)
                    .expect("load harness runs unquarantined");
                if let Some(r) = retired {
                    lat.push(r.responded_at.as_nanos() - r.invoked_at.as_nanos());
                }
            }
            for r in session.drain() {
                lat.push(r.responded_at.as_nanos() - r.invoked_at.as_nanos());
            }
            lat
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut lat: Vec<u64> = Vec::new();
    for j in joins {
        lat.extend(j.join().expect("client thread panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let cluster = std::sync::Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
    let report = cluster.shutdown();

    let total_ops = (spec.clients * spec.ops_per_client) as u64;
    assert_eq!(lat.len() as u64, total_ops, "every invocation replied");
    assert_eq!(report.history.len() as u64, total_ops, "history complete");
    lat.sort_unstable();
    let pipe = report.total_pipeline();
    let link = report.total_link_stats();
    let batch = report.total_batch_stats();
    let row = RuntimeBenchRow {
        mode: spec.mode.label().to_string(),
        clients: spec.clients,
        skew: spec.skew.label().to_string(),
        batching: spec.batching.is_some(),
        pipelining: spec.window > 1,
        window: spec.window,
        ops: total_ops,
        qps: (total_ops as f64 / elapsed) as u64,
        p50_ns: percentile(&lat, 50.0),
        p99_ns: percentile(&lat, 99.0),
        p999_ns: percentile(&lat, 99.9),
        batch_occupancy: batch.occupancy(),
        peak_depth: pipe.peak_depth,
        out_of_order: pipe.out_of_order_completions,
        dropped_replies: pipe.dropped_replies,
        data_frames: link.data_sent,
        retransmissions: link.retransmissions,
    };
    (
        row,
        RuntimeCounters {
            link,
            pipeline: pipe,
            batch,
        },
    )
}

/// Batching profile used by the bench rows: ordering frames group up to
/// 16 submissions, flushing a partial batch after 100µs so a trickling
/// workload is never stalled for long.
pub const BENCH_BATCH: moc_abcast::BatchConfig = moc_abcast::BatchConfig {
    max_batch: 16,
    max_delay_ns: 100_000,
};

/// Pipeline window used by the bench rows.
pub const BENCH_WINDOW: usize = 16;

/// E-runtime — end-to-end throughput of the live cluster under every
/// optimization toggle. Closed-loop rows sweep 1/2/4 clients on uniform
/// and zipfian key skew, with the full batching×pipelining toggle matrix
/// at 4 clients; open-loop rows offer a fixed schedule and report the
/// latency it induces for baseline vs fully optimized. Shape to
/// reproduce: the fully optimized configuration beats the baseline on
/// aggregate closed-loop QPS (pipelining overlaps the ordering round
/// trips; batching amortizes the sequencer's fan-out into multi-item
/// frames).
pub fn experiment_runtime(ops_per_client: usize, seed: u64) -> Vec<RuntimeBenchRow> {
    use moc_workload::skew::KeySkew;
    let skews = [KeySkew::Uniform, KeySkew::Zipfian { theta: 0.99 }];
    let base = RuntimeLoadSpec {
        mode: LoadMode::Closed,
        clients: 4,
        ops_per_client,
        num_objects: 16,
        skew: KeySkew::Uniform,
        update_fraction: 0.9,
        seed,
        batching: None,
        window: 1,
    };
    let toggle = |on: bool, pipelined: bool| {
        (
            if on { Some(BENCH_BATCH) } else { None },
            if pipelined { BENCH_WINDOW } else { 1 },
        )
    };
    let mut rows = Vec::new();
    for skew in skews {
        for clients in [1usize, 2, 4] {
            // Baseline and fully optimized at every scale; the individual
            // toggles at the largest.
            let combos: &[(bool, bool)] = if clients == 4 {
                &[(false, false), (true, false), (false, true), (true, true)]
            } else {
                &[(false, false), (true, true)]
            };
            for &(batch_on, pipe_on) in combos {
                let (batching, window) = toggle(batch_on, pipe_on);
                rows.push(run_runtime_load(&RuntimeLoadSpec {
                    mode: LoadMode::Closed,
                    clients,
                    skew,
                    batching,
                    window,
                    ..base
                }));
            }
            // Open loop: a 10k ops/s-per-client schedule, baseline vs
            // optimized.
            for &(batch_on, pipe_on) in &[(false, false), (true, true)] {
                let (batching, window) = toggle(batch_on, pipe_on);
                rows.push(run_runtime_load(&RuntimeLoadSpec {
                    mode: LoadMode::Open {
                        interval_ns: 100_000,
                    },
                    clients,
                    skew,
                    batching,
                    window,
                    ..base
                }));
            }
        }
    }
    rows
}

/// The closed-loop aggregate-QPS speedup of the fully optimized
/// configuration over the baseline at the largest client count, per
/// skew profile — the headline number of the runtime bench.
pub fn runtime_optimized_speedups(rows: &[RuntimeBenchRow]) -> Vec<(String, f64)> {
    let max_clients = rows
        .iter()
        .filter(|r| r.mode == "closed")
        .map(|r| r.clients)
        .max()
        .unwrap_or(0);
    let mut out = Vec::new();
    let skews: Vec<String> = {
        let mut s: Vec<String> = rows.iter().map(|r| r.skew.clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    for skew in skews {
        let find = |batching: bool, pipelining: bool| {
            rows.iter().find(|r| {
                r.mode == "closed"
                    && r.clients == max_clients
                    && r.skew == skew
                    && r.batching == batching
                    && r.pipelining == pipelining
            })
        };
        if let (Some(base), Some(opt)) = (find(false, false), find(true, true)) {
            out.push((skew.clone(), opt.qps as f64 / base.qps.max(1) as f64));
        }
    }
    out
}

/// Renders the runtime rows as a comparison table.
pub fn runtime_bench_table(rows: &[RuntimeBenchRow]) -> Table {
    let mut t = Table::new(
        "E-runtime — live-cluster load: batched stamping and pipelined clients vs the baseline",
        &[
            "mode",
            "clients",
            "skew",
            "batch",
            "pipe",
            "ops",
            "qps",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "occupancy",
            "depth",
            "ooo",
            "rexmit",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mode.clone(),
            r.clients.to_string(),
            r.skew.clone(),
            if r.batching { "on" } else { "off" }.into(),
            if r.pipelining {
                format!("w{}", r.window)
            } else {
                "off".into()
            },
            r.ops.to_string(),
            r.qps.to_string(),
            us(r.p50_ns as f64),
            us(r.p99_ns as f64),
            us(r.p999_ns as f64),
            format!("{:.1}", r.batch_occupancy),
            r.peak_depth.to_string(),
            r.out_of_order.to_string(),
            r.retransmissions.to_string(),
        ]);
    }
    t
}

/// The runtime rows as the `BENCH_runtime.json` version 1 document,
/// stamped — like every bench document — with the schema version and the
/// parallelism the machine offered.
pub fn runtime_bench_json(rows: &[RuntimeBenchRow]) -> String {
    let mut fields = vec![
        ("bench".into(), jstr("runtime")),
        ("version".into(), num(1)),
        ("cpus".into(), num(bench_cpus())),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        ),
    ];
    let speedups = runtime_optimized_speedups(rows);
    if !speedups.is_empty() {
        fields.push((
            "headline".into(),
            Json::Obj(
                speedups
                    .into_iter()
                    .map(|(skew, s)| (format!("qps_speedup_{skew}"), Json::Num(s)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields).render()
}

/// CI perf-smoke gate for the runtime: three bounded configurations whose
/// *deterministic* counters must hold — the batched+pipelined row must
/// group-commit (occupancy above one), every pipelined row must actually
/// overlap operations (peak depth above one), and no configuration may
/// drop a reply. Wall-clock numbers are reported but never gated.
pub fn runtime_smoke() -> Result<Vec<RuntimeBenchRow>, String> {
    use moc_workload::skew::KeySkew;
    let base = RuntimeLoadSpec {
        mode: LoadMode::Closed,
        clients: 2,
        ops_per_client: 40,
        num_objects: 16,
        skew: KeySkew::Zipfian { theta: 0.99 },
        update_fraction: 0.9,
        seed: 42,
        batching: None,
        window: 1,
    };
    let rows = vec![
        run_runtime_load(&base),
        run_runtime_load(&RuntimeLoadSpec {
            skew: KeySkew::Uniform,
            window: 8,
            ..base
        }),
        run_runtime_load(&RuntimeLoadSpec {
            clients: 1,
            // The window bounds in-flight submissions, so a batch
            // threshold equal to the window flushes the moment the full
            // burst lands; the long delay cap only covers stragglers.
            batching: Some(moc_abcast::BatchConfig {
                max_batch: 8,
                max_delay_ns: 50_000_000,
            }),
            window: 8,
            ..base
        }),
    ];
    let mut failures = Vec::new();
    for r in &rows {
        if r.dropped_replies != 0 {
            failures.push(format!(
                "{}/{}c/batch={} dropped {} replies",
                r.mode, r.clients, r.batching, r.dropped_replies
            ));
        }
        if r.pipelining && r.peak_depth <= 1 {
            failures.push(format!(
                "{}/{}c window {} never overlapped (peak depth {})",
                r.mode, r.clients, r.window, r.peak_depth
            ));
        }
        if r.batching && r.batch_occupancy <= 1.0 {
            failures.push(format!(
                "{}/{}c batching never grouped (occupancy {:.2})",
                r.mode, r.clients, r.batch_occupancy
            ));
        }
    }
    if !rows.iter().any(|r| r.batching) || !rows.iter().any(|r| r.pipelining) {
        failures.push("smoke matrix must cover batching and pipelining".into());
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("a  bb"));
    }

    #[test]
    fn small_experiments_run() {
        let t = experiment_query_cost(&[2], 3, 1);
        assert_eq!(t.rows.len(), 3);
        let t = experiment_checker_scaling(&[2, 3]);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_query_scope(&[4], 1);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_validation(1);
        assert!(t.rows.iter().all(|r| r[3] == "PASS"));
        let t = experiment_memo_ablation(&[2, 3]);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_condition_spectrum(2);
        assert_eq!(t.rows.len(), 2);
        let t = experiment_model_checking();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][3], "0");
        assert_ne!(t.rows[1][3], "0");
        assert_eq!(t.rows[2][3], "0");
    }

    #[test]
    fn monitor_bench_live_state_is_sublinear_and_capped() {
        let rows = experiment_monitor(&[1, 4, 8]);
        assert_eq!(rows.len(), 6, "2 cases × 3 tile counts");
        let mlin: Vec<_> = rows.iter().filter(|r| r.condition == "m-lin").collect();
        let msc: Vec<_> = rows.iter().filter(|r| r.condition == "m-SC").collect();
        // The retiring stream's live state must not scale with the
        // stream: 8× the m-operations, same peak (sublinear by a wide
        // margin — this is the bounded-memory claim).
        assert_eq!(mlin[2].mops, 8 * mlin[0].mops, "tiling scales the stream");
        assert!(
            mlin[2].peak_live_nodes <= 2 * mlin[0].peak_live_nodes,
            "peak grew with the stream: {} tiles at peak {} vs 1 tile at {}",
            mlin[2].tiles,
            mlin[2].peak_live_nodes,
            mlin[0].peak_live_nodes
        );
        for r in &mlin {
            assert!(!r.degraded, "retiring stream should stay healthy");
            assert!(r.certs > 0, "no rolling certs emitted");
        }
        // The non-retiring stream must hit the cap and degrade, never
        // exceed it.
        for r in &msc {
            assert!(
                r.peak_live_nodes <= 24,
                "cap breached: {}",
                r.peak_live_nodes
            );
        }
        assert!(
            msc.iter().any(|r| r.degraded && r.force_dropped > 0),
            "the capped non-retiring stream never degraded"
        );
        let doc = monitor_bench_json(&rows);
        assert!(doc.contains("\"bench\": \"monitor\"") || doc.contains("\"bench\":\"monitor\""));
        let s = monitor_bench_table(&rows).to_string();
        assert!(s.contains("E-monitor"));
    }

    #[test]
    fn failover_bench_measures_real_view_changes() {
        let rows = experiment_failover(8);
        assert_eq!(rows.len(), 6, "3 leader-crash families × 2 protocols");
        for r in &rows {
            assert!(r.failovers > 0, "{}/{}: vacuous", r.plan, r.protocol);
            assert!(
                r.failover_p50_ns >= r.update_p50_ns,
                "{}/{}: the stranded op cannot be faster than the median",
                r.plan,
                r.protocol
            );
        }
        let doc = chaos_bench_json(&[], &rows);
        assert!(doc.contains("\"failover_rows\""), "{doc}");
        assert!(
            doc.contains("\"version\": 3") || doc.contains("\"version\":3"),
            "{doc}"
        );
    }

    /// Every bench document shares the `bench`/`version`/`cpus`/`rows`
    /// envelope, so downstream tooling can dispatch on one schema.
    #[test]
    fn bench_json_envelopes_share_schema() {
        let docs = [
            ("checker", checker_bench_json(&[])),
            ("chaos", chaos_bench_json(&[], &[])),
            ("monitor", monitor_bench_json(&[])),
            ("runtime", runtime_bench_json(&[])),
        ];
        for (name, doc) in docs {
            let d = moc_core::json::parse(&doc).expect(name);
            assert_eq!(d.get("bench").and_then(Json::as_str), Some(name));
            assert!(
                d.get("version").and_then(Json::as_u64).unwrap_or(0) >= 1,
                "{name}: missing version"
            );
            assert!(
                d.get("cpus").and_then(Json::as_u64).unwrap_or(0) >= 1,
                "{name}: missing cpus"
            );
            assert!(
                d.get("rows").and_then(Json::as_arr).is_some(),
                "{name}: missing rows"
            );
        }
    }

    /// The runtime load harness end to end, via the CI smoke gate: the
    /// deterministic counters (group-commit occupancy, pipeline depth,
    /// zero dropped replies) must hold on a bounded run.
    #[test]
    fn runtime_smoke_gate_passes() {
        let rows = runtime_smoke().expect("runtime smoke counters hold");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.ops == r.clients as u64 * 40));
        let doc = moc_core::json::parse(&runtime_bench_json(&rows)).unwrap();
        assert_eq!(
            doc.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        let first = &doc.get("rows").and_then(Json::as_arr).unwrap()[0];
        assert!(first
            .get("latency_ns")
            .and_then(|l| l.get("p999"))
            .is_some());
        assert!(first.get("qps").is_some());
    }

    #[test]
    fn certified_checker_bench_shows_component_speedup() {
        let rows = experiment_certified_checker(20_000_000);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert_ne!(r.verdict, "budget", "{}: pruned must complete", r.family);
            if let Some((_, naive_nodes)) = r.naive {
                assert!(
                    r.pruned_nodes <= naive_nodes,
                    "{}: pruning never explores more",
                    r.family
                );
            }
            assert_eq!(
                r.parallel.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                BENCH_THREAD_COUNTS.to_vec(),
                "{}: every thread count is timed",
                r.family
            );
        }
        // The multi-component separation the family was built for.
        let torn3 = rows.iter().find(|r| r.family == "torn-3x3").unwrap();
        assert_eq!(torn3.verdict, "inadmissible");
        assert!(torn3.components >= 3);
        assert!(
            torn3.node_speedup.unwrap() >= 10.0,
            "naive explores the product of component spaces: {:.1}x",
            torn3.node_speedup.unwrap()
        );
        // The ≥4x4 families: naive blows its budget, the pruned engine
        // completes with a verdict.
        for family in ["torn-4x4", "shred-4x5", "shred-4x6"] {
            let r = rows.iter().find(|r| r.family == family).unwrap();
            assert!(r.naive.is_none(), "{family}: naive must exceed its budget");
            assert_eq!(r.verdict, "inadmissible", "{family}");
            assert!(r.node_speedup.is_none(), "{family}: speedup only bounded");
        }
        // The poisoned family is refuted statically — zero search nodes.
        let poisoned = rows.iter().find(|r| r.family == "poisoned-2x3").unwrap();
        assert_eq!(poisoned.verdict, "inadmissible");
        assert_eq!(poisoned.pruned_nodes, 0);
        assert!(poisoned.forced_edges > 0);
        // The symmetry ablation: verdict-preserving by construction, and
        // at least one torn/shred family must show a measured node-count
        // reduction over the symmetry-off engine.
        assert!(
            rows.iter()
                .filter(|r| r.family.starts_with("torn-") || r.family.starts_with("shred-"))
                .any(|r| r.symmetry_skips > 0 && r.nosym_nodes > r.pruned_nodes),
            "no torn/shred family shows a symmetry node reduction"
        );
        // The synthesized stress rows behave like their pinned bases:
        // the cycle tile is refuted statically (zero search nodes, the
        // zero-search parallel base), the lbi tile stays inadmissible by
        // exhaustion, and the peak tile stays admissible.
        let cycle = rows.iter().find(|r| r.family == "synth-cycle0-x4").unwrap();
        assert_eq!(cycle.verdict, "inadmissible");
        assert_eq!(cycle.pruned_nodes, 0);
        assert!(cycle.forced_edges > 0);
        let lbi = rows.iter().find(|r| r.family == "synth-lbi0-x4").unwrap();
        assert_eq!(lbi.verdict, "inadmissible");
        assert!(lbi.pruned_nodes > 0);
        let peak = rows.iter().find(|r| r.family == "synth-peak0-x4").unwrap();
        assert_eq!(peak.verdict, "admissible");
        assert!(peak.components >= 4, "tiling multiplies components");

        // The JSON document round-trips and carries the v4 fields.
        let doc = moc_core::json::parse(&checker_bench_json(&rows)).unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("checker"));
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(4));
        assert!(doc.get("cpus").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(
            doc.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(12)
        );
        assert!(doc.get("headline").is_some());
        let first = &doc.get("rows").and_then(Json::as_arr).unwrap()[0];
        assert!(first.get("fast").is_some(), "explicit fast cell");
        assert!(first.get("parallel").is_some(), "parallel timings");
        let pruned = first.get("pruned").unwrap();
        assert!(pruned.get("memo_hits").is_some());
        assert!(pruned.get("memo_peak").is_some());
        let symmetry = first.get("symmetry").expect("symmetry ablation object");
        assert!(symmetry.get("skips").is_some());
        assert!(symmetry.get("nodes_without").is_some());
        assert!(symmetry.get("node_reduction").is_some());
        // The torn families mark the fast path inapplicable explicitly.
        let torn_json = doc
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .find(|r| r.get("family").and_then(Json::as_str) == Some("torn-3x3"))
            .unwrap();
        assert_eq!(torn_json.get("fast").and_then(Json::as_str), Some("n/a"));
        assert!(
            torn_json
                .get("naive")
                .and_then(|n| n.get("nodes"))
                .is_some(),
            "torn-3x3's naive search completes under the default budget"
        );
    }

    #[test]
    fn checker_smoke_gate_passes_on_golden_caps() {
        let rows = checker_smoke().expect("golden caps hold");
        assert_eq!(rows.len(), CHECKER_NODE_CAPS.len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[ignore = "sizing probe, run manually"]
    fn probe_shred_sizes() {
        use moc_checker::find_legal_extension_pruned;
        let time_best = |f: &dyn Fn() -> (bool, u64)| {
            let mut best = f64::INFINITY;
            let mut last = (false, 0);
            for _ in 0..5 {
                let start = Instant::now();
                last = f();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
            }
            (best, last)
        };
        let mut cases: Vec<(String, History)> = Vec::new();
        for &(c, k) in &[(4usize, 4usize), (4, 5), (4, 6)] {
            cases.push((format!("shred-{c}x{k}"), shredded_multi_component(c, k, 7)));
        }
        for &k in &[7usize, 8] {
            cases.push((format!("knot-1x{k}"), shredded_multi_component(1, k, 7)));
        }
        let mut rng = StdRng::seed_from_u64(42);
        for &(c, k) in &[(4usize, 6usize), (4, 7)] {
            cases.push((
                format!("multi-{c}x{k}"),
                multi_component_history(c, k, 2, &mut rng),
            ));
        }
        cases.push(("torn-4x4".into(), torn_multi_component(4, 4, 7)));
        for (name, h) in cases {
            let rel = process_order(&h).union(&reads_from(&h));
            let limits = SearchLimits::with_max_nodes(50_000_000);
            let (ms, (adm, nodes)) = time_best(&|| {
                let (out, stats) = find_legal_extension_pruned(&h, &rel, limits);
                (out.is_admissible(), stats.nodes)
            });
            println!("{name}: t1 {ms:.3} ms, nodes {nodes}, admissible {adm}");
            for threads in [2usize, 4, 8] {
                let limits = SearchLimits::with_max_nodes(50_000_000).with_threads(threads);
                let (ms_t, (adm_t, nodes_t)) = time_best(&|| {
                    let (out, stats) = find_legal_extension_pruned(&h, &rel, limits);
                    (out.is_admissible(), stats.nodes)
                });
                println!("  t{threads}: {ms_t:.3} ms");
                assert_eq!((adm_t, nodes_t), (adm, nodes), "{name} t{threads}");
            }
            let nlimits = SearchLimits::with_max_nodes(2_000_000);
            let (nms, (nadm, nnodes)) = time_best(&|| {
                let (out, stats) = moc_checker::find_legal_extension(&h, &rel, nlimits);
                (out.is_admissible(), stats.nodes)
            });
            println!("  naive: {nms:.3} ms, nodes {nnodes}, admissible {nadm}");
        }
    }
}
