//! `cargo run -p moc-bench --bin bench_monitor --release`
//!
//! Measures the streaming consistency sentinel: wall-clock ingest
//! throughput, completion-to-verdict latency percentiles (virtual stream
//! time) and — the bounded-memory claim — peak live records versus stream
//! length as the same base history is tiled 1×..32×. Under m-lin the
//! retiring serial stream keeps the peak flat; under m-SC the
//! non-retiring concurrent-writer stream presses on the live-node cap and
//! the sentinel degrades instead of growing. Prints the comparison table
//! and writes the machine-readable results to `BENCH_monitor.json` at the
//! repository root.

use moc_bench::{experiment_monitor, monitor_bench_json, monitor_bench_table};

fn main() {
    let rows = experiment_monitor(&[1, 2, 4, 8, 16, 32]);
    println!("{}", monitor_bench_table(&rows));

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_monitor.json");
    let doc = monitor_bench_json(&rows) + "\n";
    std::fs::write(out, doc).expect("write BENCH_monitor.json");
    println!("wrote {out}");
}
