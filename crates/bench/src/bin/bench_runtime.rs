//! `cargo run -p moc-bench --bin bench_runtime --release`
//!
//! End-to-end throughput of the live thread runtime: N client threads
//! released from a barrier drive a [`moc_runtime::LiveCluster`] in
//! closed- and open-loop modes with seed-deterministic uniform/zipfian
//! key skew, for every batching/pipelining toggle combination. Prints the
//! comparison table, the headline closed-loop QPS speedups of the fully
//! optimized configuration, and writes the machine-readable results to
//! `BENCH_runtime.json` at the repository root.
//!
//! `--smoke` runs the bounded CI gate instead: three configurations whose
//! deterministic counters (group-commit occupancy, pipeline depth, zero
//! dropped replies) must hold; wall-clock numbers are printed but not
//! gated, and no JSON is written. Exits nonzero on a gate failure.

use moc_bench::{
    experiment_runtime, runtime_bench_json, runtime_bench_table, runtime_optimized_speedups,
    runtime_smoke,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        match runtime_smoke() {
            Ok(rows) => {
                println!("{}", runtime_bench_table(&rows));
                println!("runtime smoke gate: PASS");
            }
            Err(failures) => {
                eprintln!("runtime smoke gate: FAIL\n{failures}");
                std::process::exit(1);
            }
        }
        return;
    }

    let rows = experiment_runtime(100, 42);
    println!("{}", runtime_bench_table(&rows));
    for (skew, speedup) in runtime_optimized_speedups(&rows) {
        println!("closed-loop qps speedup, optimized vs baseline ({skew}): {speedup:.2}x");
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let doc = runtime_bench_json(&rows) + "\n";
    std::fs::write(out, doc).expect("write BENCH_runtime.json");
    println!("wrote {out}");
}
