//! `cargo run -p moc-bench --bin bench_chaos --release`
//!
//! Measures what the canned fault plans cost the protocol stack: message
//! traffic (delivered / dropped / duplicated / retransmitted) and
//! response-time percentiles under `none`, `lossy-dup` and `storm`, plus
//! the failover latency a leader crash costs under the view-based atomic
//! broadcast. Prints the comparison tables and writes the
//! machine-readable results to `BENCH_chaos.json` at the repository
//! root.

use moc_bench::{
    chaos_bench_json, chaos_bench_table, experiment_chaos, experiment_failover,
    failover_bench_table,
};

fn main() {
    let rows = experiment_chaos(30);
    println!("{}", chaos_bench_table(&rows));
    let failover = experiment_failover(30);
    println!("{}", failover_bench_table(&failover));

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    let doc = chaos_bench_json(&rows, &failover) + "\n";
    std::fs::write(out, doc).expect("write BENCH_chaos.json");
    println!("wrote {out}");
}
