//! `cargo run -p moc-bench --bin bench_checker --release`
//!
//! Times the naive admissibility search against the precedence-pruned
//! search and the Theorem 7 fast path on the generator families, prints
//! the comparison table and writes the machine-readable results to
//! `BENCH_checker.json` at the repository root.

use moc_bench::{checker_bench_json, checker_bench_table, experiment_certified_checker};

fn main() {
    let rows = experiment_certified_checker(20_000_000);
    println!("{}", checker_bench_table(&rows));

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checker.json");
    let doc = checker_bench_json(&rows) + "\n";
    std::fs::write(out, doc).expect("write BENCH_checker.json");
    println!("wrote {out}");
}
