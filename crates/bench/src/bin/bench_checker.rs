//! `cargo run -p moc-bench --bin bench_checker --release`
//!
//! Times the naive admissibility search against the parallel precedence-
//! pruned engine (1/2/4/8 threads) and the Theorem 7 fast path on the
//! generator families, prints the comparison table and writes the
//! machine-readable results to `BENCH_checker.json` at the repository
//! root.
//!
//! `--smoke` instead runs the CI perf gate: the same families under a
//! small naive budget, with every family's deterministic pruned node
//! count checked against its golden cap (`CHECKER_NODE_CAPS`) and
//! thread-count determinism re-asserted. Exits non-zero on regression and
//! writes nothing.

use moc_bench::{
    checker_bench_json, checker_bench_table, checker_smoke, experiment_certified_checker,
};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        match checker_smoke() {
            Ok(rows) => {
                println!("{}", checker_bench_table(&rows));
                println!("perf smoke PASS: all pruned node counts within golden caps");
            }
            Err(failures) => {
                eprintln!("perf smoke FAIL:\n{failures}");
                std::process::exit(1);
            }
        }
        return;
    }

    let rows = experiment_certified_checker(20_000_000);
    println!("{}", checker_bench_table(&rows));

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checker.json");
    let doc = checker_bench_json(&rows) + "\n";
    std::fs::write(out, doc).expect("write BENCH_checker.json");
    println!("wrote {out}");
}
