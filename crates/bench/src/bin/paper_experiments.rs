//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p moc-bench --bin paper_experiments`
//!
//! Pass `--quick` for a reduced parameter grid (used in CI and smoke runs).

use moc_bench::{
    experiment_abcast, experiment_baseline, experiment_checker_scaling,
    experiment_condition_spectrum, experiment_fast_vs_brute, experiment_memo_ablation,
    experiment_model_checking, experiment_query_cost, experiment_query_scope,
    experiment_validation,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = 20260706;

    println!("multiobj paper experiments (Mittal & Garg 1998)");
    println!("================================================\n");

    if quick {
        println!("{}", experiment_validation(seed));
        println!("{}", experiment_query_cost(&[2, 4], 8, seed));
        println!("{}", experiment_baseline(&[0.1, 0.9], 8, seed));
        println!("{}", experiment_checker_scaling(&[2, 4, 6]));
        println!("{}", experiment_fast_vs_brute(&[4, 8], seed));
        println!("{}", experiment_query_scope(&[4, 16], seed));
        println!("{}", experiment_abcast(&[2, 4], 8, seed));
        println!("{}", experiment_memo_ablation(&[2, 4, 6]));
        println!("{}", experiment_condition_spectrum(5));
        println!("{}", experiment_model_checking());
    } else {
        println!("{}", experiment_validation(seed));
        println!("{}", experiment_query_cost(&[2, 4, 8, 16], 15, seed));
        println!(
            "{}",
            experiment_baseline(&[0.1, 0.3, 0.5, 0.7, 0.9], 15, seed)
        );
        println!("{}", experiment_checker_scaling(&[2, 4, 6, 8, 9]));
        println!("{}", experiment_fast_vs_brute(&[5, 10, 20, 40], seed));
        println!("{}", experiment_query_scope(&[4, 8, 16, 32, 64], seed));
        println!("{}", experiment_abcast(&[2, 4, 8, 16], 15, seed));
        println!("{}", experiment_memo_ablation(&[2, 4, 6, 8]));
        println!("{}", experiment_condition_spectrum(20));
        println!("{}", experiment_model_checking());
    }
}
