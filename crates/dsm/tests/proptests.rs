//! Model-based property tests for the DSM API: on a single process the DSM
//! must behave exactly like a plain sequential store (linearizability
//! degenerates to sequential execution); on multiple processes every
//! recorded execution must satisfy the configured condition.

use moc_core::ids::{ObjectId, ProcessId};
use moc_dsm::{Consistency, Dsm, DsmBuilder};
use proptest::prelude::*;

const OBJECTS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, i64),
    Read(u8),
    Cas(u8, i64, i64),
    FetchAdd(u8, i64),
    Dcas(u8, u8, i64, i64, i64, i64),
    Kcas3(i64, i64, i64, i64, i64, i64),
    Snapshot,
    Sum,
    Swap(u8, u8),
    Transfer(u8, u8, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let o = 0u8..OBJECTS as u8;
    let v = -20i64..20;
    prop_oneof![
        (o.clone(), v.clone()).prop_map(|(a, x)| Op::Write(a, x)),
        o.clone().prop_map(Op::Read),
        (o.clone(), v.clone(), v.clone()).prop_map(|(a, x, y)| Op::Cas(a, x, y)),
        (o.clone(), v.clone()).prop_map(|(a, x)| Op::FetchAdd(a, x)),
        (
            o.clone(),
            o.clone(),
            v.clone(),
            v.clone(),
            v.clone(),
            v.clone()
        )
            .prop_map(|(a, b, x, y, z, w)| Op::Dcas(a, b, x, y, z, w)),
        (
            v.clone(),
            v.clone(),
            v.clone(),
            v.clone(),
            v.clone(),
            v.clone()
        )
            .prop_map(|(a, b, c, d, e, f)| Op::Kcas3(a, b, c, d, e, f)),
        Just(Op::Snapshot),
        Just(Op::Sum),
        (o.clone(), o.clone()).prop_map(|(a, b)| Op::Swap(a, b)),
        (o.clone(), o, 0i64..30).prop_map(|(a, b, x)| Op::Transfer(a, b, x)),
    ]
}

/// The sequential reference model.
#[derive(Debug, Default)]
struct Model {
    vals: [i64; OBJECTS],
}

impl Model {
    fn apply(&mut self, op: &Op) -> Vec<i64> {
        let g = |m: &Model, i: u8| m.vals[i as usize];
        match *op {
            Op::Write(a, x) => {
                self.vals[a as usize] = x;
                vec![]
            }
            Op::Read(a) => vec![g(self, a)],
            Op::Cas(a, old, new) => {
                let seen = g(self, a);
                if seen == old {
                    self.vals[a as usize] = new;
                    vec![1, seen]
                } else {
                    vec![0, seen]
                }
            }
            Op::FetchAdd(a, d) => {
                let old = g(self, a);
                self.vals[a as usize] = old.wrapping_add(d);
                vec![old]
            }
            Op::Dcas(a, b, oa, ob, na, nb) => {
                if a == b {
                    // The DSM's dcas on identical objects degenerates; the
                    // strategy filters this case out instead.
                    unreachable!("strategy never emits a == b");
                }
                if g(self, a) == oa && g(self, b) == ob {
                    self.vals[a as usize] = na;
                    self.vals[b as usize] = nb;
                    vec![1]
                } else {
                    vec![0]
                }
            }
            Op::Kcas3(o0, o1, o2, n0, n1, n2) => {
                if self.vals == [o0, o1, o2] {
                    self.vals = [n0, n1, n2];
                    vec![1]
                } else {
                    vec![0]
                }
            }
            Op::Snapshot => self.vals.to_vec(),
            Op::Sum => vec![self.vals.iter().sum()],
            Op::Swap(a, b) => {
                self.vals.swap(a as usize, b as usize);
                vec![]
            }
            Op::Transfer(a, b, amt) => {
                if a != b && g(self, a) >= amt {
                    self.vals[a as usize] -= amt;
                    self.vals[b as usize] += amt;
                    vec![1]
                } else if a == b {
                    unreachable!("strategy never emits a == b");
                } else {
                    vec![0]
                }
            }
        }
    }
}

fn apply_dsm(dsm: &Dsm, p: ProcessId, op: &Op) -> Vec<i64> {
    let o = |i: u8| ObjectId::new(i as u32);
    let all = [o(0), o(1), o(2)];
    match *op {
        Op::Write(a, x) => {
            dsm.write(p, o(a), x);
            vec![]
        }
        Op::Read(a) => vec![dsm.read(p, o(a))],
        Op::Cas(a, old, new) => {
            let (ok, seen) = dsm.cas(p, o(a), old, new);
            vec![ok as i64, seen]
        }
        Op::FetchAdd(a, d) => vec![dsm.fetch_add(p, o(a), d)],
        Op::Dcas(a, b, oa, ob, na, nb) => {
            vec![dsm.dcas(p, (o(a), oa, na), (o(b), ob, nb)) as i64]
        }
        Op::Kcas3(o0, o1, o2, n0, n1, n2) => {
            vec![dsm.kcas(p, &[(o(0), o0, n0), (o(1), o1, n1), (o(2), o2, n2)]) as i64]
        }
        Op::Snapshot => dsm.snapshot(p, &all),
        Op::Sum => vec![dsm.sum(p, &all)],
        Op::Swap(a, b) => {
            dsm.swap_objects(p, o(a), o(b));
            vec![]
        }
        Op::Transfer(a, b, amt) => vec![dsm.transfer(p, o(a), o(b), amt) as i64],
    }
}

fn distinct_pair(op: &Op) -> bool {
    match *op {
        Op::Dcas(a, b, ..) | Op::Swap(a, b) | Op::Transfer(a, b, _) => a != b,
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-process clusters match the sequential model exactly, for
    /// every protocol.
    #[test]
    fn single_process_matches_sequential_model(
        ops in proptest::collection::vec(op_strategy().prop_filter("distinct", distinct_pair), 1..15),
        which in 0u8..3,
    ) {
        let consistency = match which {
            0 => Consistency::MSequential,
            1 => Consistency::MLinearizable,
            _ => Consistency::Aggregate,
        };
        let dsm = DsmBuilder::new()
            .processes(1)
            .objects(OBJECTS)
            .consistency(consistency)
            .build();
        let mut model = Model::default();
        let p = ProcessId::new(0);
        for op in &ops {
            let expected = model.apply(op);
            let got = apply_dsm(&dsm, p, op);
            prop_assert_eq!(&got, &expected, "op {:?} diverged", op);
        }
        let report = dsm.finish();
        prop_assert!(report.check(consistency.guaranteed_condition()).satisfied);
    }

    /// Multi-process random operations: the recorded execution satisfies
    /// the configured condition.
    #[test]
    fn multi_process_history_satisfies_condition(
        per_proc in proptest::collection::vec(
            proptest::collection::vec(
                op_strategy().prop_filter("distinct", distinct_pair), 1..5),
            2..4),
        linearizable in any::<bool>(),
    ) {
        let consistency = if linearizable {
            Consistency::MLinearizable
        } else {
            Consistency::MSequential
        };
        let dsm = std::sync::Arc::new(
            DsmBuilder::new()
                .processes(per_proc.len())
                .objects(OBJECTS)
                .consistency(consistency)
                .build(),
        );
        let mut joins = Vec::new();
        for (p, ops) in per_proc.into_iter().enumerate() {
            let dsm = std::sync::Arc::clone(&dsm);
            joins.push(std::thread::spawn(move || {
                let me = ProcessId::new(p as u32);
                for op in &ops {
                    apply_dsm(&dsm, me, op);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let dsm = std::sync::Arc::try_unwrap(dsm)
            .unwrap_or_else(|_| panic!("threads done"));
        let report = dsm.finish();
        let verdict = report.check(consistency.guaranteed_condition());
        prop_assert!(verdict.satisfied, "{:?}", verdict.reason);
    }
}
