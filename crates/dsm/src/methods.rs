//! The multi-method library: canned m-operation [`Program`]s for the
//! operations the paper motivates — DCAS, atomic m-register assignment,
//! multi-object snapshots and sums, and conditional transfers — plus the
//! usual single-object read-modify-write primitives.
//!
//! Every constructor returns an `Arc<Program>` ready to pass to
//! [`crate::Dsm::invoke`] or a protocol harness. All programs are
//! deterministic, loop-free and validated.

use std::sync::Arc;

use moc_core::ids::ObjectId;
use moc_core::program::{arg, imm, reg, BinaryOp, CmpOp, Program, ProgramBuilder};

/// Atomically reads `objects`, returning their values in order — a
/// consistent multi-object snapshot.
pub fn read_many(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("read{}", objects.len()));
    for (i, &o) in objects.iter().enumerate() {
        b.read(o, i as u8);
    }
    b.ret((0..objects.len()).map(|i| reg(i as u8)).collect());
    Arc::new(b.build().expect("read_many is well-formed"))
}

/// Atomic m-register assignment: writes argument `i` to `objects[i]`, all
/// atomically (Section 1's `m-register assignment`).
pub fn m_assign(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("massign{}", objects.len()));
    for (i, &o) in objects.iter().enumerate() {
        b.write(o, arg(i as u8));
    }
    b.ret(vec![]);
    Arc::new(b.build().expect("m_assign is well-formed"))
}

/// Double compare-and-swap on `x` and `y` (Section 1's DCAS):
/// `args = [old_x, old_y, new_x, new_y]`; returns `[1]` on success, `[0]`
/// otherwise.
pub fn dcas(x: ObjectId, y: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("dcas");
    let fail = b.fresh_label();
    b.read(x, 0)
        .read(y, 1)
        .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
        .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
        .write(x, arg(2))
        .write(y, arg(3))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("dcas is well-formed"))
}

/// Single-object compare-and-swap: `args = [old, new]`; returns
/// `[success, observed]`.
pub fn cas(object: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("cas");
    let fail = b.fresh_label();
    b.read(object, 0)
        .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
        .write(object, arg(1))
        .ret(vec![imm(1), reg(0)]);
    b.bind(fail);
    b.ret(vec![imm(0), reg(0)]);
    Arc::new(b.build().expect("cas is well-formed"))
}

/// Fetch-and-add: `args = [delta]`; returns `[previous]`.
pub fn fetch_add(object: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("fetch_add");
    b.read(object, 0)
        .add(1, reg(0), arg(0))
        .write(object, reg(1))
        .ret(vec![reg(0)]);
    Arc::new(b.build().expect("fetch_add is well-formed"))
}

/// Test-and-set: sets the object to 1, returning `[previous]`.
pub fn test_and_set(object: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("test_and_set");
    b.read(object, 0).write(object, imm(1)).ret(vec![reg(0)]);
    Arc::new(b.build().expect("test_and_set is well-formed"))
}

/// Atomically exchanges the contents of `x` and `y` — impossible to
/// express atomically with single-object operations.
pub fn swap_objects(x: ObjectId, y: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("swap");
    b.read(x, 0)
        .read(y, 1)
        .write(x, reg(1))
        .write(y, reg(0))
        .ret(vec![]);
    Arc::new(b.build().expect("swap is well-formed"))
}

/// Atomically sums `objects` (the paper's `sum` multi-method that made the
/// aggregate-object workaround unattractive); returns `[total]`.
pub fn sum(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("sum{}", objects.len()));
    b.mov(0, imm(0));
    for &o in objects {
        b.read(o, 1).add(0, reg(0), reg(1));
    }
    b.ret(vec![reg(0)]);
    Arc::new(b.build().expect("sum is well-formed"))
}

/// Atomically finds the maximum of `objects`; returns `[max]`.
pub fn max_of(objects: &[ObjectId]) -> Arc<Program> {
    assert!(!objects.is_empty(), "max_of needs at least one object");
    let mut b = ProgramBuilder::new(format!("max{}", objects.len()));
    b.read(objects[0], 0);
    for &o in &objects[1..] {
        b.read(o, 1).binary(BinaryOp::Max, 0, reg(0), reg(1));
    }
    b.ret(vec![reg(0)]);
    Arc::new(b.build().expect("max_of is well-formed"))
}

/// Conditional transfer: moves `args[0]` from `from` to `to` iff
/// `from >= args[0]`; returns `[1]` on success, `[0]` otherwise. Both
/// balances change in the same m-operation, so totals are preserved under
/// any admissible schedule.
pub fn transfer(from: ObjectId, to: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("transfer");
    let fail = b.fresh_label();
    b.read(from, 0)
        .read(to, 1)
        .jump_if(reg(0), CmpOp::Lt, arg(0), fail)
        .sub(2, reg(0), arg(0))
        .add(3, reg(1), arg(0))
        .write(from, reg(2))
        .write(to, reg(3))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("transfer is well-formed"))
}

/// k-CAS — the general multi-object compare-and-swap that DCAS is the
/// k = 2 case of: for objects `o_0..o_{k-1}`, arguments are laid out as
/// `[old_0, …, old_{k-1}, new_0, …, new_{k-1}]`; all objects are updated
/// iff every `o_i == old_i`. Returns `[1]` on success, `[0]` otherwise.
pub fn kcas(objects: &[ObjectId]) -> Arc<Program> {
    let k = objects.len();
    assert!(k >= 1, "kcas needs at least one object");
    assert!(k <= 8, "kcas supports up to 8 objects");
    let mut b = ProgramBuilder::new(format!("kcas{k}"));
    let fail = b.fresh_label();
    for (i, &o) in objects.iter().enumerate() {
        b.read(o, i as u8);
        b.jump_if(reg(i as u8), CmpOp::Ne, arg(i as u8), fail);
    }
    for (i, &o) in objects.iter().enumerate() {
        b.write(o, arg((k + i) as u8));
    }
    b.ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("kcas is well-formed"))
}

/// Copies the current value of `src` into `dst` atomically.
pub fn copy_object(src: ObjectId, dst: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("copy");
    b.read(src, 0).write(dst, reg(0)).ret(vec![reg(0)]);
    Arc::new(b.build().expect("copy is well-formed"))
}

/// Adds `args[0]` to every one of `objects` atomically (e.g. interest
/// applied to all accounts at once); returns the new values.
pub fn add_to_all(objects: &[ObjectId]) -> Arc<Program> {
    assert!(objects.len() <= 16, "add_to_all supports up to 16 objects");
    let mut b = ProgramBuilder::new(format!("addall{}", objects.len()));
    for (i, &o) in objects.iter().enumerate() {
        b.read(o, i as u8)
            .add(i as u8, reg(i as u8), arg(0))
            .write(o, reg(i as u8));
    }
    b.ret((0..objects.len()).map(|i| reg(i as u8)).collect());
    Arc::new(b.build().expect("add_to_all is well-formed"))
}

/// Atomically finds the minimum of `objects`; returns `[min]`.
pub fn min_of(objects: &[ObjectId]) -> Arc<Program> {
    assert!(!objects.is_empty(), "min_of needs at least one object");
    let mut b = ProgramBuilder::new(format!("min{}", objects.len()));
    b.read(objects[0], 0);
    for &o in &objects[1..] {
        b.read(o, 1).binary(BinaryOp::Min, 0, reg(0), reg(1));
    }
    b.ret(vec![reg(0)]);
    Arc::new(b.build().expect("min_of is well-formed"))
}

/// Bounded increment: adds 1 to `object` iff the result stays at most
/// `args[0]`; returns `[1]` if incremented, `[0]` at the bound. Useful as
/// a semaphore acquire.
pub fn bounded_increment(object: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("bounded_inc");
    let fail = b.fresh_label();
    b.read(object, 0)
        .jump_if(reg(0), CmpOp::Ge, arg(0), fail)
        .add(1, reg(0), imm(1))
        .write(object, reg(1))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("bounded_increment is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::{execute, VecContext, DEFAULT_FUEL};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn run(p: &Program, args: &[i64], values: Vec<i64>) -> (Vec<i64>, Vec<i64>) {
        let mut ctx = VecContext { values };
        let out = execute(p, args, &mut ctx, DEFAULT_FUEL).unwrap();
        (out.outputs, ctx.values)
    }

    #[test]
    fn read_many_snapshot() {
        let p = read_many(&[oid(0), oid(2)]);
        let (out, vals) = run(&p, &[], vec![5, 6, 7]);
        assert_eq!(out, vec![5, 7]);
        assert_eq!(vals, vec![5, 6, 7]);
        assert!(!p.is_potential_update());
    }

    #[test]
    fn m_assign_writes_all() {
        let p = m_assign(&[oid(0), oid(1)]);
        let (_, vals) = run(&p, &[9, 8], vec![0, 0]);
        assert_eq!(vals, vec![9, 8]);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn dcas_both_paths() {
        let p = dcas(oid(0), oid(1));
        let (out, vals) = run(&p, &[1, 2, 10, 20], vec![1, 2]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![10, 20]);
        let (out, vals) = run(&p, &[1, 2, 10, 20], vec![1, 3]);
        assert_eq!(out, vec![0]);
        assert_eq!(vals, vec![1, 3], "no partial write on failure");
    }

    #[test]
    fn cas_reports_observed() {
        let p = cas(oid(0));
        let (out, vals) = run(&p, &[4, 5], vec![4]);
        assert_eq!(out, vec![1, 4]);
        assert_eq!(vals, vec![5]);
        let (out, _) = run(&p, &[4, 5], vec![6]);
        assert_eq!(out, vec![0, 6]);
    }

    #[test]
    fn fetch_add_returns_old() {
        let p = fetch_add(oid(0));
        let (out, vals) = run(&p, &[3], vec![10]);
        assert_eq!(out, vec![10]);
        assert_eq!(vals, vec![13]);
    }

    #[test]
    fn test_and_set_returns_old() {
        let p = test_and_set(oid(0));
        let (out, vals) = run(&p, &[], vec![0]);
        assert_eq!(out, vec![0]);
        assert_eq!(vals, vec![1]);
        let (out, vals) = run(&p, &[], vec![1]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn swap_exchanges() {
        let p = swap_objects(oid(0), oid(1));
        let (_, vals) = run(&p, &[], vec![1, 2]);
        assert_eq!(vals, vec![2, 1]);
    }

    #[test]
    fn sum_and_max() {
        let objs = [oid(0), oid(1), oid(2)];
        let (out, _) = run(&sum(&objs), &[], vec![1, 2, 3]);
        assert_eq!(out, vec![6]);
        let (out, _) = run(&max_of(&objs), &[], vec![1, 7, 3]);
        assert_eq!(out, vec![7]);
        assert!(!sum(&objs).is_potential_update());
    }

    #[test]
    fn transfer_guards_balance() {
        let p = transfer(oid(0), oid(1));
        let (out, vals) = run(&p, &[30], vec![100, 0]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![70, 30]);
        let (out, vals) = run(&p, &[200], vec![70, 30]);
        assert_eq!(out, vec![0]);
        assert_eq!(vals, vec![70, 30]);
    }

    #[test]
    fn bounded_increment_respects_cap() {
        let p = bounded_increment(oid(0));
        let (out, vals) = run(&p, &[2], vec![1]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![2]);
        let (out, vals) = run(&p, &[2], vec![2]);
        assert_eq!(out, vec![0]);
        assert_eq!(vals, vec![2]);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn max_of_requires_objects() {
        let _ = max_of(&[]);
    }

    #[test]
    fn kcas_generalizes_dcas() {
        let objs = [oid(0), oid(1), oid(2)];
        let p = kcas(&objs);
        assert_eq!(p.arity(), 6);
        // All three match: swap succeeds.
        let (out, vals) = run(&p, &[1, 2, 3, 10, 20, 30], vec![1, 2, 3]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![10, 20, 30]);
        // One mismatch: nothing written.
        let (out, vals) = run(&p, &[1, 2, 3, 10, 20, 30], vec![1, 9, 3]);
        assert_eq!(out, vec![0]);
        assert_eq!(vals, vec![1, 9, 3]);
        // k = 1 degenerates to CAS; k = 2 to DCAS.
        let p1 = kcas(&[oid(0)]);
        let (out, vals) = run(&p1, &[5, 6], vec![5]);
        assert_eq!(out, vec![1]);
        assert_eq!(vals, vec![6]);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn kcas_requires_objects() {
        let _ = kcas(&[]);
    }

    #[test]
    fn copy_and_add_to_all_and_min() {
        let (out, vals) = run(&copy_object(oid(0), oid(1)), &[], vec![7, 0]);
        assert_eq!(out, vec![7]);
        assert_eq!(vals, vec![7, 7]);

        let objs = [oid(0), oid(1), oid(2)];
        let (out, vals) = run(&add_to_all(&objs), &[5], vec![1, 2, 3]);
        assert_eq!(out, vec![6, 7, 8]);
        assert_eq!(vals, vec![6, 7, 8]);

        let (out, _) = run(&min_of(&objs), &[], vec![4, 1, 9]);
        assert_eq!(out, vec![1]);
    }
}
