//! # moc-dsm
//!
//! A distributed shared memory with **multi-object operations** — the
//! user-facing API of this reproduction of Mittal & Garg (1998).
//!
//! The traditional DSM provides atomicity only for single-object reads and
//! writes; this one lets an operation span several objects atomically:
//! [`Dsm::dcas`] (double compare-and-swap), [`Dsm::m_assign`] (atomic
//! m-register assignment), [`Dsm::snapshot`], [`Dsm::sum`],
//! [`Dsm::transfer`] and arbitrary user [`moc_core::Program`]s via
//! [`Dsm::invoke`].
//!
//! Pick the consistency condition at construction time:
//!
//! * [`Consistency::MSequential`] — the Figure 4 protocol: cheap local
//!   queries, updates pay one atomic broadcast.
//! * [`Consistency::MLinearizable`] — the Figure 6 protocol: queries also
//!   reflect real time, at the cost of one request/response round to all
//!   processes.
//! * [`Consistency::Aggregate`] — the "one big object" baseline from the
//!   paper's introduction, for comparison.
//!
//! Every execution is recorded; [`Dsm::finish`] returns the history, and
//! [`DsmReport::check`] verifies the promised condition with the
//! NP-complete checker or the polynomial Theorem 7 path.
//!
//! ```
//! use moc_dsm::{Consistency, DsmBuilder};
//! use moc_core::ids::{ObjectId, ProcessId};
//!
//! let x = ObjectId::new(0);
//! let y = ObjectId::new(1);
//! let dsm = DsmBuilder::new()
//!     .processes(2)
//!     .objects(2)
//!     .consistency(Consistency::MLinearizable)
//!     .build();
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//!
//! // Atomic multi-object assignment, then a DCAS from another process.
//! dsm.m_assign(p0, &[(x, 1), (y, 2)]);
//! assert!(dsm.dcas(p1, (x, 1, 10), (y, 2, 20)));
//! assert_eq!(dsm.snapshot(p0, &[x, y]), vec![10, 20]);
//!
//! let report = dsm.finish();
//! assert!(report.check(moc_checker::Condition::MLinearizability).satisfied);
//! ```

pub mod methods;

use std::sync::Arc;

use moc_checker::conditions::{check, CheckReport, Condition, Strategy};
use moc_core::history::History;
use moc_core::ids::{ObjectId, ProcessId};
use moc_core::program::Program;
use moc_core::value::Value;
use moc_protocol::{AggregateOverSequencer, MlinOverSequencer, MscOverSequencer};
use moc_runtime::{LiveCluster, Reply, RuntimeConfig};
use moc_sim::DelayModel;

/// The consistency condition a [`Dsm`] provides, selecting the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Figure 4: m-sequential consistency.
    MSequential,
    /// Figure 6: m-linearizability (default).
    #[default]
    MLinearizable,
    /// The aggregate-object baseline (m-linearizable, but every operation
    /// pays the broadcast).
    Aggregate,
}

impl Consistency {
    /// The checker condition this protocol guarantees.
    pub fn guaranteed_condition(self) -> Condition {
        match self {
            Consistency::MSequential => Condition::MSequentialConsistency,
            Consistency::MLinearizable | Consistency::Aggregate => Condition::MLinearizability,
        }
    }
}

/// Builder for [`Dsm`] clusters.
#[derive(Debug, Clone)]
pub struct DsmBuilder {
    processes: usize,
    objects: usize,
    consistency: Consistency,
    delay: Option<DelayModel>,
    seed: u64,
}

impl Default for DsmBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DsmBuilder {
    /// Starts a builder with 2 processes, 8 objects, m-linearizability.
    pub fn new() -> Self {
        DsmBuilder {
            processes: 2,
            objects: 8,
            consistency: Consistency::default(),
            delay: None,
            seed: 0,
        }
    }

    /// Sets the number of processes (replicas).
    pub fn processes(mut self, n: usize) -> Self {
        self.processes = n;
        self
    }

    /// Sets the number of shared objects.
    pub fn objects(mut self, n: usize) -> Self {
        self.objects = n;
        self
    }

    /// Sets the consistency condition (protocol).
    pub fn consistency(mut self, c: Consistency) -> Self {
        self.consistency = c;
        self
    }

    /// Injects artificial network delay/reordering.
    pub fn artificial_delay(mut self, delay: DelayModel) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Seeds the delay sampler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts the cluster.
    pub fn build(self) -> Dsm {
        let mut config = RuntimeConfig::new(self.objects);
        config.seed = self.seed;
        if let Some(d) = self.delay {
            config = config.with_artificial_delay(d);
        }
        let cluster = match self.consistency {
            Consistency::MSequential => {
                ClusterKind::Msc(LiveCluster::start(self.processes, config))
            }
            Consistency::MLinearizable => {
                ClusterKind::Mlin(LiveCluster::start(self.processes, config))
            }
            Consistency::Aggregate => {
                ClusterKind::Aggregate(LiveCluster::start(self.processes, config))
            }
        };
        Dsm {
            cluster,
            consistency: self.consistency,
            num_objects: self.objects,
        }
    }
}

enum ClusterKind {
    Msc(LiveCluster<MscOverSequencer>),
    Mlin(LiveCluster<MlinOverSequencer>),
    Aggregate(LiveCluster<AggregateOverSequencer>),
}

/// A running multi-object DSM cluster.
///
/// All operations are issued *as* a given process; concurrent calls on the
/// same process serialize (processes are sequential in the model), while
/// different processes proceed concurrently.
pub struct Dsm {
    cluster: ClusterKind,
    consistency: Consistency,
    num_objects: usize,
}

impl Dsm {
    /// The configured consistency condition.
    pub fn consistency(&self) -> Consistency {
        self.consistency
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        match &self.cluster {
            ClusterKind::Msc(c) => c.num_processes(),
            ClusterKind::Mlin(c) => c.num_processes(),
            ClusterKind::Aggregate(c) => c.num_processes(),
        }
    }

    /// Number of shared objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Invokes an arbitrary m-operation program as `process`, blocking
    /// until its response.
    pub fn invoke(&self, process: ProcessId, program: Arc<Program>, args: Vec<Value>) -> Reply {
        match &self.cluster {
            ClusterKind::Msc(c) => c.invoke(process, program, args),
            ClusterKind::Mlin(c) => c.invoke(process, program, args),
            ClusterKind::Aggregate(c) => c.invoke(process, program, args),
        }
    }

    /// Reads one object.
    pub fn read(&self, process: ProcessId, object: ObjectId) -> Value {
        self.invoke(process, methods::read_many(&[object]), vec![])
            .outputs[0]
    }

    /// Writes one object.
    pub fn write(&self, process: ProcessId, object: ObjectId, value: Value) {
        self.invoke(process, methods::m_assign(&[object]), vec![value]);
    }

    /// Atomically reads several objects — a consistent multi-object
    /// snapshot.
    pub fn snapshot(&self, process: ProcessId, objects: &[ObjectId]) -> Vec<Value> {
        self.invoke(process, methods::read_many(objects), vec![])
            .outputs
    }

    /// Atomic m-register assignment: writes `value_i` to `object_i`, all
    /// atomically.
    pub fn m_assign(&self, process: ProcessId, writes: &[(ObjectId, Value)]) {
        let objects: Vec<ObjectId> = writes.iter().map(|&(o, _)| o).collect();
        let args: Vec<Value> = writes.iter().map(|&(_, v)| v).collect();
        self.invoke(process, methods::m_assign(&objects), args);
    }

    /// Double compare-and-swap (the paper's motivating DCAS): if `x == old_x`
    /// and `y == old_y`, atomically set `x = new_x`, `y = new_y`. Returns
    /// whether the swap happened.
    pub fn dcas(
        &self,
        process: ProcessId,
        (x, old_x, new_x): (ObjectId, Value, Value),
        (y, old_y, new_y): (ObjectId, Value, Value),
    ) -> bool {
        self.invoke(
            process,
            methods::dcas(x, y),
            vec![old_x, old_y, new_x, new_y],
        )
        .outputs[0]
            == 1
    }

    /// k-CAS: atomically replaces every `(object, old, new)` entry iff all
    /// `old` values match. Generalizes [`Dsm::dcas`].
    pub fn kcas(&self, process: ProcessId, entries: &[(ObjectId, Value, Value)]) -> bool {
        let objects: Vec<ObjectId> = entries.iter().map(|&(o, _, _)| o).collect();
        let mut args: Vec<Value> = entries.iter().map(|&(_, old, _)| old).collect();
        args.extend(entries.iter().map(|&(_, _, new)| new));
        self.invoke(process, methods::kcas(&objects), args).outputs[0] == 1
    }

    /// Single-object compare-and-swap; returns `(succeeded, observed)`.
    pub fn cas(
        &self,
        process: ProcessId,
        object: ObjectId,
        old: Value,
        new: Value,
    ) -> (bool, Value) {
        let out = self
            .invoke(process, methods::cas(object), vec![old, new])
            .outputs;
        (out[0] == 1, out[1])
    }

    /// Atomically adds `delta` to `object`, returning the previous value.
    pub fn fetch_add(&self, process: ProcessId, object: ObjectId, delta: Value) -> Value {
        self.invoke(process, methods::fetch_add(object), vec![delta])
            .outputs[0]
    }

    /// Atomically exchanges the contents of two objects.
    pub fn swap_objects(&self, process: ProcessId, x: ObjectId, y: ObjectId) {
        self.invoke(process, methods::swap_objects(x, y), vec![]);
    }

    /// Atomically sums several objects (the paper's `sum` multi-method).
    pub fn sum(&self, process: ProcessId, objects: &[ObjectId]) -> Value {
        self.invoke(process, methods::sum(objects), vec![]).outputs[0]
    }

    /// Transfers `amount` from `from` to `to` iff the balance suffices;
    /// returns whether the transfer happened. The two balances change
    /// atomically — no observer ever sees money in flight.
    pub fn transfer(
        &self,
        process: ProcessId,
        from: ObjectId,
        to: ObjectId,
        amount: Value,
    ) -> bool {
        self.invoke(process, methods::transfer(from, to), vec![amount])
            .outputs[0]
            == 1
    }

    /// Shuts the cluster down and returns the recorded execution.
    pub fn finish(self) -> DsmReport {
        let report = match self.cluster {
            ClusterKind::Msc(c) => c.shutdown(),
            ClusterKind::Mlin(c) => c.shutdown(),
            ClusterKind::Aggregate(c) => c.shutdown(),
        };
        DsmReport {
            history: report.history,
            consistency: self.consistency,
        }
    }
}

/// The recorded execution of a finished [`Dsm`].
#[derive(Debug)]
pub struct DsmReport {
    /// The validated history of every m-operation issued.
    pub history: History,
    /// The consistency the cluster was configured with.
    pub consistency: Consistency,
}

impl DsmReport {
    /// Checks the history against `condition` (e.g. the configured
    /// guarantee, [`Consistency::guaranteed_condition`]).
    ///
    /// # Panics
    ///
    /// Panics if the checker exhausts its budget — with protocol-generated
    /// histories the polynomial path almost always applies; reach for
    /// [`moc_checker::conditions::check`] directly to control limits.
    pub fn check(&self, condition: Condition) -> CheckReport {
        check(&self.history, condition, Strategy::Auto).expect("checker budget exhausted")
    }

    /// Checks the weaker m-causal consistency condition (implied by every
    /// protocol this crate offers, exposed for spectrum comparisons).
    pub fn check_causal(&self) -> moc_checker::causal::CausalReport {
        moc_checker::causal::check_m_causal(&self.history, moc_checker::SearchLimits::default())
            .expect("checker budget exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn dsm(c: Consistency) -> Dsm {
        DsmBuilder::new()
            .processes(3)
            .objects(4)
            .consistency(c)
            .build()
    }

    #[test]
    fn basic_ops_mlin() {
        let d = dsm(Consistency::MLinearizable);
        d.write(pid(0), oid(0), 5);
        assert_eq!(d.read(pid(1), oid(0)), 5);
        assert_eq!(d.fetch_add(pid(2), oid(0), 3), 5);
        assert_eq!(d.read(pid(0), oid(0)), 8);
        let (ok, seen) = d.cas(pid(1), oid(0), 8, 100);
        assert!(ok);
        assert_eq!(seen, 8);
        let (ok, seen) = d.cas(pid(1), oid(0), 8, 200);
        assert!(!ok);
        assert_eq!(seen, 100);
        let report = d.finish();
        assert!(report.check(Condition::MLinearizability).satisfied);
    }

    #[test]
    fn multi_object_ops() {
        let d = dsm(Consistency::MLinearizable);
        d.m_assign(pid(0), &[(oid(0), 1), (oid(1), 2), (oid(2), 3)]);
        assert_eq!(d.snapshot(pid(1), &[oid(0), oid(1), oid(2)]), vec![1, 2, 3]);
        assert_eq!(d.sum(pid(2), &[oid(0), oid(1), oid(2)]), 6);
        d.swap_objects(pid(0), oid(0), oid(2));
        assert_eq!(d.snapshot(pid(1), &[oid(0), oid(2)]), vec![3, 1]);
        assert!(d.dcas(pid(2), (oid(0), 3, 30), (oid(2), 1, 10)));
        assert!(!d.dcas(pid(2), (oid(0), 3, 0), (oid(2), 10, 0)));
        let report = d.finish();
        assert!(report.check(Condition::MLinearizability).satisfied);
    }

    #[test]
    fn transfers_preserve_total() {
        let d = dsm(Consistency::MSequential);
        d.m_assign(pid(0), &[(oid(0), 100), (oid(1), 100)]);
        assert!(d.transfer(pid(1), oid(0), oid(1), 30));
        assert!(!d.transfer(pid(2), oid(0), oid(1), 1_000), "insufficient");
        let snap = d.snapshot(pid(0), &[oid(0), oid(1)]);
        assert_eq!(snap.iter().sum::<i64>(), 200);
        assert_eq!(snap, vec![70, 130]);
        let report = d.finish();
        assert!(report.check(Condition::MSequentialConsistency).satisfied);
    }

    #[test]
    fn aggregate_baseline_works() {
        let d = dsm(Consistency::Aggregate);
        d.write(pid(0), oid(0), 1);
        assert_eq!(d.read(pid(1), oid(0)), 1);
        let report = d.finish();
        assert!(report.check(Condition::MLinearizability).satisfied);
        assert_eq!(
            Consistency::Aggregate.guaranteed_condition(),
            Condition::MLinearizability
        );
    }

    #[test]
    fn kcas_end_to_end() {
        let d = dsm(Consistency::MLinearizable);
        d.m_assign(pid(0), &[(oid(0), 1), (oid(1), 2), (oid(2), 3)]);
        assert!(d.kcas(pid(1), &[(oid(0), 1, 10), (oid(1), 2, 20), (oid(2), 3, 30)]));
        assert!(!d.kcas(pid(2), &[(oid(0), 1, 0), (oid(1), 20, 0)]));
        assert_eq!(
            d.snapshot(pid(0), &[oid(0), oid(1), oid(2)]),
            vec![10, 20, 30]
        );
        let report = d.finish();
        assert!(report.check(Condition::MLinearizability).satisfied);
    }

    #[test]
    fn causal_check_on_reports() {
        let d = dsm(Consistency::MSequential);
        d.write(pid(0), oid(0), 1);
        d.read(pid(1), oid(0));
        let report = d.finish();
        assert!(report.check_causal().satisfied);
    }

    #[test]
    fn builder_defaults() {
        let d = DsmBuilder::new().build();
        assert_eq!(d.num_processes(), 2);
        assert_eq!(d.num_objects(), 8);
        assert_eq!(d.consistency(), Consistency::MLinearizable);
        d.finish();
    }
}
