//! # moc-mc
//!
//! Exhaustive schedule exploration — a small model checker for the
//! Mittal–Garg protocols.
//!
//! The randomized simulator (`moc-sim`) samples schedules; this crate
//! *enumerates* them. For a small configuration (a few processes, a couple
//! of m-operations each), [`explore`] walks **every** interleaving of
//! client invocations and message deliveries the asynchronous reordering
//! network permits, records the resulting history of each complete
//! schedule, and checks it against a consistency condition.
//!
//! This upgrades the Theorem 15/20 validation from "holds on sampled
//! seeds" to "holds on all schedules" for the explored configurations —
//! and, run with the *wrong* condition, it finds counterexample schedules:
//! asking for m-linearizability of the Figure 4 (m-sequential-consistency)
//! protocol produces the stale-local-query interleaving the paper's
//! distinction hinges on.
//!
//! Exploration branches over:
//! * delivering any in-flight message (the network may reorder anything);
//! * invoking the next scripted m-operation of any idle process.
//!
//! Virtual time is the exploration step index, a valid real-time axis for
//! `~t` because it linearizes the actual event order of the schedule.

use moc_abcast::Outbox;
use moc_checker::conditions::{check_with_relation, Condition, Strategy};
use moc_core::constraints::Constraint;
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpRecord};
use moc_core::relations::{process_order, reads_from, real_time, Relation};
use moc_protocol::{Completion, MOperation, OpSpec, ReplicaProtocol};

/// Limits for an exploration run.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Stop after this many complete schedules (guards combinatorial
    /// blowup; exceeded ⇒ `truncated` in the result).
    pub max_schedules: u64,
    /// Hard cap on events within one schedule (a protocol that exceeds it
    /// is livelocked — reported as a violation).
    pub max_depth: usize,
    /// Duplicate-delivery budget per schedule. The default (0) explores
    /// the paper's reliable reordering channels; a positive budget lets
    /// the explorer also deliver up to this many in-flight messages a
    /// second time, modelling a faulty network *without* the
    /// reliable-link sublayer — and finding the schedules it breaks.
    pub max_duplicates: u32,
    /// Leader-crash budget per schedule. The default (0) explores only
    /// crash-free schedules; a budget of 1 lets the explorer fail-stop
    /// the initial coordinator (P0) at every possible point. A schedule
    /// in which a *live* process's operation can never complete — even
    /// after arbitrary time passes (suspicion timers fire at network
    /// quiescence) — is reported as a liveness violation.
    pub max_leader_crashes: u32,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_schedules: 200_000,
            max_depth: 10_000,
            max_duplicates: 0,
            max_leader_crashes: 0,
        }
    }
}

/// A counterexample schedule found by exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The recorded history that fails the condition.
    pub history: History,
    /// The checker's explanation, if any.
    pub reason: Option<String>,
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct ExploreResult {
    /// Complete schedules explored.
    pub schedules: u64,
    /// Histories that violated the condition (empty = the condition holds
    /// on every explored schedule).
    pub violations: Vec<Violation>,
    /// Whether `max_schedules` stopped the exploration early.
    pub truncated: bool,
}

impl ExploreResult {
    /// Whether the condition held on every explored schedule.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Clone)]
struct Envelope<M> {
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

struct Pending {
    id: MOpId,
    invoked_step: u64,
}

/// One node of the exploration tree. Cloned at every branch.
struct State<R: ReplicaProtocol + Clone>
where
    R::Msg: Clone,
{
    replicas: Vec<R>,
    inflight: Vec<Envelope<R::Msg>>,
    script_pos: Vec<usize>,
    pending: Vec<Option<Pending>>,
    next_seq: Vec<u32>,
    records: Vec<MOpRecord>,
    step: u64,
    duplicates_used: u32,
    /// The fail-stopped process, if a leader-crash move was taken. It
    /// never acts again; messages addressed to it vanish.
    crashed: Option<usize>,
    /// Virtual clock fed to `on_abcast_tick` during quiescent-time
    /// phases.
    clock_ns: u64,
}

impl<R: ReplicaProtocol + Clone> Clone for State<R>
where
    R::Msg: Clone,
{
    fn clone(&self) -> Self {
        State {
            replicas: self.replicas.clone(),
            inflight: self.inflight.clone(),
            script_pos: self.script_pos.clone(),
            pending: self
                .pending
                .iter()
                .map(|p| {
                    p.as_ref().map(|p| Pending {
                        id: p.id,
                        invoked_step: p.invoked_step,
                    })
                })
                .collect(),
            next_seq: self.next_seq.clone(),
            records: self.records.clone(),
            step: self.step,
            duplicates_used: self.duplicates_used,
            crashed: self.crashed,
            clock_ns: self.clock_ns,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Deliver(usize),
    /// Deliver a *copy* of an in-flight message, leaving the original in
    /// flight: the network duplicated it.
    Duplicate(usize),
    Invoke(usize),
    /// Fail-stop the initial coordinator (P0): it never acts again and
    /// every in-flight message addressed to it is lost.
    CrashLeader,
}

struct Explorer<'a, R: ReplicaProtocol + Clone>
where
    R::Msg: Clone,
{
    scripts: &'a [Vec<OpSpec>],
    num_objects: usize,
    condition: Condition,
    limits: ExploreLimits,
    schedules: u64,
    violations: Vec<Violation>,
    truncated: bool,
    _protocol: std::marker::PhantomData<R>,
}

/// Explores every schedule of protocol `R` over the given scripts and
/// checks each complete schedule's history against `condition`.
///
/// The per-schedule check uses the polynomial Theorem 7 path when the
/// history satisfies the WW-constraint under the condition's relation plus
/// the protocol's broadcast order, falling back to the bounded search.
pub fn explore<R: ReplicaProtocol + Clone + 'static>(
    num_objects: usize,
    scripts: Vec<Vec<OpSpec>>,
    condition: Condition,
    limits: ExploreLimits,
) -> ExploreResult
where
    R::Msg: Clone,
{
    let n = scripts.len();
    let state = State {
        replicas: (0..n)
            .map(|p| R::new(ProcessId::new(p as u32), n, num_objects))
            .collect(),
        inflight: Vec::new(),
        script_pos: vec![0; n],
        pending: (0..n).map(|_| None).collect(),
        next_seq: vec![0; n],
        records: Vec::new(),
        step: 0,
        duplicates_used: 0,
        crashed: None,
        clock_ns: 0,
    };
    let mut explorer = Explorer::<R> {
        scripts: &scripts,
        num_objects,
        condition,
        limits,
        schedules: 0,
        violations: Vec::new(),
        truncated: false,
        _protocol: std::marker::PhantomData,
    };
    explorer.dfs(state, 0);
    ExploreResult {
        schedules: explorer.schedules,
        violations: explorer.violations,
        truncated: explorer.truncated,
    }
}

impl<R: ReplicaProtocol + Clone> Explorer<'_, R>
where
    R::Msg: Clone,
{
    fn moves(&self, s: &State<R>) -> Vec<Move> {
        let mut moves: Vec<Move> = (0..s.inflight.len()).map(Move::Deliver).collect();
        if s.duplicates_used < self.limits.max_duplicates {
            moves.extend((0..s.inflight.len()).map(Move::Duplicate));
        }
        for p in 0..s.replicas.len() {
            if s.crashed == Some(p) {
                continue;
            }
            if s.pending[p].is_none() && s.script_pos[p] < self.scripts[p].len() {
                moves.push(Move::Invoke(p));
            }
        }
        if s.crashed.is_none() && self.limits.max_leader_crashes > 0 {
            moves.push(Move::CrashLeader);
        }
        moves
    }

    fn apply(&self, s: &mut State<R>, mv: Move) {
        s.step += 1;
        let mut out;
        let acting: usize;
        match mv {
            Move::Deliver(i) => {
                let env = s.inflight.swap_remove(i);
                acting = env.to.index();
                out = Outbox::new(s.replicas.len());
                s.replicas[acting].on_message(env.from, env.msg, &mut out);
            }
            Move::Duplicate(i) => {
                s.duplicates_used += 1;
                let env = s.inflight[i].clone();
                acting = env.to.index();
                out = Outbox::new(s.replicas.len());
                s.replicas[acting].on_message(env.from, env.msg, &mut out);
            }
            Move::Invoke(p) => {
                acting = p;
                let spec = &self.scripts[p][s.script_pos[p]];
                s.script_pos[p] += 1;
                let id = MOpId::new(ProcessId::new(p as u32), s.next_seq[p]);
                s.next_seq[p] += 1;
                s.pending[p] = Some(Pending {
                    id,
                    invoked_step: s.step,
                });
                let mop = MOperation::new(id, spec.program.clone(), spec.args.clone());
                out = Outbox::new(s.replicas.len());
                s.replicas[p].invoke(mop, &mut out);
            }
            Move::CrashLeader => {
                s.crashed = Some(0);
                s.inflight.retain(|env| env.to.index() != 0);
                return;
            }
        }
        let me = ProcessId::new(acting as u32);
        for (to, msg) in out.drain() {
            if s.crashed == Some(to.index()) {
                continue;
            }
            s.inflight.push(Envelope { from: me, to, msg });
        }
        for c in s.replicas[acting].drain_completions() {
            self.complete(s, acting, c);
        }
    }

    /// Lets virtual time pass at network quiescence: ticks every live
    /// replica's broadcast with an ever-advancing clock, so suspicion
    /// timers fire and view changes run. Returns `true` as soon as a
    /// round emits messages or completes an operation; `false` if the
    /// system stays silent — genuine lack of progress.
    fn tick_until_progress(&self, s: &mut State<R>) -> bool {
        const ROUNDS: u32 = 32;
        const TICK_NS: u64 = 1_000_000;
        for _ in 0..ROUNDS {
            s.step += 1;
            s.clock_ns += TICK_NS;
            let mut progressed = false;
            for p in 0..s.replicas.len() {
                if s.crashed == Some(p) {
                    continue;
                }
                let mut out = Outbox::new(s.replicas.len());
                s.replicas[p].on_abcast_tick(s.clock_ns, &mut out);
                let me = ProcessId::new(p as u32);
                for (to, msg) in out.drain() {
                    if s.crashed == Some(to.index()) {
                        continue;
                    }
                    s.inflight.push(Envelope { from: me, to, msg });
                    progressed = true;
                }
                for c in s.replicas[p].drain_completions() {
                    self.complete(s, p, c);
                    progressed = true;
                }
            }
            if progressed {
                return true;
            }
        }
        false
    }

    /// Whether some process that is still alive has an operation waiting
    /// for a response.
    fn live_pending(s: &State<R>) -> bool {
        s.pending
            .iter()
            .enumerate()
            .any(|(p, pend)| pend.is_some() && s.crashed != Some(p))
    }

    fn complete(&self, s: &mut State<R>, p: usize, c: Completion) {
        let Some(pending) = s.pending[p].take() else {
            // Orphan completion: a duplicated message made the replica
            // apply (and complete) the same m-operation twice. Only the
            // first completion is the client-visible response event.
            debug_assert!(self.limits.max_duplicates > 0, "orphan without duplication");
            return;
        };
        if pending.id != c.id {
            s.pending[p] = Some(pending);
            return;
        }
        s.records.push(MOpRecord {
            id: c.id,
            invoked_at: EventTime::from_nanos(pending.invoked_step * 10),
            responded_at: EventTime::from_nanos(s.step * 10 + 5),
            ops: c.ops,
            outputs: c.outputs,
            treated_as: c.treated_as,
            label: c.label,
        });
    }

    fn dfs(&mut self, s: State<R>, depth: usize) {
        if self.schedules >= self.limits.max_schedules {
            self.truncated = true;
            return;
        }
        if depth > self.limits.max_depth {
            // Livelock: report as a violation with whatever was recorded.
            let history =
                History::new(self.num_objects, s.records).expect("partial history is well-formed");
            self.violations.push(Violation {
                history,
                reason: Some("schedule exceeded the depth bound (livelock?)".into()),
            });
            return;
        }
        let moves = self.moves(&s);
        if moves.is_empty() {
            if Self::live_pending(&s) {
                // The network is quiescent but a live process is still
                // waiting. Let time pass: suspicion timers may start a
                // view change that unblocks it.
                let mut next = s;
                if self.tick_until_progress(&mut next) {
                    self.dfs(next, depth + 1);
                } else {
                    let history = History::new(self.num_objects, next.records)
                        .expect("partial history is well-formed");
                    self.violations.push(Violation {
                        history,
                        reason: Some(
                            "liveness: a live process's operation can never complete \
                             (crashed coordinator with no failover?)"
                                .into(),
                        ),
                    });
                }
                return;
            }
            self.finish_schedule(s);
            return;
        }
        for mv in moves {
            let mut next = s.clone();
            self.apply(&mut next, mv);
            self.dfs(next, depth + 1);
            if self.truncated {
                return;
            }
        }
    }

    fn finish_schedule(&mut self, s: State<R>) {
        self.schedules += 1;
        debug_assert!(
            s.pending
                .iter()
                .enumerate()
                .all(|(p, pend)| pend.is_none() || s.crashed == Some(p)),
            "quiescent schedule left a live operation pending"
        );
        let delivery_log = s.replicas[0].delivery_log().to_vec();
        let history =
            History::new(self.num_objects, s.records).expect("schedule produced a valid history");
        let mut rel = base_relation(&history, self.condition);
        for pair in delivery_log.windows(2) {
            if let (Some(a), Some(b)) = (history.idx_of(pair[0]), history.idx_of(pair[1])) {
                rel.add(a, b);
            }
        }
        let verdict = check_with_relation(
            &history,
            self.condition,
            &rel,
            Strategy::Constraint(Constraint::Ww),
        )
        .or_else(|_| {
            // Not under WW with the hint (shouldn't happen for these
            // protocols) — fall back to the plain relation and search.
            check_with_relation(
                &history,
                self.condition,
                &base_relation(&history, self.condition),
                Strategy::Auto,
            )
        });
        match verdict {
            Ok(report) if report.satisfied => {}
            Ok(report) => self.violations.push(Violation {
                history,
                reason: report.reason,
            }),
            Err(e) => self.violations.push(Violation {
                history,
                reason: Some(format!("checker error: {e}")),
            }),
        }
    }
}

fn base_relation(h: &History, condition: Condition) -> Relation {
    let base = process_order(h).union(&reads_from(h));
    match condition {
        Condition::MSequentialConsistency => base,
        Condition::MLinearizability => base.union(&real_time(h)),
        Condition::MNormality => base.union(&moc_core::relations::object_order(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_protocol::{MlinOverSequencer, MscOverSequencer};
    use std::sync::Arc;

    fn wx(v: i64) -> OpSpec {
        let mut b = ProgramBuilder::new(format!("w{v}"));
        b.write(ObjectId::new(0), imm(v)).ret(vec![]);
        OpSpec::new(Arc::new(b.build().unwrap()), vec![])
    }

    fn rx() -> OpSpec {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        OpSpec::new(Arc::new(b.build().unwrap()), vec![])
    }

    /// Theorem 15, exhaustively: every schedule of one writer + one
    /// reader-then-writer pair of processes is m-sequentially consistent.
    #[test]
    fn msc_exhaustive_theorem15() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), rx()], vec![wx(2), rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits::default(),
        );
        assert!(!result.truncated);
        assert!(result.schedules > 10, "expected many interleavings");
        assert!(
            result.holds(),
            "Theorem 15 violated on {} of {} schedules",
            result.violations.len(),
            result.schedules
        );
    }

    /// The model checker *finds* the non-linearizable schedule of the
    /// Figure 4 protocol: a local query reading a stale value after a
    /// remote update responded.
    #[test]
    fn msc_is_not_linearizable_and_mc_finds_it() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        );
        assert!(!result.truncated);
        assert!(
            !result.holds(),
            "some interleaving must show the stale local query"
        );
        // The counterexample: the query responded 0 after w(x)1 responded.
        let v = &result.violations[0];
        assert!(v.history.len() == 2);
    }

    /// Theorem 20, exhaustively: every schedule of the Figure 6 protocol
    /// is m-linearizable — including the query round-trip interleavings.
    #[test]
    fn mlin_exhaustive_theorem20() {
        let result = explore::<MlinOverSequencer>(
            1,
            vec![vec![wx(1)], vec![rx()]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        );
        assert!(!result.truncated);
        assert!(result.schedules > 10);
        assert!(
            result.holds(),
            "Theorem 20 violated on {} of {} schedules",
            result.violations.len(),
            result.schedules
        );
    }

    /// Exhaustive multi-object atomicity: two-object writes and a snapshot
    /// reader never observe a torn pair, under any interleaving.
    #[test]
    fn mlin_exhaustive_no_torn_snapshots() {
        let wpair = |v: i64| {
            let mut b = ProgramBuilder::new(format!("wp{v}"));
            b.write(ObjectId::new(0), imm(v))
                .write(ObjectId::new(1), imm(v))
                .ret(vec![]);
            OpSpec::new(Arc::new(b.build().unwrap()), vec![])
        };
        let rpair = {
            let mut b = ProgramBuilder::new("rp");
            b.read(ObjectId::new(0), 0)
                .read(ObjectId::new(1), 1)
                .ret(vec![reg(0), reg(1)]);
            OpSpec::new(Arc::new(b.build().unwrap()), vec![])
        };
        let result = explore::<MlinOverSequencer>(
            2,
            vec![vec![wpair(7)], vec![rpair]],
            Condition::MLinearizability,
            ExploreLimits::default(),
        );
        assert!(result.holds());
        assert!(!result.truncated);
    }

    /// Without the reliable-link sublayer, a single duplicated message
    /// breaks the Figure 4 protocol: a duplicate `Submit` re-stamps an
    /// old write after a newer one from the same process, and the
    /// explorer finds a schedule whose history the checker refutes. This
    /// is exactly the failure mode the link's receive-side dedup exists
    /// to prevent (the chaos suite shows the protected stack surviving
    /// the same fault).
    #[test]
    fn one_duplicate_without_link_protection_breaks_msc() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), wx(2)], vec![rx(), rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits {
                max_schedules: 100_000,
                max_duplicates: 1,
                ..ExploreLimits::default()
            },
        );
        assert!(
            !result.violations.is_empty(),
            "a duplicated broadcast frame must produce a refutable schedule \
             ({} schedules explored)",
            result.schedules
        );
    }

    /// A zero duplicate budget leaves the exploration exactly as before:
    /// the paper's reliable channels, under which Theorem 15 holds on
    /// every schedule.
    #[test]
    fn zero_duplicate_budget_preserves_theorem15() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), wx(2)], vec![rx(), rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits::default(),
        );
        assert!(result.holds(), "{} violations", result.violations.len());
    }

    /// Tentpole liveness pair, negative half: under a leader-crash move
    /// the fixed-sequencer stack loses liveness — some schedule crashes
    /// P0 with an update still unordered, no amount of time recovers it,
    /// and the explorer reports the liveness violation.
    #[test]
    fn leader_crash_violates_liveness_under_the_fixed_sequencer() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1)], vec![wx(2)], vec![]],
            Condition::MSequentialConsistency,
            ExploreLimits {
                max_leader_crashes: 1,
                ..ExploreLimits::default()
            },
        );
        assert!(!result.truncated);
        assert!(
            !result.holds(),
            "crashing the fixed sequencer must strand some update"
        );
        assert!(
            result
                .violations
                .iter()
                .any(|v| v.reason.as_deref().is_some_and(|r| r.contains("liveness"))),
            "the violation must be a liveness report: {:?}",
            result
                .violations
                .iter()
                .map(|v| &v.reason)
                .collect::<Vec<_>>()
        );
    }

    /// Tentpole liveness pair, positive half: the view-based broadcast
    /// survives the same move at every crash point — suspicion timers
    /// fire at quiescence, view 1 installs under P1, unordered updates
    /// are re-proposed, and every schedule both completes and stays
    /// m-sequentially consistent.
    #[test]
    fn leader_crash_is_masked_by_view_failover() {
        let result = explore::<moc_protocol::MscOverView>(
            1,
            vec![vec![wx(1)], vec![wx(2)], vec![]],
            Condition::MSequentialConsistency,
            ExploreLimits {
                max_leader_crashes: 1,
                ..ExploreLimits::default()
            },
        );
        assert!(
            result.holds(),
            "failover must preserve liveness and safety: {:?}",
            result
                .violations
                .iter()
                .map(|v| &v.reason)
                .collect::<Vec<_>>()
        );
        assert!(result.schedules > 10, "expected many crash interleavings");
    }

    /// The schedule cap is honoured.
    #[test]
    fn truncation_is_reported() {
        let result = explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), wx(2)], vec![wx(3), wx(4)]],
            Condition::MSequentialConsistency,
            ExploreLimits {
                max_schedules: 3,
                ..ExploreLimits::default()
            },
        );
        assert!(result.truncated);
        assert!(result.schedules <= 3);
    }
}
