//! # multiobj — multi-object distributed operations
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! overview and `DESIGN.md` for the architecture.

pub use moc_abcast as abcast;
pub use moc_checker as checker;
pub use moc_core as core;
pub use moc_dsm as dsm;
pub use moc_mc as mc;
pub use moc_protocol as protocol;
pub use moc_runtime as runtime;
pub use moc_sim as sim;
pub use moc_workload as workload;
