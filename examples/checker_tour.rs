//! A tour of the consistency checker on the paper's worked examples.
//!
//! Recreates Figure 2's history `H1` (under the WW-constraint), shows that
//! the naive extension of Figure 3 is sequential but *not* legal, and that
//! the read-write precedence `~rw` (D 4.11) repairs the problem — then
//! contrasts the NP-complete brute-force checker with the polynomial
//! Theorem 7 path, and finishes with the database-schedule reduction of
//! Theorem 2.
//!
//! Run with: `cargo run --example checker_tour`

use moc_checker::conditions::{check_with_relation, Condition, Strategy};
use moc_checker::serializability::{Action, Schedule};
use moc_checker::SearchLimits;
use moc_core::constraints::Constraint;
use moc_core::history::{HistoryBuilder, MOpIdx};
use moc_core::ids::{ObjectId, ProcessId};
use moc_core::legality::{extended_relation, sequence_is_legal};
use moc_core::relations::{process_order, reads_from};

fn main() {
    let x = ObjectId::new(0);
    let y = ObjectId::new(1);

    // ── Figure 2: H1 under WW-constraint ────────────────────────────────
    //   P1: α = r(x)0 w(y)2   then   β = r(y)2
    //   P2: γ = w(x)1         then   δ = w(y)3
    //   WW order: α < γ < δ
    let mut b = HistoryBuilder::new(2);
    let alpha = b
        .mop(ProcessId::new(1))
        .at(0, 10)
        .read_init(x)
        .write(y, 2)
        .finish();
    b.mop(ProcessId::new(1))
        .at(20, 60)
        .read_from(y, 2, alpha)
        .finish();
    b.mop(ProcessId::new(2)).at(15, 25).write(x, 1).finish();
    b.mop(ProcessId::new(2)).at(30, 40).write(y, 3).finish();
    let h1 = b.build().expect("H1 is well-formed");
    println!("H1 (Figure 2):");
    for rec in h1.records() {
        println!("  {}", rec.notation());
    }

    let (a, be, g, d) = (MOpIdx(0), MOpIdx(1), MOpIdx(2), MOpIdx(3));
    let mut rel = process_order(&h1).union(&reads_from(&h1));
    rel.add(a, g); // ww: α < γ
    rel.add(g, d); // ww: γ < δ

    // ── Figure 3: the extension S1 = α γ δ β is not legal ───────────────
    let s1 = [a, g, d, be];
    println!(
        "\nS1 = α γ δ β  (Figure 3): sequential extension, legal = {}",
        sequence_is_legal(&h1, &s1)
    );
    assert!(!sequence_is_legal(&h1, &s1));

    // ── D 4.11/4.12: ~rw forces β before δ ───────────────────────────────
    let ext = extended_relation(&h1, &rel);
    println!(
        "extended relation ~H+ orders β before δ: {}",
        ext.contains(be, d)
    );
    let witness = ext.topological_sort().expect("~H+ is acyclic (Lemma 4)");
    let names = ["α", "β", "γ", "δ"];
    let rendered: Vec<&str> = witness.iter().map(|i| names[i.0]).collect();
    println!("legal witness from ~H+: {}", rendered.join(" "));
    assert!(sequence_is_legal(&h1, &witness));

    // ── Theorem 7 fast path vs brute force ───────────────────────────────
    let fast = check_with_relation(
        &h1,
        Condition::MSequentialConsistency,
        &rel,
        Strategy::Constraint(Constraint::Ww),
    )
    .expect("H1 is under the WW-constraint");
    let brute = check_with_relation(
        &h1,
        Condition::MSequentialConsistency,
        &rel,
        Strategy::BruteForce(SearchLimits::default()),
    )
    .expect("within budget");
    println!(
        "\nTheorem 7 fast path: admissible = {} | brute force: admissible = {} ({} nodes)",
        fast.satisfied, brute.satisfied, brute.stats.nodes
    );
    assert!(fast.satisfied && brute.satisfied);

    // ── Theorem 2: strict view serializability via m-linearizability ─────
    // r3(x) w1(x) w2(y) r3(y): view serializable but not strict view
    // serializable (the only serial order inverts the non-overlapping
    // T1 < T2).
    let e0 = ObjectId::new(0);
    let e1 = ObjectId::new(1);
    let schedule = Schedule::new(
        2,
        3,
        vec![
            Action::read(2, e0),
            Action::write(0, e0),
            Action::write(1, e1),
            Action::read(2, e1),
        ],
    )
    .expect("schedule is well-formed");
    let view = schedule
        .is_view_serializable(SearchLimits::default())
        .unwrap();
    let strict = schedule
        .is_strict_view_serializable(SearchLimits::default())
        .unwrap();
    println!(
        "\nTheorem 2 reduction: view serializable = {view}, strict view serializable = {strict}"
    );
    assert!(view && !strict);

    // ── Negative control: cyclic reads-from ──────────────────────────────
    let mut b = HistoryBuilder::new(2);
    let w1 = b.mop(ProcessId::new(0)).at(0, 10).write(x, 1).finish();
    let w2 = b
        .mop(ProcessId::new(1))
        .at(0, 10)
        .read_from(x, 1, w1)
        .write(y, 2)
        .finish();
    b.mop(ProcessId::new(0))
        .at(20, 30)
        .read_from(y, 2, w2)
        .read_init(x)
        .finish();
    let bad = b.build().expect("well-formed");
    let verdict = check_with_relation(
        &bad,
        Condition::MSequentialConsistency,
        &process_order(&bad).union(&reads_from(&bad)),
        Strategy::BruteForce(SearchLimits::default()),
    )
    .expect("within budget");
    println!(
        "\nstale multi-object read admissible? {} ({})",
        verdict.satisfied,
        verdict.reason.as_deref().unwrap_or("witness found")
    );
    assert!(!verdict.satisfied);

    println!("\nchecker tour complete");
}
