//! Quickstart: a multi-object DSM in a dozen lines.
//!
//! Starts a 3-process m-linearizable cluster, exercises the multi-object
//! operations the paper motivates (atomic m-register assignment, DCAS,
//! consistent snapshots), then verifies the recorded execution really is
//! m-linearizable.
//!
//! Run with: `cargo run --example quickstart`

use moc_core::ids::{ObjectId, ProcessId};
use moc_dsm::{Consistency, DsmBuilder};

fn main() {
    let x = ObjectId::new(0);
    let y = ObjectId::new(1);
    let z = ObjectId::new(2);

    let dsm = DsmBuilder::new()
        .processes(3)
        .objects(3)
        .consistency(Consistency::MLinearizable)
        .build();

    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);

    // Atomic multi-register assignment: no observer can see x=1 without
    // y=2.
    dsm.m_assign(p0, &[(x, 1), (y, 2), (z, 3)]);
    println!("P0: m_assign x=1 y=2 z=3");

    // DCAS from another process — the operation the single-object model
    // cannot express.
    let swapped = dsm.dcas(p1, (x, 1, 10), (y, 2, 20));
    println!("P1: dcas((x,1→10),(y,2→20)) = {swapped}");
    assert!(swapped);

    // A failed DCAS writes nothing.
    let swapped = dsm.dcas(p2, (x, 1, 99), (y, 20, 99));
    println!("P2: dcas((x,1→99),(y,20→99)) = {swapped} (expected false)");
    assert!(!swapped);

    // Consistent multi-object snapshot + atomic sum.
    let snap = dsm.snapshot(p2, &[x, y, z]);
    println!("P2: snapshot(x,y,z) = {snap:?}");
    assert_eq!(snap, vec![10, 20, 3]);
    let total = dsm.sum(p0, &[x, y, z]);
    println!("P0: sum(x,y,z) = {total}");
    assert_eq!(total, 33);

    // Verify the recorded history against the promised condition.
    let report = dsm.finish();
    let check = report.check(report.consistency.guaranteed_condition());
    println!(
        "history of {} m-operations is {}: {}",
        report.history.len(),
        check.condition,
        check.satisfied
    );
    assert!(check.satisfied);
}
