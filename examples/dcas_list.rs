//! Lock-free versioned pairs via DCAS.
//!
//! Section 1 motivates DCAS with lock-free data structures: "DCAS reduces
//! the allocation and copy cost thereby permitting a more efficient
//! implementation of concurrent objects." The classic pattern pairs a
//! value with a version counter and retries `DCAS((value, old_v, new_v),
//! (version, old_ver, old_ver + 1))` until it wins — the version object
//! defeats the ABA problem that single-object CAS suffers from.
//!
//! Four threads concurrently push increments through the DCAS retry loop;
//! the version count at the end equals the number of successful updates,
//! and the recorded history is m-linearizable.
//!
//! Run with: `cargo run --example dcas_list`

use std::sync::Arc;

use moc_core::ids::{ObjectId, ProcessId};
use moc_dsm::{Consistency, DsmBuilder};
use moc_sim::DelayModel;

const UPDATES_PER_THREAD: i64 = 10;

fn main() {
    let value = ObjectId::new(0);
    let version = ObjectId::new(1);

    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(4)
            .objects(2)
            .consistency(Consistency::MLinearizable)
            .artificial_delay(DelayModel::Uniform {
                lo: 500,
                hi: 100_000,
            })
            .seed(7)
            .build(),
    );

    let mut handles = Vec::new();
    for p in 0..4u32 {
        let dsm = Arc::clone(&dsm);
        handles.push(std::thread::spawn(move || {
            let me = ProcessId::new(p);
            let mut retries = 0u64;
            for _ in 0..UPDATES_PER_THREAD {
                loop {
                    // Read both atomically, then attempt the versioned DCAS.
                    let snap = dsm.snapshot(me, &[value, version]);
                    let (v, ver) = (snap[0], snap[1]);
                    if dsm.dcas(me, (value, v, v + p as i64 + 1), (version, ver, ver + 1)) {
                        break;
                    }
                    retries += 1;
                }
            }
            retries
        }));
    }

    let mut total_retries = 0;
    for h in handles {
        total_retries += h.join().expect("worker thread");
    }

    let me = ProcessId::new(0);
    let final_version = dsm.read(me, version);
    let final_value = dsm.read(me, value);
    println!("final value = {final_value}, version = {final_version}, retries = {total_retries}");
    assert_eq!(
        final_version,
        4 * UPDATES_PER_THREAD,
        "every successful DCAS bumps the version exactly once"
    );
    // Each thread p adds (p+1) per success: total = Σ threads (p+1)*10.
    assert_eq!(final_value, (1 + 2 + 3 + 4) * UPDATES_PER_THREAD);

    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads finished"));
    let report = dsm.finish();
    let check = report.check(moc_checker::Condition::MLinearizability);
    println!(
        "{} m-operations recorded; m-linearizable: {}",
        report.history.len(),
        check.satisfied
    );
    assert!(check.satisfied);
}
