//! Exhaustively explore every message interleaving of a tiny cluster and
//! watch the model checker separate the two protocols:
//!
//! * the Figure 6 (m-linearizability) protocol survives all schedules;
//! * the Figure 4 (m-sequential consistency) protocol has schedules whose
//!   local query reads a stale value — printed as a timeline.
//!
//! Run with: `cargo run --example model_check`

use std::sync::Arc;

use moc_checker::conditions::Condition;
use moc_core::ids::ObjectId;
use moc_core::program::{imm, reg, ProgramBuilder};
use moc_core::render::{render_listing, render_timeline};
use moc_mc::{explore, ExploreLimits};
use moc_protocol::{MlinOverSequencer, MscOverSequencer, OpSpec};

fn main() {
    let x = ObjectId::new(0);
    let wx = {
        let mut b = ProgramBuilder::new("wx");
        b.write(x, imm(1)).ret(vec![]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };
    let rx = {
        let mut b = ProgramBuilder::new("rx");
        b.read(x, 0).ret(vec![reg(0)]);
        OpSpec::new(Arc::new(b.build().expect("valid")), vec![])
    };
    let scripts = vec![vec![wx], vec![rx]];

    println!("config: P0 writes x=1, P1 reads x; exploring ALL interleavings\n");

    let mlin = explore::<MlinOverSequencer>(
        1,
        scripts.clone(),
        Condition::MLinearizability,
        ExploreLimits::default(),
    );
    println!(
        "mlin protocol: {} schedules, {} m-linearizability violations",
        mlin.schedules,
        mlin.violations.len()
    );
    assert!(mlin.holds(), "Theorem 20, exhaustively");

    let msc_sc = explore::<MscOverSequencer>(
        1,
        scripts.clone(),
        Condition::MSequentialConsistency,
        ExploreLimits::default(),
    );
    println!(
        "msc protocol:  {} schedules, {} m-sequential-consistency violations",
        msc_sc.schedules,
        msc_sc.violations.len()
    );
    assert!(msc_sc.holds(), "Theorem 15, exhaustively");

    let msc_lin = explore::<MscOverSequencer>(
        1,
        scripts,
        Condition::MLinearizability,
        ExploreLimits::default(),
    );
    println!(
        "msc protocol:  {} schedules, {} m-LINEARIZABILITY violations (expected!)\n",
        msc_lin.schedules,
        msc_lin.violations.len()
    );
    assert!(!msc_lin.holds());

    let v = &msc_lin.violations[0];
    println!("a counterexample schedule — the stale local query:");
    println!("{}", render_timeline(&v.history, 64));
    println!("{}", render_listing(&v.history));
    if let Some(reason) = &v.reason {
        println!("checker: {reason}");
    }
}
