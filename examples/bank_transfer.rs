//! Bank transfers: multi-object atomicity under real concurrency.
//!
//! Treating "a transaction in a database as an atomic operation, it
//! operates in general on multiple data items" (Section 1). Here every
//! account is a shared object and a transfer is one m-operation touching
//! two of them. Four client threads hammer the cluster with random
//! transfers while an auditor thread repeatedly snapshots all accounts:
//! because snapshots are m-operations too, the auditor must *never*
//! observe money in flight — every snapshot totals exactly the initial
//! amount.
//!
//! Run with: `cargo run --example bank_transfer`

use std::sync::Arc;

use moc_core::ids::{ObjectId, ProcessId};
use moc_dsm::{Consistency, DsmBuilder};
use moc_sim::DelayModel;

const ACCOUNTS: usize = 6;
const INITIAL_BALANCE: i64 = 100;
const TRANSFERS_PER_CLIENT: usize = 25;

fn main() {
    let accounts: Vec<ObjectId> = (0..ACCOUNTS).map(|i| ObjectId::new(i as u32)).collect();
    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(5)
            .objects(ACCOUNTS)
            .consistency(Consistency::MSequential)
            .artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 300_000,
            })
            .seed(42)
            .build(),
    );

    // Fund the accounts in one atomic m-register assignment.
    let initial: Vec<(ObjectId, i64)> = accounts.iter().map(|&a| (a, INITIAL_BALANCE)).collect();
    dsm.m_assign(ProcessId::new(0), &initial);
    let expected_total = INITIAL_BALANCE * ACCOUNTS as i64;

    // Four clients transfer at random; the auditor snapshots concurrently.
    let mut handles = Vec::new();
    for p in 1..5u32 {
        let dsm = Arc::clone(&dsm);
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            let mut done = 0u32;
            let mut state = p as u64;
            let mut next = move || {
                // Small xorshift so the example needs no rng dependency.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..TRANSFERS_PER_CLIENT {
                let from = accounts[(next() % ACCOUNTS as u64) as usize];
                let to = accounts[(next() % ACCOUNTS as u64) as usize];
                if from == to {
                    continue;
                }
                let amount = (next() % 40) as i64 + 1;
                if dsm.transfer(ProcessId::new(p), from, to, amount) {
                    done += 1;
                }
            }
            done
        }));
    }

    let auditor = {
        let dsm = Arc::clone(&dsm);
        let accounts = accounts.clone();
        std::thread::spawn(move || {
            let mut audits = 0;
            for _ in 0..30 {
                let snap = dsm.snapshot(ProcessId::new(0), &accounts);
                let total: i64 = snap.iter().sum();
                assert_eq!(total, expected_total, "audit saw money in flight: {snap:?}");
                audits += 1;
            }
            audits
        })
    };

    let mut transfers = 0;
    for h in handles {
        transfers += h.join().expect("client thread");
    }
    let audits = auditor.join().expect("auditor thread");
    println!("{transfers} transfers committed, {audits} audits, total always {expected_total}");

    // Final tally and consistency verification.
    let final_snap = dsm.snapshot(ProcessId::new(0), &accounts);
    println!("final balances: {final_snap:?}");
    assert_eq!(final_snap.iter().sum::<i64>(), expected_total);

    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads finished"));
    let report = dsm.finish();
    let check = report.check(moc_checker::Condition::MSequentialConsistency);
    println!(
        "{} m-operations recorded; m-sequentially consistent: {}",
        report.history.len(),
        check.satisfied
    );
    assert!(check.satisfied);
}
