//! Offline stub of the `serde` facade.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-surface-compatible stand-in. The
//! repository only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on plain data types (no serializer is ever instantiated —
//! the history codec in `moc-core` is a hand-rolled text format), so marker
//! traits are sufficient for everything to type-check.
//!
//! When real crates.io access is available, point the workspace dependency
//! back at the real `serde` and everything keeps compiling: the derives
//! here intentionally mirror the real macro names and item paths.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
