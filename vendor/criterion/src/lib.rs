//! Offline stub of `criterion` covering the API surface this repository's
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkId`, benchmark groups, and `Bencher::iter`.
//!
//! Instead of statistical measurement, each benchmark body runs a small
//! fixed number of iterations and reports wall-clock time per iteration —
//! enough to smoke-test the bench targets (they compile and their asserts
//! run) and to give a rough magnitude, without any dependency footprint.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 3;

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Only a parameter, rendered as-is.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..ITERS {
            let _ = black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::default();
        f(&mut b);
        eprintln!(
            "bench {}/{}: {:.0} ns/iter (stub, {} iters)",
            self.name, id, b.nanos_per_iter, ITERS
        );
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut f = f;
        self.run(&id.id, |b| f(b));
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        eprintln!(
            "bench {}: {:.0} ns/iter (stub, {} iters)",
            name, b.nanos_per_iter, ITERS
        );
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Opaque value barrier (best-effort without intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
