//! Offline stub of the `rand` crate covering the API surface this
//! repository uses: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{gen_range, gen_bool}` methods over integer / float ranges.
//!
//! The generator is SplitMix64 — a small, high-quality, deterministic
//! 64-bit mixer. Sequences differ from the real `rand`'s ChaCha-based
//! `StdRng`, which is fine here: every use in the workspace treats seeds
//! as opaque reproducibility handles, never as cross-version fixtures.

use std::ops::{Range, RangeInclusive};

/// Core source of 64-bit randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// A range a value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let sample = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen_range(0..100u64)).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..7usize);
            assert!((3..7).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        assert!((0..1000).map(|_| r.gen_bool(0.5)).any(|b| b));
        assert!(!(0..1000).map(|_| r.gen_bool(0.0)).any(|b| b));
    }
}
