//! Offline stub of `crossbeam` backed by the standard library. Covers the
//! `crossbeam::channel` surface this repository uses (`bounded`,
//! `unbounded`, `Sender`, `Receiver`, and `recv_timeout` errors) plus
//! `crossbeam::thread::scope` for scoped worker fan-out.

/// Scoped threads (stand-in for `crossbeam::thread`).
///
/// Delegates to `std::thread::scope` (stable since Rust 1.63), which
/// provides the same guarantee the real crate pioneered: spawned threads
/// may borrow from the caller's stack because the scope joins them all
/// before returning. The API follows the std shape — `spawn` returns a
/// `ScopedJoinHandle` directly rather than crossbeam's `Result`.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer channels (stand-in for `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    enum SenderFlavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderFlavor<T> {
        fn clone(&self) -> Self {
            match self {
                SenderFlavor::Unbounded(s) => SenderFlavor::Unbounded(s.clone()),
                SenderFlavor::Bounded(s) => SenderFlavor::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T>(SenderFlavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderFlavor::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderFlavor::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is ready.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderFlavor::Unbounded(tx)), Receiver(rx))
    }

    /// A bounded FIFO channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderFlavor::Bounded(tx)), Receiver(rx))
    }
}
