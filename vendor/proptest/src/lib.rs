//! Offline stub of `proptest` covering the API surface this repository
//! uses: the `proptest!` test macro, `Strategy` with `prop_map` /
//! `prop_flat_map` / `prop_filter`, `prop_oneof!`, `Just`, `any`,
//! `collection::{vec, btree_set}`, integer-range strategies, tuple
//! strategies, and `ProptestConfig::with_cases`.
//!
//! Semantics: each property runs `cases` times against deterministically
//! seeded random inputs (seed = FNV of the test name mixed with the case
//! index). There is **no shrinking** — on failure the panic message carries
//! the sampled values only insofar as the property's own assertion message
//! does. That trade-off keeps the stub small while preserving the
//! soundness-checking value of the properties.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-block configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_with(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which `f` returns false (resampling up to an
    /// internal retry bound, then panicking with `reason`).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample_with(&self, rng: &mut StdRng) -> T {
        self.0.sample_with(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample_with(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample_with(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample_with(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample_with(rng)).sample_with(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample_with(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample_with(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest stub: filter '{}' rejected 1000 samples",
            self.reason
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_with(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among type-erased alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of alternatives. Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample_with(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample_with(rng)
    }
}

/// Types with a canonical strategy (stand-in for `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for an [`Arbitrary`] type; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_with(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_with(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_with(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_with(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_with(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::*;

    /// Size specifications accepted by [`vec`] and [`btree_set`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Vectors of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_with(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample_with(rng)).collect()
        }
    }

    /// Ordered sets of values from `element` with a size drawn from `size`.
    /// The element domain must be large enough to reach the drawn size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample_with(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..=self.size.hi);
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..(50 * (target + 1)) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample_with(rng));
            }
            assert!(
                set.len() >= self.size.lo,
                "proptest stub: btree_set element domain too small for requested size"
            );
            set
        }
    }
}

/// Everything a test module conventionally glob-imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Nested alias so `prop::collection::vec(..)` style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` for each case with a deterministically seeded RNG.
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_cases(name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    let base = fnv1a(name);
    for case in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        body(&mut rng);
    }
}

/// Property-test entry macro; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $p = $crate::Strategy::sample_with(&($s), __rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserting macro; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserting macro; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserting macro; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Alternative-choice macro; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($s) ),+ ])
    };
}

// Keep a BTreeMap import referenced so the stub compiles warning-free if
// future strategies need it.
#[allow(dead_code)]
type _Unused = BTreeMap<u8, u8>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps(x in 0u8..10, v in collection::vec(0i64..5, 1..4), mut b in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            b ^= true;
            let _ = b;
        }

        #[test]
        fn oneof_and_filter(y in prop_oneof![Just(1u64), 5u64..8].prop_filter("nonzero", |v| *v > 0)) {
            prop_assert!(y == 1 || (5..8).contains(&y));
        }

        #[test]
        fn flat_map_scales(pair in (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0u32..9, n)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}
