//! Offline stub of `serde_derive`: emits trivial impls of the marker
//! traits defined by the vendored `serde` stub.
//!
//! The derives support plain (non-generic) `struct`s and `enum`s, which is
//! all this repository uses. No `syn`/`quote` — the type name is extracted
//! directly from the token stream.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct` / `enum` keyword, skipping
/// attributes, doc comments and visibility modifiers.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let word = id.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
                panic!("serde stub derive: expected a type name after `{word}`");
            }
        }
    }
    panic!("serde stub derive: no `struct` or `enum` keyword found");
}

/// Stub for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Stub for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
