//! Offline stub of `parking_lot` backed by `std::sync`. Covers the
//! `Mutex` / `RwLock` surface with parking_lot's no-poisoning semantics
//! (a poisoned std lock is recovered transparently).

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Mutual exclusion with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
