//! The chaos conformance suite: seed-sweeping fault-injection runs of
//! both Section 5 protocols, each verified end to end.
//!
//! The claim under test: over the reliable-link sublayer, any
//! *recoverable* fault plan (drops with p < 1, duplicates, healing
//! partitions, crash-restarts) is invisible to the paper's consistency
//! guarantees. Every sweep run must
//!
//! 1. complete with no anomalies (all scripted m-operations respond,
//!    replicas agree on the broadcast order),
//! 2. record a structurally valid history,
//! 3. satisfy its protocol's condition — m-sequential consistency for
//!    Figure 4, m-linearizability for Figure 6 — via a proof-producing
//!    check, and
//! 4. have that proof independently re-validated by `moc-audit`.
//!
//! A failing tuple prints `(protocol, workload, faults, seed)`, which
//! replays the exact run (the whole stack is deterministic in the seed).
//!
//! The negative path sabotages the link (dedup and retransmission off)
//! under message duplication and demands the *opposite*: a history the
//! checker refutes with a certificate the auditor upholds.

use moc_audit::audit;
use moc_checker::admissible::SearchLimits;
use moc_checker::certificate::check_certified;
use moc_checker::conditions::Condition;
use moc_protocol::chaos::{
    run_chaos_cluster, ChaosConfig, ChaosRunReport, LinkConfig, MonitorConfig,
};
use moc_protocol::{
    ClientScript, MlinOverSequencer, MlinOverView, MscOverSequencer, MscOverView, ReplicaProtocol,
};
use moc_sim::FaultPlan;
use moc_workload::chaos::{FaultFamily, WorkloadFamily};
use moc_workload::scripts;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROCESSES: usize = 3;
const OPS_PER_PROCESS: usize = 3;
/// Virtual-time horizon the scheduled faults (partitions, crashes) are
/// placed inside.
const HORIZON_NS: u64 = 1_000_000;
/// Seeds per (protocol, fault-family) cell: 6 families × 34 seeds =
/// 204 (seed, fault-plan) pairs per protocol.
const SEEDS_PER_FAMILY: u64 = 34;

fn sweep_scripts(wl: WorkloadFamily, seed: u64) -> (usize, Vec<ClientScript>) {
    let spec = wl.spec(PROCESSES, OPS_PER_PROCESS);
    let mut rng = StdRng::seed_from_u64(seed);
    (spec.num_objects, scripts(&spec, &mut rng))
}

fn run_one<R: ReplicaProtocol + 'static>(
    family: FaultFamily,
    wl: WorkloadFamily,
    seed: u64,
    condition: Condition,
) -> ChaosRunReport {
    let (num_objects, s) = sweep_scripts(wl, seed);
    let config = ChaosConfig::new(num_objects, seed)
        .with_faults(family.plan(PROCESSES, HORIZON_NS))
        // The online sentinel rides along on every sweep run, so the
        // whole sweep doubles as streaming/batch cross-validation.
        .with_monitor(MonitorConfig::new(condition).with_window(3));
    run_chaos_cluster::<R>(&config, s)
}

/// Checks one sweep run end to end; panics with a replayable tuple on
/// any deviation.
fn verify_masked(
    report: &ChaosRunReport,
    condition: Condition,
    family: FaultFamily,
    wl: WorkloadFamily,
    seed: u64,
) {
    let tuple = format!(
        "(protocol={}, workload={}, faults={}, seed={seed})",
        report.protocol,
        wl.name(),
        family.name()
    );
    assert!(
        report.anomalies.is_clean(),
        "{tuple}: anomalies {:?}",
        report.anomalies
    );
    let history = report
        .history
        .as_ref()
        .unwrap_or_else(|e| panic!("{tuple}: invalid history: {e}"));
    assert_eq!(
        history.len(),
        PROCESSES * OPS_PER_PROCESS,
        "{tuple}: missing completions"
    );
    let (verdict, cert) = check_certified(history, condition, SearchLimits::default())
        .unwrap_or_else(|e| panic!("{tuple}: checker error: {e}"));
    assert!(
        verdict.satisfied,
        "{tuple}: {condition} VIOLATED: {:?}",
        verdict.reason
    );
    audit(history, &cert.to_text())
        .unwrap_or_else(|e| panic!("{tuple}: auditor rejected the certificate: {e}"));
    // 5. The online sentinel that watched the same run must agree with
    //    the batch verdict: no latched violation, every completion
    //    ingested, and every rolling certificate (a) re-checkable by the
    //    batch checker on its self-contained window and (b) re-accepted
    //    by the independent auditor.
    let summary = report
        .monitor
        .as_ref()
        .expect("sweep runs attach the sentinel");
    assert!(
        summary.violation.is_none(),
        "{tuple}: sentinel latched a violation on a clean run: {:?}",
        summary.violation
    );
    assert_eq!(
        summary.stats.completions as usize,
        history.len(),
        "{tuple}: sentinel missed completions"
    );
    assert!(
        !summary.certs.is_empty(),
        "{tuple}: no rolling certificates emitted"
    );
    for rc in &summary.certs {
        assert!(
            rc.admissible,
            "{tuple}: inadmissible rolling cert v{} on a clean run",
            rc.version
        );
        let (batch, _) = check_certified(&rc.window, condition, SearchLimits::default())
            .unwrap_or_else(|e| {
                panic!(
                    "{tuple}: batch re-check error on window v{}: {e}",
                    rc.version
                )
            });
        assert!(
            batch.satisfied,
            "{tuple}: batch checker disagrees with rolling cert v{}",
            rc.version
        );
        audit(&rc.window, &rc.cert_text).unwrap_or_else(|e| {
            panic!(
                "{tuple}: auditor rejected rolling cert v{}: {e}",
                rc.version
            )
        });
    }
}

/// ≥200 (seed, fault-plan) pairs through the Figure 4 protocol: every
/// run m-sequentially consistent, every certificate audit-accepted.
#[test]
fn msc_conformance_sweep() {
    let mut pairs = 0u64;
    for (i, family) in FaultFamily::ALL.into_iter().enumerate() {
        for s in 0..SEEDS_PER_FAMILY {
            let seed = s * FaultFamily::ALL.len() as u64 + i as u64;
            let wl = WorkloadFamily::ALL[(seed as usize) % WorkloadFamily::ALL.len()];
            let report =
                run_one::<MscOverSequencer>(family, wl, seed, Condition::MSequentialConsistency);
            verify_masked(&report, Condition::MSequentialConsistency, family, wl, seed);
            pairs += 1;
        }
    }
    assert!(pairs >= 200, "sweep too small: {pairs}");
}

/// The same sweep through the Figure 6 protocol against the stronger
/// condition: every run m-linearizable, every certificate audited.
#[test]
fn mlin_conformance_sweep() {
    let mut pairs = 0u64;
    for (i, family) in FaultFamily::ALL.into_iter().enumerate() {
        for s in 0..SEEDS_PER_FAMILY {
            let seed = 100_000 + s * FaultFamily::ALL.len() as u64 + i as u64;
            let wl = WorkloadFamily::ALL[(seed as usize) % WorkloadFamily::ALL.len()];
            let report =
                run_one::<MlinOverSequencer>(family, wl, seed, Condition::MLinearizability);
            verify_masked(&report, Condition::MLinearizability, family, wl, seed);
            pairs += 1;
        }
    }
    assert!(pairs >= 200, "sweep too small: {pairs}");
}

/// Negative path: with the link sabotaged (no dedup, no retransmission)
/// under 50% duplication, duplicated broadcast frames reach the Figure 4
/// protocol unprotected. Some seed must produce a history the checker
/// *refutes* — and the refutation certificate must survive the
/// independent auditor. This proves the positive sweep is not vacuous:
/// the checker can see through the fault mask when there isn't one.
#[test]
fn sabotaged_link_yields_an_audited_refutation() {
    let mut refuted = false;
    let mut corrupted_runs = 0u64;
    for seed in 0..300u64 {
        let wl = WorkloadFamily::WriteHeavy;
        let spec = wl.spec(PROCESSES, 4);
        let spec = moc_workload::WorkloadSpec {
            num_objects: 1,
            max_span: 1,
            ..spec
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ChaosConfig::new(1, seed)
            .with_faults(FaultPlan::default().with_dup(0.5))
            .with_link(LinkConfig::sabotaged())
            .with_monitor(MonitorConfig::new(Condition::MSequentialConsistency).with_window(3));
        let report = run_chaos_cluster::<MscOverSequencer>(&config, s);
        if !report.anomalies.is_clean() {
            corrupted_runs += 1;
        }
        let Ok(history) = &report.history else {
            // Structural corruption is also evidence, but the goal here
            // is a checkable refutation.
            continue;
        };
        let (verdict, cert) = match check_certified(
            history,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        ) {
            Ok(v) => v,
            Err(_) => continue,
        };
        if !verdict.satisfied {
            audit(history, &cert.to_text())
                .unwrap_or_else(|e| panic!("seed {seed}: auditor rejected the refutation: {e}"));
            // The sentinel streamed the same run: the corruption the
            // batch checker refutes must already have latched online,
            // and its refutation certificate (when the latch came from a
            // window check rather than structural damage) must survive
            // the independent auditor too.
            let summary = report.monitor.as_ref().expect("sentinel attached");
            let v = summary.violation.as_ref().unwrap_or_else(|| {
                panic!("seed {seed}: batch refuted but the sentinel never latched")
            });
            if let Some(rc) = &v.cert {
                audit(&rc.window, &rc.cert_text).unwrap_or_else(|e| {
                    panic!("seed {seed}: sentinel refutation cert rejected: {e}")
                });
            }
            refuted = true;
            break;
        }
    }
    assert!(
        corrupted_runs > 0,
        "sabotage never even disturbed a run — the fault plan is inert"
    );
    assert!(
        refuted,
        "no seed in 0..300 produced an audited sc refutation under the sabotaged link"
    );
}

/// Horizon for the leader-crash sweeps. Think-time-stretched scripts put
/// the second and third invocation waves inside the crash windows, so
/// the coordinator really dies with work in flight.
const LEADER_HORIZON_NS: u64 = 240_000;
const LEADER_THINK_NS: u64 = 60_000;

fn run_leader_one<R: ReplicaProtocol + 'static>(
    family: FaultFamily,
    wl: WorkloadFamily,
    seed: u64,
    condition: Condition,
) -> ChaosRunReport {
    let (num_objects, s) = sweep_scripts(wl, seed);
    let s = s
        .into_iter()
        .map(|c| c.with_think_time(LEADER_THINK_NS))
        .collect();
    let config = ChaosConfig::new(num_objects, seed)
        .with_faults(family.plan(PROCESSES, LEADER_HORIZON_NS))
        // Suspicion well below the outage lengths, so failover fires
        // inside every crash window instead of waiting out the victim.
        .with_failover_timeouts(15_000, 120_000)
        // The sentinel observes crash-during-view-change runs too — the
        // LeaderCrashRepeat family kills the *incoming* leader while its
        // handshake is still in flight, with the monitor watching.
        .with_monitor(MonitorConfig::new(condition).with_window(3));
    run_chaos_cluster::<R>(&config, s)
}

/// Sweeps the leader-crash families through a view-based run of
/// protocol `R`, verifying each surviving history end to end and
/// demanding that every family actually exercised a view change on at
/// least one seed (no vacuous passes).
fn leader_crash_sweep<R: ReplicaProtocol + 'static>(condition: Condition, seed_base: u64) {
    for (i, family) in FaultFamily::LEADER_CRASH.into_iter().enumerate() {
        let mut failovers = 0u64;
        for s in 0..SEEDS_PER_FAMILY {
            let seed = seed_base + s * FaultFamily::LEADER_CRASH.len() as u64 + i as u64;
            let wl = WorkloadFamily::ALL[(seed as usize) % WorkloadFamily::ALL.len()];
            let report = run_leader_one::<R>(family, wl, seed, condition);
            verify_masked(&report, condition, family, wl, seed);
            if report
                .view_transcripts
                .iter()
                .flatten()
                .any(|line| line.contains("install v"))
            {
                failovers += 1;
            }
        }
        assert!(
            failovers > 0,
            "{}: no seed exercised a view change — the sweep is vacuous",
            family.name()
        );
    }
}

/// Tentpole positive path, Figure 4: crash the current coordinator
/// mid-run — the initial leader, and (in the repeat family) two
/// successive leaders — and demand a complete, certified,
/// audit-accepted m-sequentially-consistent history every time.
#[test]
fn msc_leader_crash_sweep() {
    leader_crash_sweep::<MscOverView>(Condition::MSequentialConsistency, 200_000);
}

/// Tentpole positive path, Figure 6: the same leader-crash sweep against
/// m-linearizability.
#[test]
fn mlin_leader_crash_sweep() {
    leader_crash_sweep::<MlinOverView>(Condition::MLinearizability, 300_000);
}

/// S1/S3 negative control: the same mid-burst coordinator crash under
/// the *fixed* sequencer must be detected — a restarted sequencer
/// fail-stops, so the run surfaces unfinished operations (or a stall)
/// rather than silently forking the agreed order.
#[test]
fn crashed_fixed_sequencer_is_detected_not_silent() {
    for seed in 0..6u64 {
        // All-update scripts guarantee ordering work is pending through
        // the outage regardless of the seed.
        let spec = moc_workload::WorkloadSpec {
            processes: PROCESSES,
            ops_per_process: OPS_PER_PROCESS,
            update_fraction: 1.0,
            ..moc_workload::WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s: Vec<ClientScript> = scripts(&spec, &mut rng)
            .into_iter()
            .map(|c| c.with_think_time(LEADER_THINK_NS))
            .collect();
        let config = ChaosConfig::new(spec.num_objects, seed)
            .with_faults(FaultFamily::LeaderCrashBurst.plan(PROCESSES, LEADER_HORIZON_NS))
            .with_max_events(2_000_000);
        let report = run_chaos_cluster::<MscOverSequencer>(&config, s);
        assert!(
            !report.anomalies.is_clean(),
            "seed {seed}: a dead coordinator must be detectable: {:?}",
            report.anomalies
        );
        assert!(report.anomalies.unfinished_ops > 0 || report.anomalies.stalled);
        assert!(
            !report.anomalies.delivery_divergence,
            "seed {seed}: fail-stop must prevent a forked order"
        );
        assert!(
            report.view_transcripts[0]
                .iter()
                .any(|line| line.contains("halted")),
            "seed {seed}: the restarted sequencer recorded its fail-stop"
        );
    }
}

/// S6 — failover determinism: the same seed and leader-crash plan must
/// reproduce identical history fingerprints *and* identical view-change
/// transcripts.
#[test]
fn leader_crash_replays_identically() {
    for family in FaultFamily::LEADER_CRASH {
        for seed in [7u64, 99] {
            let a = run_leader_one::<MscOverView>(
                family,
                WorkloadFamily::Mixed,
                seed,
                Condition::MSequentialConsistency,
            );
            let b = run_leader_one::<MscOverView>(
                family,
                WorkloadFamily::Mixed,
                seed,
                Condition::MSequentialConsistency,
            );
            assert_eq!(a.sim, b.sim, "{}/{seed}: RunStats diverged", family.name());
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{}/{seed}: history fingerprint diverged",
                family.name()
            );
            assert!(a.fingerprint().is_some(), "{}/{seed}", family.name());
            assert_eq!(
                a.view_transcripts,
                b.view_transcripts,
                "{}/{seed}: view-change transcripts must replay byte-identically",
                family.name()
            );
            assert_eq!(a.update_order, b.update_order);
            assert_eq!(a.latencies, b.latencies);
        }
    }
}

/// S2 — determinism regression: the same `(seed, FaultPlan)` must give a
/// byte-identical execution — identical simulator stats (including fault
/// counters) and an identical history fingerprint.
#[test]
fn chaos_runs_replay_identically() {
    for family in [FaultFamily::LossyDup, FaultFamily::Storm] {
        for seed in [3u64, 41, 977] {
            let a = run_one::<MscOverSequencer>(
                family,
                WorkloadFamily::Mixed,
                seed,
                Condition::MSequentialConsistency,
            );
            let b = run_one::<MscOverSequencer>(
                family,
                WorkloadFamily::Mixed,
                seed,
                Condition::MSequentialConsistency,
            );
            assert_eq!(a.sim, b.sim, "{}/{seed}: RunStats diverged", family.name());
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{}/{seed}: history fingerprint diverged",
                family.name()
            );
            assert!(a.fingerprint().is_some(), "{}/{seed}", family.name());
            assert_eq!(a.update_order, b.update_order);
            assert_eq!(a.latencies, b.latencies);
        }
    }
}

// ---------------------------------------------------------------------
// Conflict-sharded ordering over a certified partition.
// ---------------------------------------------------------------------

use moc_analyze::{shard_set, ShardOptions};
use moc_core::shard::{RoutePolicy, ShardPlan};
use moc_protocol::MscOverSharded;
use moc_workload::{confined_scripts, hub_programs, hub_scripts};

/// Derives the certified shard plan for the shardable workload with
/// `num_shards` groups, insisting the analysis is clean and the emitted
/// certificate survives the independent auditor — the same gate `moc
/// shard` + `moc audit` enforce in CI.
fn certified_plan(num_shards: usize) -> ShardPlan {
    let programs = moc_workload::shardable_programs(num_shards);
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    let analysis = shard_set(&refs, 0, ShardOptions::default());
    assert!(
        analysis
            .all_findings()
            .iter()
            .all(|f| f.severity < moc_analyze::Severity::Error),
        "shardable workload must analyze cleanly"
    );
    let verdict = moc_audit::audit_shard(&refs, &analysis.cert.to_json())
        .expect("auditor accepts the analyzer's own certificate");
    assert_eq!(verdict.num_shards as usize, num_shards);
    assert_eq!(verdict.cross_edges, 0, "groups are disjoint");
    analysis.cert.plan().expect("certificate yields a plan")
}

/// Tentpole positive path: the Figure 4 protocol over the conflict-
/// sharded broadcast, with the partition taken from an audited
/// certificate and clients confined to their own shard (the m-SC side
/// condition the certificate states). 2–4 shards × 6 fault families ×
/// seeds ≥ 108 (seed, plan) runs; every history must be complete,
/// m-sequentially consistent, and its proof audit-accepted — while
/// single-shard updates demonstrably flow through shard-local channels,
/// never the global one.
#[test]
fn sharded_msc_conformance_sweep() {
    let mut pairs = 0u64;
    for num_shards in 2..=4usize {
        let plan = certified_plan(num_shards);
        let processes = num_shards.max(3);
        for (i, family) in FaultFamily::ALL.into_iter().enumerate() {
            for s in 0..6u64 {
                let seed = 400_000
                    + num_shards as u64 * 10_000
                    + s * FaultFamily::ALL.len() as u64
                    + i as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let scripts = confined_scripts(num_shards, processes, OPS_PER_PROCESS, 1, &mut rng);
                let config = ChaosConfig::new(2 * num_shards, seed)
                    .with_faults(family.plan(processes, HORIZON_NS))
                    .with_shard_plan(plan.clone());
                let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
                let tuple = format!(
                    "(protocol=msc-sharded, shards={num_shards}, faults={}, seed={seed})",
                    family.name()
                );
                assert!(
                    report.anomalies.is_clean(),
                    "{tuple}: anomalies {:?}",
                    report.anomalies
                );
                let history = report
                    .history
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{tuple}: invalid history: {e}"));
                assert_eq!(
                    history.len(),
                    processes * OPS_PER_PROCESS,
                    "{tuple}: missing completions"
                );
                let (verdict, cert) = check_certified(
                    history,
                    Condition::MSequentialConsistency,
                    SearchLimits::default(),
                )
                .unwrap_or_else(|e| panic!("{tuple}: checker error: {e}"));
                assert!(
                    verdict.satisfied,
                    "{tuple}: m-sc VIOLATED: {:?}",
                    verdict.reason
                );
                audit(history, &cert.to_text())
                    .unwrap_or_else(|e| panic!("{tuple}: auditor rejected the certificate: {e}"));
                // Shard-local ordering: confined clients never produce a
                // cross-shard footprint, so the global channel stays idle
                // and every shard channel that got updates kept them.
                let updates = report.update_order.len();
                let per_channel: usize = report.channel_logs.iter().map(|l| l.len()).sum();
                assert_eq!(per_channel, updates, "{tuple}: channel logs cover the log");
                assert!(
                    report.channel_logs.len() <= num_shards,
                    "{tuple}: confined updates must not reach the global channel"
                );
                if updates > 0 {
                    assert!(
                        report.channel_logs.iter().any(|l| !l.is_empty()),
                        "{tuple}: updates flowed through shard channels"
                    );
                }
                pairs += 1;
            }
        }
    }
    assert!(pairs >= 100, "sweep too small: {pairs}");
}

/// Sharded runs replay deterministically, like every other chaos run.
#[test]
fn sharded_runs_replay_identically() {
    let plan = certified_plan(3);
    let mk = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts = confined_scripts(3, 3, 4, 1, &mut rng);
        let config = ChaosConfig::new(6, seed)
            .with_faults(FaultPlan::lossy(0.15).with_dup(0.1))
            .with_shard_plan(plan.clone());
        run_chaos_cluster::<MscOverSharded>(&config, scripts)
    };
    for seed in [5u64, 431] {
        let (a, b) = (mk(seed), mk(seed));
        assert_eq!(a.sim, b.sim);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().is_some());
        assert_eq!(a.channel_logs, b.channel_logs);
        assert_eq!(a.latencies, b.latencies);
    }
}

/// Sabotage control: mis-shard the hub workload. The certificate auditor
/// rejects the doctored partition up front; forcing the protocol to run
/// it anyway (first-object routing splits the two conflicting hub
/// writers across channels) corrupts real executions detectably —
/// replica stores diverge even though every individual channel's order
/// is still agreed.
#[test]
fn missharded_hub_object_is_caught() {
    let programs = hub_programs();
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();

    // The honest analysis refuses to split the hub component: one shard.
    let honest = shard_set(&refs, 0, ShardOptions::default());
    assert_eq!(
        honest.cert.shards.len(),
        1,
        "hub holds the component together"
    );
    moc_audit::audit_shard(&refs, &honest.cert.to_json())
        .expect("the honest single-shard certificate audits clean");

    // A doctored certificate claiming the split is rejected up front.
    let mut doctored = moc_core::shard::ShardCert::parse(&honest.cert.to_json()).unwrap();
    doctored.shards = vec![
        vec![
            moc_core::ids::ObjectId::new(0),
            moc_core::ids::ObjectId::new(2),
        ],
        vec![moc_core::ids::ObjectId::new(1)],
    ];
    let err = moc_audit::audit_shard(&refs, &doctored.to_json())
        .expect_err("a mis-sharded hub certificate must be rejected");
    assert!(
        err.contains("footprint closure") || err.contains("shard"),
        "rejection names the partition defect: {err}"
    );

    // Run the uncertifiable partition anyway, with the sabotage routing
    // policy that sends each hub writer to its first object's shard.
    let missharded = ShardPlan::new(vec![0, 1, 0])
        .unwrap()
        .with_route_policy(RoutePolicy::FirstObject);
    let mut corrupted = 0u64;
    let mut runs = 0u64;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts = hub_scripts(3, 4, 1, &mut rng);
        let config = ChaosConfig::new(3, seed).with_shard_plan(missharded.clone());
        let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
        runs += 1;
        if report.anomalies.store_divergence {
            corrupted += 1;
        }
    }
    assert!(
        corrupted > 0,
        "the mis-sharded hub never corrupted a run in {runs} seeds — the control is inert"
    );

    // Control of the control: the same workload under the honest
    // single-shard plan is clean on the same seeds.
    let honest_plan = honest.cert.plan().unwrap();
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts = hub_scripts(3, 4, 1, &mut rng);
        let config = ChaosConfig::new(3, seed).with_shard_plan(honest_plan.clone());
        let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
        assert!(
            report.anomalies.is_clean(),
            "seed {seed}: honest plan must be clean: {:?}",
            report.anomalies
        );
    }
}

// ---------------------------------------------------------------------
// Certificate-gated out-of-order delivery (the commute fast path).
// ---------------------------------------------------------------------

use moc_core::commute::{CommuteCert, CommutePlan, MoverClass};
use moc_workload::{commuting_scripts, cross_shard_writer_program, shardable_programs};

/// The audited commute certificate for the commuting workload: every
/// shard-confined program plus the blind cross-shard writer. Mirrors the
/// `moc commute` + `moc audit` gate: the analysis must be Error-free and
/// the certificate must survive the independent auditor.
fn certified_commute_cert(num_shards: usize) -> CommuteCert {
    let mut programs = shardable_programs(num_shards);
    programs.push(cross_shard_writer_program());
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    let analysis = moc_analyze::commute_set(&refs, 2 * num_shards);
    assert!(
        analysis
            .all_findings()
            .iter()
            .all(|f| f.severity < moc_analyze::Severity::Error),
        "commuting workload must analyze cleanly"
    );
    moc_audit::audit_commute(&refs, &analysis.cert.to_json())
        .expect("auditor accepts the analyzer's own commute certificate");
    analysis.cert
}

/// Tentpole positive path, delivery half: Figure 4 over the conflict-
/// sharded broadcast with BOTH certificates installed — the shard plan
/// and the commute certificate's delivery plan. Cross-shard writes may
/// then bypass the barriers of shards they provably commute with. Every
/// run must stay anomaly-free, complete, m-sequentially consistent and
/// audit-accepted, and the fast path must demonstrably engage somewhere
/// in the sweep.
#[test]
fn commute_fast_path_conformance_sweep() {
    let mut pairs = 0u64;
    let mut fast_applied = 0u64;
    for num_shards in 3..=4usize {
        let shard_plan = certified_plan(num_shards);
        let commute_plan = certified_commute_cert(num_shards).delivery_plan(&shard_plan);
        let processes = num_shards;
        for (i, family) in FaultFamily::ALL.into_iter().enumerate() {
            for s in 0..4u64 {
                let seed = 700_000
                    + num_shards as u64 * 10_000
                    + s * FaultFamily::ALL.len() as u64
                    + i as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let scripts =
                    commuting_scripts(num_shards, processes, OPS_PER_PROCESS + 1, 1, &mut rng);
                let config = ChaosConfig::new(2 * num_shards, seed)
                    .with_faults(family.plan(processes, HORIZON_NS))
                    .with_shard_plan(shard_plan.clone())
                    .with_commute_plan(commute_plan.clone());
                let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
                let tuple = format!(
                    "(protocol=msc-sharded+commute, shards={num_shards}, faults={}, seed={seed})",
                    family.name()
                );
                assert!(
                    report.anomalies.is_clean(),
                    "{tuple}: anomalies {:?}",
                    report.anomalies
                );
                let history = report
                    .history
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{tuple}: invalid history: {e}"));
                assert_eq!(
                    history.len(),
                    processes * (OPS_PER_PROCESS + 1),
                    "{tuple}: missing completions"
                );
                let (verdict, cert) = check_certified(
                    history,
                    Condition::MSequentialConsistency,
                    SearchLimits::default(),
                )
                .unwrap_or_else(|e| panic!("{tuple}: checker error: {e}"));
                assert!(
                    verdict.satisfied,
                    "{tuple}: m-sc VIOLATED: {:?}",
                    verdict.reason
                );
                audit(history, &cert.to_text())
                    .unwrap_or_else(|e| panic!("{tuple}: auditor rejected the certificate: {e}"));
                fast_applied += report.commute_fast_applied.iter().sum::<u64>();
                pairs += 1;
            }
        }
    }
    assert!(pairs >= 48, "sweep too small: {pairs}");
    assert!(
        fast_applied > 0,
        "the certified fast path never engaged across {pairs} runs"
    );
}

/// Sabotage control for the delivery fast path. A doctored certificate
/// claiming the cross-shard writer commutes with everything is rejected
/// by the auditor up front; forcing delivery to honor a fabricated
/// everything-commutes plan anyway corrupts real executions detectably —
/// replica stores diverge — while the honest plan stays clean on the
/// same seeds.
#[test]
fn fabricated_commute_cert_is_caught() {
    let num_shards = 2usize;
    let honest = certified_commute_cert(num_shards);

    // Doctoring the cross writer into a both-mover breaks the internal
    // consistency the auditor re-derives in O(pairs): rejected up front.
    let mut doctored = CommuteCert::parse(&honest.to_json()).unwrap();
    let cross = doctored
        .programs
        .iter_mut()
        .find(|p| p.name == "x-w")
        .expect("the cross writer is in the certificate");
    assert_eq!(cross.class, MoverClass::NonMover);
    cross.class = MoverClass::BothMover;
    let programs: Vec<_> = shardable_programs(num_shards)
        .into_iter()
        .chain([cross_shard_writer_program()])
        .collect();
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    moc_audit::audit_commute(&refs, &doctored.to_json())
        .expect_err("a doctored mover class must be rejected");

    // Run the fabricated plan anyway: with every barrier skippable, the
    // cross writes race the shard channels and replicas disagree.
    let shard_plan = certified_plan(num_shards);
    let mut corrupted = 0u64;
    let mut runs = 0u64;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts = commuting_scripts(num_shards, 3, 4, 1, &mut rng);
        let config = ChaosConfig::new(2 * num_shards, seed)
            .with_shard_plan(shard_plan.clone())
            .with_commute_plan(CommutePlan::vacuous(num_shards));
        let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
        runs += 1;
        if report.anomalies.store_divergence {
            corrupted += 1;
        }
    }
    assert!(
        corrupted > 0,
        "the fabricated commute plan never corrupted a run in {runs} seeds — the control is inert"
    );

    // Control of the control: the honest delivery plan is clean on the
    // same seeds.
    let commute_plan = honest.delivery_plan(&shard_plan);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let scripts = commuting_scripts(num_shards, 3, 4, 1, &mut rng);
        let config = ChaosConfig::new(2 * num_shards, seed)
            .with_shard_plan(shard_plan.clone())
            .with_commute_plan(commute_plan.clone());
        let report = run_chaos_cluster::<MscOverSharded>(&config, scripts);
        assert!(
            report.anomalies.is_clean(),
            "seed {seed}: honest commute plan must be clean: {:?}",
            report.anomalies
        );
    }
}

/// S2 (explorer half): exhaustive exploration with a duplicate budget is
/// deterministic — two identical invocations enumerate the same
/// schedules and find the same violations.
#[test]
fn mc_exploration_replays_identically() {
    use moc_checker::conditions::Condition;
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_mc::{explore, ExploreLimits};
    use moc_protocol::OpSpec;
    use std::sync::Arc;

    let wx = |v: i64| {
        let mut b = ProgramBuilder::new(format!("w{v}"));
        b.write(ObjectId::new(0), imm(v)).ret(vec![]);
        OpSpec::new(Arc::new(b.build().unwrap()), vec![])
    };
    let rx = || {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        OpSpec::new(Arc::new(b.build().unwrap()), vec![])
    };
    let run = || {
        explore::<MscOverSequencer>(
            1,
            vec![vec![wx(1), wx(2)], vec![rx()]],
            Condition::MSequentialConsistency,
            ExploreLimits {
                max_schedules: 50_000,
                max_duplicates: 1,
                ..ExploreLimits::default()
            },
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.truncated, b.truncated);
    assert_eq!(a.violations.len(), b.violations.len());
    for (va, vb) in a.violations.iter().zip(&b.violations) {
        assert_eq!(
            moc_core::codec::fingerprint(&va.history),
            moc_core::codec::fingerprint(&vb.history)
        );
        assert_eq!(va.reason, vb.reason);
    }
}
