//! Application-level integration tests (experiment E12): the workloads the
//! paper's introduction motivates, run end-to-end on the live thread
//! runtime with consistency verification.

use std::sync::Arc;

use moc_checker::Condition;
use moc_core::ids::{ObjectId, ProcessId};
use moc_dsm::{methods, Consistency, Dsm, DsmBuilder};
use moc_sim::DelayModel;

fn oid(i: u32) -> ObjectId {
    ObjectId::new(i)
}
fn pid(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn verified_finish(dsm: Dsm, condition: Condition) {
    let report = dsm.finish();
    let check = report.check(condition);
    assert!(check.satisfied, "{condition} violated: {:?}", check.reason);
}

/// Concurrent bounded semaphore built from `bounded_increment` +
/// `fetch_add(-1)`: the permit count never exceeds the bound.
#[test]
fn semaphore_never_exceeds_bound() {
    const BOUND: i64 = 3;
    let sem = oid(0);
    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(4)
            .objects(1)
            .consistency(Consistency::MLinearizable)
            .artificial_delay(DelayModel::Uniform {
                lo: 100,
                hi: 50_000,
            })
            .build(),
    );
    let mut handles = Vec::new();
    for p in 0..4u32 {
        let dsm = Arc::clone(&dsm);
        handles.push(std::thread::spawn(move || {
            let me = pid(p);
            let mut acquired = 0;
            for _ in 0..10 {
                let got = dsm
                    .invoke(me, methods::bounded_increment(sem), vec![BOUND])
                    .outputs[0]
                    == 1;
                if got {
                    acquired += 1;
                    // Observe the permit count while held.
                    let held = dsm.read(me, sem);
                    assert!((1..=BOUND).contains(&held), "permits out of range: {held}");
                    dsm.fetch_add(me, sem, -1);
                }
            }
            acquired
        }));
    }
    let total: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "someone must acquire");
    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads done"));
    assert_eq!(dsm.read(pid(0), sem), 0, "all permits released");
    verified_finish(dsm, Condition::MLinearizability);
}

/// Test-and-set mutual exclusion: two threads alternate through a TAS
/// lock; the protected counter (two objects, incremented together) never
/// tears.
#[test]
fn test_and_set_lock_protects_pair() {
    let lock = oid(0);
    let a = oid(1);
    let b = oid(2);
    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(2)
            .objects(3)
            .consistency(Consistency::MLinearizable)
            .build(),
    );
    let mut handles = Vec::new();
    for p in 0..2u32 {
        let dsm = Arc::clone(&dsm);
        handles.push(std::thread::spawn(move || {
            let me = pid(p);
            for _ in 0..5 {
                // Acquire.
                while dsm.invoke(me, methods::test_and_set(lock), vec![]).outputs[0] == 1 {
                    std::thread::yield_now();
                }
                // Critical section: increment both halves separately (the
                // lock, not multi-object atomicity, protects them here).
                let va = dsm.read(me, a);
                dsm.write(me, a, va + 1);
                let vb = dsm.read(me, b);
                dsm.write(me, b, vb + 1);
                // The pair is consistent while the lock is held.
                let snap = dsm.snapshot(me, &[a, b]);
                assert_eq!(snap[0], snap[1], "tearing inside the lock");
                // Release.
                dsm.write(me, lock, 0);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads done"));
    let snap = dsm.snapshot(pid(0), &[a, b]);
    assert_eq!(snap, vec![10, 10]);
    verified_finish(dsm, Condition::MLinearizability);
}

/// The motivating database-transaction view: transfers between accounts
/// preserve the total under m-sequential consistency, with a final
/// m-linearizable audit after quiescence.
#[test]
fn transfers_conserve_money_msc() {
    let accounts: Vec<ObjectId> = (0..4).map(oid).collect();
    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(3)
            .objects(4)
            .consistency(Consistency::MSequential)
            .artificial_delay(DelayModel::Uniform {
                lo: 100,
                hi: 80_000,
            })
            .seed(3)
            .build(),
    );
    dsm.m_assign(
        pid(0),
        &[(oid(0), 50), (oid(1), 50), (oid(2), 50), (oid(3), 50)],
    );

    let mut handles = Vec::new();
    for p in 1..3u32 {
        let dsm = Arc::clone(&dsm);
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..15u32 {
                let from = accounts[(i as usize + p as usize) % 4];
                let to = accounts[(i as usize + 2 * p as usize + 1) % 4];
                if from != to {
                    dsm.transfer(pid(p), from, to, ((i % 7) + 1) as i64);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Snapshots observed by any process must always total 200.
    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads done"));
    for p in 0..3u32 {
        let snap = dsm.snapshot(pid(p), &accounts);
        assert_eq!(snap.iter().sum::<i64>(), 200, "P{p} saw money in flight");
    }
    verified_finish(dsm, Condition::MSequentialConsistency);
}

/// Atomic m-register assignment vs torn single-object writes: with
/// m_assign, a concurrent snapshot never mixes generations. Every snapshot
/// is some prefix-consistent generation (g, g, g).
#[test]
fn m_assign_snapshots_never_tear() {
    let objs = [oid(0), oid(1), oid(2)];
    let dsm = Arc::new(
        DsmBuilder::new()
            .processes(2)
            .objects(3)
            .consistency(Consistency::MLinearizable)
            .artificial_delay(DelayModel::Uniform {
                lo: 100,
                hi: 30_000,
            })
            .build(),
    );
    let writer = {
        let dsm = Arc::clone(&dsm);
        std::thread::spawn(move || {
            for g in 1..=20i64 {
                dsm.m_assign(pid(0), &[(oid(0), g), (oid(1), g), (oid(2), g)]);
            }
        })
    };
    let reader = {
        let dsm = Arc::clone(&dsm);
        std::thread::spawn(move || {
            let mut last = 0i64;
            for _ in 0..30 {
                let snap = dsm.snapshot(pid(1), &objs);
                assert!(
                    snap[0] == snap[1] && snap[1] == snap[2],
                    "torn snapshot: {snap:?}"
                );
                assert!(snap[0] >= last, "m-linearizable reads cannot go back");
                last = snap[0];
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let dsm = Arc::try_unwrap(dsm).unwrap_or_else(|_| panic!("threads done"));
    verified_finish(dsm, Condition::MLinearizability);
}

/// The sum multimethod from the introduction: treating the registers as
/// one aggregate object would serialize everything; here sum spans exactly
/// the registers it needs while disjoint writes proceed concurrently.
#[test]
fn sum_multimethod_is_consistent() {
    let dsm = DsmBuilder::new()
        .processes(2)
        .objects(4)
        .consistency(Consistency::MLinearizable)
        .build();
    dsm.m_assign(pid(0), &[(oid(0), 10), (oid(1), 20)]);
    dsm.m_assign(pid(1), &[(oid(2), 30), (oid(3), 40)]);
    assert_eq!(dsm.sum(pid(0), &[oid(0), oid(1)]), 30);
    assert_eq!(dsm.sum(pid(1), &[oid(2), oid(3)]), 70);
    assert_eq!(dsm.sum(pid(0), &[oid(0), oid(1), oid(2), oid(3)]), 100);
    verified_finish(dsm, Condition::MLinearizability);
}
