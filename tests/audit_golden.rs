//! The committed golden fixture under `tests/fixtures/`: a generated
//! history and the certificate `moc check --certificate` emitted for it,
//! re-validated here by the independent auditor. CI runs the same pair
//! through `moc audit` as a command-line gate.
//!
//! Regenerate with:
//!
//! ```text
//! moc gen --kind serial --processes 3 --ops 3 --objects 3 --seed 5 \
//!     > tests/fixtures/golden_history.txt
//! moc check tests/fixtures/golden_history.txt \
//!     --certificate tests/fixtures/golden_cert.json
//! ```

use moc_core::codec;

const HISTORY: &str = include_str!("fixtures/golden_history.txt");
const CERT: &str = include_str!("fixtures/golden_cert.json");

#[test]
fn golden_certificate_audits_clean() {
    let verdict = moc_audit::audit_texts(HISTORY, CERT).expect("golden certificate is valid");
    assert!(verdict.is_verified());
}

#[test]
fn golden_certificate_binds_to_the_golden_history() {
    let h = codec::from_text(HISTORY).unwrap();
    let fp = format!("{:016x}", codec::fingerprint(&h));
    assert!(
        CERT.contains(&fp),
        "certificate names the history fingerprint"
    );

    // Re-binding the certificate to a zeroed fingerprint must fail.
    let tampered = CERT.replace(&fp, "0000000000000000");
    assert!(moc_audit::audit_texts(HISTORY, &tampered).is_err());
}

#[test]
fn tampered_golden_certificate_is_rejected() {
    // Verdict flip: the witness proof no longer matches the claim.
    let flipped = CERT.replace("\"verdict\":\"admissible\"", "\"verdict\":\"inadmissible\"");
    assert_ne!(flipped, CERT, "fixture carries an admissible verdict");
    assert!(moc_audit::audit_texts(HISTORY, &flipped).is_err());

    // Version bump: unknown schema versions are refused.
    let bumped = CERT.replace("\"version\":1", "\"version\":2");
    assert_ne!(bumped, CERT);
    assert!(moc_audit::audit_texts(HISTORY, &bumped).is_err());
}
