//! The docs/TUTORIAL.md walkthrough, executable — keeps the tutorial from
//! rotting.

use std::sync::Arc;

use moc_core::ids::{ObjectId, ProcessId};
use moc_core::program::{arg, imm, reg, CmpOp, Program, ProgramBuilder};
use moc_dsm::{Consistency, DsmBuilder};

fn escrow_release(escrow: ObjectId, payee: ObjectId, flag: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("escrow_release");
    let fail = b.fresh_label();
    b.read(flag, 0)
        .jump_if(reg(0), CmpOp::Ne, imm(1), fail)
        .read(escrow, 1)
        .jump_if(reg(1), CmpOp::Lt, arg(0), fail)
        .read(payee, 2)
        .sub(1, reg(1), arg(0))
        .add(2, reg(2), arg(0))
        .write(escrow, reg(1))
        .write(payee, reg(2))
        .write(flag, imm(0))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("escrow_release is well-formed"))
}

#[test]
fn tutorial_escrow_walkthrough() {
    let escrow = ObjectId::new(0);
    let payee = ObjectId::new(1);
    let flag = ObjectId::new(2);

    let dsm = DsmBuilder::new()
        .processes(3)
        .objects(3)
        .consistency(Consistency::MLinearizable)
        .build();

    let p0 = ProcessId::new(0);
    dsm.m_assign(p0, &[(escrow, 100), (flag, 1)]);

    let release = escrow_release(escrow, payee, flag);
    let ok = dsm
        .invoke(ProcessId::new(1), Arc::clone(&release), vec![60])
        .outputs[0]
        == 1;
    assert!(ok);
    // The flag was consumed atomically with the funds move.
    let again = dsm.invoke(ProcessId::new(2), release, vec![10]).outputs[0] == 1;
    assert!(!again);
    assert_eq!(dsm.snapshot(p0, &[escrow, payee, flag]), vec![40, 60, 0]);

    let report = dsm.finish();
    assert!(
        report
            .check(moc_checker::Condition::MLinearizability)
            .satisfied
    );
    assert!(report.check_causal().satisfied);
}

#[test]
fn tutorial_escrow_is_update_even_when_it_fails() {
    // The conservative classification from the tutorial's Section 2: a
    // failed release writes nothing, yet the program is an update.
    let p = escrow_release(ObjectId::new(0), ObjectId::new(1), ObjectId::new(2));
    assert!(p.is_potential_update());
    assert_eq!(p.potential_writes().len(), 3);
    assert_eq!(p.arity(), 1);
}
