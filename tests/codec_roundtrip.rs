//! End-to-end round trips through the history text codec: protocol
//! executions survive serialization with their checkability intact.

use moc_checker::conditions::{check, Condition, Strategy};
use moc_core::codec::{from_text, to_text};
use moc_protocol::{run_cluster, ClusterConfig, MlinOverSequencer, MscOverSequencer};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        processes: 3,
        ops_per_process: 6,
        num_objects: 3,
        update_fraction: 0.5,
        ..WorkloadSpec::default()
    }
}

#[test]
fn msc_history_round_trips_with_verdict() {
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec(), &mut rng);
        let report = run_cluster::<MscOverSequencer>(&ClusterConfig::new(3, seed), s);
        let text = to_text(&report.history);
        let parsed = from_text(&text).expect("codec round trip");
        assert_eq!(parsed.records(), report.history.records());

        // The verdicts agree on both sides of the round trip.
        for condition in [
            Condition::MSequentialConsistency,
            Condition::MLinearizability,
        ] {
            let a = check(&report.history, condition, Strategy::Auto)
                .unwrap()
                .satisfied;
            let b = check(&parsed, condition, Strategy::Auto).unwrap().satisfied;
            assert_eq!(a, b, "seed {seed}, {condition}");
        }
    }
}

#[test]
fn mlin_history_round_trips() {
    let mut rng = StdRng::seed_from_u64(9);
    let s = scripts(&spec(), &mut rng);
    let report = run_cluster::<MlinOverSequencer>(&ClusterConfig::new(3, 9), s);
    let text = to_text(&report.history);
    // The text is line-based and stable.
    assert!(text.starts_with("history v1\nobjects 3\n"));
    assert_eq!(text, to_text(&from_text(&text).unwrap()));
}
