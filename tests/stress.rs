//! Larger randomized end-to-end runs, verified with the polynomial
//! Theorem 7 checker (the brute-force search would not scale to these
//! history sizes — which is exactly the paper's point).

use moc_checker::fast::{check_under_constraint, FastOutcome};
use moc_core::constraints::Constraint;
use moc_core::relations::real_time;
use moc_protocol::{run_cluster, ClusterConfig, MlinOverSequencer, MscOverIsis, RunReport};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn big_spec() -> WorkloadSpec {
    WorkloadSpec {
        processes: 8,
        ops_per_process: 30,
        num_objects: 12,
        update_fraction: 0.5,
        max_span: 4,
        hot_fraction: 0.6,
        hot_objects: 3,
        think_ns: 200,
    }
}

fn assert_fast_admissible(report: &RunReport, with_real_time: bool) {
    let mut rel = report.ww_relation();
    if with_real_time {
        rel = rel.union(&real_time(&report.history));
    }
    let outcome = check_under_constraint(&report.history, &rel, Constraint::Ww)
        .expect("protocol histories satisfy the WW-constraint");
    match outcome {
        FastOutcome::Admissible(_) => {}
        FastOutcome::NotAdmissible(bad) => {
            panic!(
                "{}: history of {} ops not admissible: {bad:?}",
                report.protocol,
                report.history.len()
            );
        }
    }
}

#[test]
fn msc_isis_240_operations() {
    let spec = big_spec();
    let mut rng = StdRng::seed_from_u64(1001);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(spec.num_objects, 1001).with_network(
        NetworkConfig::with_delay(DelayModel::Uniform { lo: 50, hi: 50_000 }),
    );
    let report = run_cluster::<MscOverIsis>(&config, s);
    assert_eq!(report.history.len(), spec.total_ops());
    assert_fast_admissible(&report, false);
}

#[test]
fn mlin_sequencer_240_operations() {
    let spec = big_spec();
    let mut rng = StdRng::seed_from_u64(2002);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(spec.num_objects, 2002).with_network(
        NetworkConfig::with_delay(DelayModel::Exponential { mean: 5_000 }),
    );
    let report = run_cluster::<MlinOverSequencer>(&config, s);
    assert_eq!(report.history.len(), spec.total_ops());
    assert_fast_admissible(&report, true);
}

#[test]
fn query_heavy_and_update_heavy_mixes() {
    for (frac, seed) in [(0.1, 7u64), (0.9, 8u64)] {
        let spec = WorkloadSpec {
            update_fraction: frac,
            processes: 6,
            ops_per_process: 20,
            ..big_spec()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ClusterConfig::new(spec.num_objects, seed);
        let report = run_cluster::<MlinOverSequencer>(&config, s);
        assert_fast_admissible(&report, true);
        // The latency split matches the protocol structure: updates pay
        // broadcast latency, queries pay one round trip; both nonzero.
        use moc_core::mop::MOpClass;
        assert!(report.mean_latency(MOpClass::Update).unwrap_or(0.0) > 0.0);
        assert!(report.mean_latency(MOpClass::Query).unwrap_or(0.0) > 0.0);
    }
}
