//! The Section 5 timestamp properties (P 5.x), asserted on protocol
//! executions.
//!
//! The correctness proofs rest on a handful of invariants relating the
//! per-object version counters to the broadcast order and the reads-from
//! relation. The recorded histories carry enough provenance to check the
//! observable ones directly:
//!
//! * versions of each object are established 1, 2, 3, … by successive
//!   update m-operations in the broadcast order (`~ww` monotone per
//!   object, P 5.4/P 5.6 made concrete);
//! * a read of version `v` of `x` is attributed to exactly the m-operation
//!   that established version `v` (D 5.1/D 5.6);
//! * an m-operation that reads `x` and also writes `x` establishes version
//!   `v + 1` (P 5.8); one that only reads leaves the version unchanged
//!   (P 5.7);
//! * replicas converge to identical stores with `ts[x]` equal to the
//!   number of update m-operations that wrote `x`.

use std::collections::HashMap;

use moc_core::ids::{MOpId, ObjectId};
use moc_protocol::{
    run_cluster, ClusterConfig, MlinOverSequencer, MscOverIsis, MscOverSequencer, ReplicaProtocol,
    RunReport,
};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run<R: ReplicaProtocol + 'static>(seed: u64) -> RunReport {
    let spec = WorkloadSpec {
        processes: 4,
        ops_per_process: 8,
        num_objects: 4,
        update_fraction: 0.6,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(spec.num_objects, seed).with_network(
        NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 30_000 }),
    );
    run_cluster::<R>(&config, s)
}

fn assert_version_invariants(report: &RunReport) {
    let h = &report.history;
    // Versions per object advance 1, 2, 3, … along the broadcast order.
    let mut next_version: HashMap<ObjectId, u64> = HashMap::new();
    // (object, version) -> writer establishing it.
    let mut writer_of: HashMap<(ObjectId, u64), MOpId> = HashMap::new();
    for id in &report.update_order {
        let idx = h.idx_of(*id).expect("delivered op recorded");
        let rec = h.record(idx);
        for w in rec.final_writes() {
            let slot = next_version.entry(w.object).or_insert(1);
            assert_eq!(
                w.version, *slot,
                "{}: write to {} out of version order",
                rec.id, w.object
            );
            writer_of.insert((w.object, w.version), rec.id);
            *slot += 1;
        }
    }

    // Reads attribute versions to their establishing writers (D 5.1), and
    // P 5.7/P 5.8 hold per record.
    for rec in h.records() {
        let wobjects = rec.wobjects();
        for r in rec.external_reads() {
            if r.writer.is_initial() {
                assert_eq!(r.version, 0, "{}: initial read has version 0", rec.id);
            } else {
                assert_eq!(
                    writer_of.get(&(r.object, r.version)),
                    Some(&r.writer),
                    "{}: read of {}@v{} misattributed",
                    rec.id,
                    r.object,
                    r.version
                );
            }
            if wobjects.contains(&r.object) {
                // P 5.8: reader overwrites x — its write is version v+1.
                let own = rec
                    .final_writes()
                    .into_iter()
                    .find(|w| w.object == r.object)
                    .expect("writes the object it read");
                assert_eq!(
                    own.version,
                    r.version + 1,
                    "{}: P 5.8 violated on {}",
                    rec.id,
                    r.object
                );
            }
        }
    }

    // Convergence: every replica's ts[x] equals the number of updates that
    // wrote x; stores identical.
    let first = &report.final_stores[0];
    for (i, s) in report.final_stores.iter().enumerate() {
        assert_eq!(s, first, "replica {i} diverged");
    }
    for (obj, next) in &next_version {
        assert_eq!(
            first.ts().get(*obj),
            next - 1,
            "ts[{obj}] disagrees with the number of writes"
        );
    }
}

#[test]
fn msc_sequencer_version_invariants() {
    for seed in 0..6 {
        assert_version_invariants(&run::<MscOverSequencer>(seed));
    }
}

#[test]
fn msc_isis_version_invariants() {
    for seed in 0..6 {
        assert_version_invariants(&run::<MscOverIsis>(seed));
    }
}

#[test]
fn mlin_version_invariants() {
    for seed in 0..6 {
        assert_version_invariants(&run::<MlinOverSequencer>(seed));
    }
}
