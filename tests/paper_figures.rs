//! Reproductions of the paper's worked figures (experiments E1–E3, E7, E9
//! in DESIGN.md).
//!
//! * Figure 1 — an example history and its relations (`~p`, `~rf`, `~t`,
//!   `~x`, conflict, interfere).
//! * Figure 2 — history `H1` under the WW-constraint.
//! * Figure 3 — the sequential but non-legal extension `S1`.
//! * Figure 5 — an execution of the Figure 4 (m-sequential consistency)
//!   protocol, with the per-replica vector timestamps evolving as writes
//!   are delivered.
//! * Figure 7 — an execution of the Figure 6 (m-linearizability) protocol,
//!   with the query round-trip selecting the freshest snapshot.

use std::sync::Arc;

use moc_checker::conditions::{check, check_with_relation, Condition, Strategy};
use moc_core::constraints::{satisfies, Constraint};
use moc_core::history::{HistoryBuilder, MOpIdx};
use moc_core::ids::{ObjectId, ProcessId};
use moc_core::legality::{extended_relation, is_legal, sequence_is_legal};
use moc_core::mop::MOpClass;
use moc_core::program::{imm, reg, ProgramBuilder};
use moc_core::relations::{object_order, process_order, reads_from, real_time, Relation};
use moc_protocol::{
    run_cluster, ClientScript, ClusterConfig, MlinOverSequencer, MscOverSequencer, OpSpec,
};
use moc_sim::NetworkConfig;

fn oid(i: u32) -> ObjectId {
    ObjectId::new(i)
}
fn pid(i: u32) -> ProcessId {
    ProcessId::new(i)
}
fn m(i: usize) -> MOpIdx {
    MOpIdx(i)
}

/// Figure 1: P1 issues α then β; P2 issues η then μ; P3 issues δ.
/// α reads x from η and writes y, z; δ reads y from α and x from η.
///
/// The text asserts: α ~p β (process order), α ~rf δ and η ~rf δ
/// (reads-from), α ~t μ, η ~t β, η ~x β (object order), α conflicts with
/// η, and δ, η, α interfere... more precisely "m-operations δ, η and α
/// interfere" with μ writing x in our encoding.
#[test]
fn figure1_relations() {
    let (x, y, z) = (oid(0), oid(1), oid(2));
    let mut b = HistoryBuilder::new(3);
    // index 0: η = w(x)1 by P2, [0..10]
    let eta = b.mop(pid(2)).at(0, 10).write(x, 1).finish();
    // index 1: α = r(x)1 w(y)2 w(z)3 by P1, [5..25] (overlaps η's tail)
    let alpha = b
        .mop(pid(1))
        .at(5, 25)
        .read_from(x, 1, eta)
        .write(y, 2)
        .write(z, 3)
        .finish();
    // index 2: β = r(x)1 by P1, [30..40]
    b.mop(pid(1)).at(30, 40).read_from(x, 1, eta).finish();
    // index 3: δ = r(y)2 r(x)1 by P3, [30..50]
    b.mop(pid(3))
        .at(30, 50)
        .read_from(y, 2, alpha)
        .read_from(x, 1, eta)
        .finish();
    // index 4: μ = w(x)9 by P2, [55..65]
    b.mop(pid(2)).at(55, 65).write(x, 9).finish();
    let h = b.build().expect("Figure 1 history is well-formed");

    let (eta, alpha, beta, delta, mu) = (m(0), m(1), m(2), m(3), m(4));

    assert_eq!(h.record(alpha).process(), pid(1));
    assert_eq!(
        h.objects(alpha).iter().copied().collect::<Vec<_>>(),
        vec![x, y, z],
        "objects(α) = {{x, y, z}}"
    );

    let po = process_order(&h);
    assert!(po.contains(alpha, beta), "α ~p β");
    assert!(po.contains(eta, mu), "η ~p μ");
    assert!(!po.contains(alpha, delta), "different processes");

    let rf = reads_from(&h);
    assert!(rf.contains(alpha, delta), "α ~rf δ");
    assert!(rf.contains(eta, delta), "η ~rf δ");
    assert!(rf.contains(eta, alpha), "α reads x from η");

    let rt = real_time(&h);
    assert!(rt.contains(alpha, mu), "α ~t μ");
    assert!(rt.contains(eta, beta), "η ~t β");
    assert!(!rt.contains(alpha, beta) || h.record(alpha).responded_at < h.record(beta).invoked_at);

    let ox = object_order(&h);
    assert!(ox.contains(eta, beta), "η ~x β (both touch x)");
    assert!(!ox.contains(eta, alpha), "η and α overlap: no object order");

    // Conflicts and interference as stated in Section 4's walkthrough.
    assert!(h.conflict(alpha, eta), "α conflicts with η");
    assert!(h.interfere(delta, eta, mu), "δ reads x from η; μ writes x");
    assert!(h.interfere(delta, alpha, mu) || !h.rfobjects(delta, Some(alpha)).contains(&x));

    // The full history is m-linearizable (everything reads consistently).
    let lin = check(&h, Condition::MLinearizability, Strategy::Auto).unwrap();
    assert!(lin.satisfied);
}

/// Figures 2 and 3 together: H1 is under WW, legal, admissible; S1 is a
/// sequential extension that is not legal; ~H+ excludes it.
#[test]
fn figure2_and_3_ww_history() {
    let (x, y) = (oid(0), oid(1));
    let mut b = HistoryBuilder::new(2);
    let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
    b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
    b.mop(pid(2)).at(15, 25).write(x, 1).finish();
    b.mop(pid(2)).at(30, 40).write(y, 3).finish();
    let h1 = b.build().expect("H1 is well-formed");

    let (alpha, beta, gamma, delta) = (m(0), m(1), m(2), m(3));
    let mut rel = process_order(&h1).union(&reads_from(&h1));
    rel.add(alpha, gamma);
    rel.add(gamma, delta);
    let closed = rel.transitive_closure();

    // Under the WW-constraint, and legal.
    assert!(satisfies(Constraint::Ww, &h1, &closed));
    assert!(is_legal(&h1, &closed));

    // Figure 3: S1 = α γ δ β is sequential but not legal.
    let s1 = [alpha, gamma, delta, beta];
    let total = Relation::from_sequence(4, &s1);
    assert!(total.is_total_order());
    assert!(!sequence_is_legal(&h1, &s1));

    // D 4.11: β ~rw δ, and every extension of ~H+ is legal (P 4.5).
    let ext = extended_relation(&h1, &rel);
    assert!(ext.contains(beta, delta));
    assert!(ext.is_irreflexive(), "Lemma 4");
    let witness = ext.topological_sort().unwrap();
    assert!(sequence_is_legal(&h1, &witness));

    // Theorem 7: admissible (fast) agrees with admissible (search).
    let fast = check_with_relation(
        &h1,
        Condition::MSequentialConsistency,
        &rel,
        Strategy::Constraint(Constraint::Ww),
    )
    .unwrap();
    assert!(fast.satisfied);
}

/// Figure 5: an execution of the Figure 4 protocol. Two writers and a
/// reader; updates are applied in broadcast order at every replica, version
/// vectors advance once per written object, and the local query reads the
/// replica's current (possibly newest) version.
#[test]
fn figure5_msc_protocol_trace() {
    let x = oid(0);
    let wx = |v: i64| {
        let mut b = ProgramBuilder::new(format!("w{v}"));
        b.write(x, imm(v)).ret(vec![]);
        Arc::new(b.build().unwrap())
    };
    let rx = {
        let mut b = ProgramBuilder::new("rx");
        b.read(x, 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    };

    // FIFO network, fixed 100ns: fully deterministic timeline.
    // P0 writes x=1 at t=10; P1 writes x=4 at t=1000 (after the first
    // write is everywhere); P0 reads x at t=5000.
    let scripts = vec![
        ClientScript::new(vec![
            OpSpec::new(wx(1), vec![]),
            OpSpec::new(Arc::clone(&rx), vec![]),
        ])
        .starting_at(10)
        .with_think_time(4_000),
        ClientScript::new(vec![OpSpec::new(wx(4), vec![])]).starting_at(1_000),
    ];
    let config = ClusterConfig::new(1, 0).with_network(NetworkConfig::fifo(100));
    let report = run_cluster::<MscOverSequencer>(&config, scripts);

    // Broadcast order: w1 then w4.
    let labels: Vec<String> = report
        .update_order
        .iter()
        .map(|id| {
            report
                .history
                .record(report.history.idx_of(*id).unwrap())
                .label
                .clone()
        })
        .collect();
    assert_eq!(labels, vec!["w1", "w4"]);

    // Both replicas converged to version 2 of x, value 4.
    for store in &report.final_stores {
        let v = store.get(x);
        assert_eq!(v.value, 4);
        assert_eq!(v.version, 2);
        assert_eq!(store.ts().as_slice(), &[2]);
    }

    // The query (local, per A3) read version 2 — both updates had arrived.
    let query = report
        .history
        .records()
        .iter()
        .find(|r| r.label == "rx")
        .unwrap();
    assert_eq!(query.outputs, vec![4]);
    assert_eq!(query.ops[0].version, 2);
    assert_eq!(query.treated_as, MOpClass::Query);
    // Local query: zero latency in virtual time.
    assert_eq!(query.invoked_at, query.responded_at);

    // And the whole execution is m-sequentially consistent (Theorem 15).
    let sc = check(
        &report.history,
        Condition::MSequentialConsistency,
        Strategy::Auto,
    )
    .unwrap();
    assert!(sc.satisfied);
}

/// Figure 7: an execution of the Figure 6 protocol. The query fans out to
/// all processes, selects the maximal-timestamp response (A5) and therefore
/// reads the freshest delivered write, giving real-time freshness.
#[test]
fn figure7_mlin_protocol_trace() {
    let (x, y) = (oid(0), oid(1));
    // α = w(x)1 w(y)3 by P0; β = w(x)4 by P1; γ = r(x) query by P2.
    let alpha = {
        let mut b = ProgramBuilder::new("alpha");
        b.write(x, imm(1)).write(y, imm(3)).ret(vec![]);
        Arc::new(b.build().unwrap())
    };
    let beta = {
        let mut b = ProgramBuilder::new("beta");
        b.write(x, imm(4)).ret(vec![]);
        Arc::new(b.build().unwrap())
    };
    let gamma = {
        let mut b = ProgramBuilder::new("gamma");
        b.read(x, 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    };

    let scripts = vec![
        ClientScript::new(vec![OpSpec::new(alpha, vec![])]).starting_at(10),
        ClientScript::new(vec![OpSpec::new(beta, vec![])]).starting_at(2_000),
        ClientScript::new(vec![OpSpec::new(gamma, vec![])]).starting_at(5_000),
    ];
    let config = ClusterConfig::new(2, 0).with_network(NetworkConfig::fifo(100));
    let report = run_cluster::<MlinOverSequencer>(&config, scripts);

    // The query was invoked after β responded, so m-linearizability
    // requires it to see x = 4 (version 2).
    let query = report
        .history
        .records()
        .iter()
        .find(|r| r.label == "gamma")
        .unwrap();
    let beta_rec = report
        .history
        .records()
        .iter()
        .find(|r| r.label == "beta")
        .unwrap();
    assert!(beta_rec.responded_at < query.invoked_at);
    assert_eq!(query.outputs, vec![4]);
    assert_eq!(query.ops[0].version, 2);
    assert_eq!(query.ops[0].writer, beta_rec.id);

    // Message economics of a query: n "query" + n responses.
    let query_msgs: u64 = report
        .replica_metrics
        .iter()
        .map(|m| m.query_msgs_sent)
        .sum();
    assert_eq!(query_msgs, 6, "2n messages for one query round, n = 3");

    // Replica convergence: x at version 2 (value 4), y at version 1.
    for store in &report.final_stores {
        assert_eq!(store.get(x).value, 4);
        assert_eq!(store.get(y).value, 3);
        assert_eq!(store.ts().as_slice(), &[2, 1]);
    }

    // Theorem 20.
    let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
    assert!(lin.satisfied);
}
