//! Theorem 7 (experiment E5): under the OO- or WW-constraint, a history is
//! admissible **iff** it is legal — so the polynomial constraint-based
//! checker and the exponential brute-force search must always agree.
//!
//! We validate agreement on three families: protocol-generated histories
//! (where the broadcast order supplies the WW edges), serial histories
//! (where real time supplies an OO order), and randomized WW-ordered
//! histories with deliberately scrambled read provenance (where legality
//! frequently fails and both checkers must reject).

use moc_checker::admissible::{find_legal_extension, SearchLimits};
use moc_checker::fast::{check_under_constraint, FastOutcome};
use moc_core::constraints::{satisfies, Constraint};
use moc_core::history::History;
use moc_core::ids::MOpId;
use moc_core::op::CompletedOp;
use moc_core::relations::{process_order, reads_from, real_time, Relation};
use moc_protocol::{run_cluster, ClusterConfig, MlinOverIsis, MscOverSequencer};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::histories::{serial_history, HistorySpec};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs both checkers under the WW-constraint and asserts agreement.
/// Returns the (shared) verdict.
fn agree(h: &History, rel: &Relation) -> bool {
    let fast = check_under_constraint(h, rel, Constraint::Ww)
        .expect("relation must satisfy the WW-constraint");
    let (brute, _) = find_legal_extension(h, rel, SearchLimits::default());
    assert_eq!(
        fast.is_admissible(),
        brute.is_admissible(),
        "Theorem 7 violated: fast and brute-force checkers disagree"
    );
    if let FastOutcome::Admissible(witness) = &fast {
        assert!(moc_core::legality::sequence_witnesses_admissibility(
            h, rel, witness
        ));
    }
    fast.is_admissible()
}

#[test]
fn agreement_on_protocol_histories() {
    for seed in 0..10u64 {
        let spec = WorkloadSpec {
            processes: 4,
            ops_per_process: 5,
            num_objects: 4,
            update_fraction: 0.6,
            ..WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ClusterConfig::new(spec.num_objects, seed).with_network(
            NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 20_000 }),
        );
        let report = run_cluster::<MscOverSequencer>(&config, s);
        let rel = report.ww_relation();
        assert!(agree(&report.history, &rel), "protocol history admissible");
    }
}

#[test]
fn agreement_on_serial_histories_under_real_time() {
    // A serial history's real-time order totally orders everything, which
    // subsumes both OO and WW.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = HistorySpec {
            processes: 3,
            ops_per_process: 5,
            num_objects: 3,
            ..HistorySpec::default()
        };
        let h = serial_history(&spec, &mut rng);
        let rel = process_order(&h)
            .union(&reads_from(&h))
            .union(&real_time(&h));
        let closed = rel.transitive_closure();
        assert!(satisfies(Constraint::Ww, &h, &closed));
        assert!(satisfies(Constraint::Oo, &h, &closed));
        assert!(agree(&h, &rel), "serial history admissible");
    }
}

/// Randomized WW-ordered histories with scrambled provenance: take a
/// serial history, impose its serial order on updates as ~ww, but rewire
/// some reads to random writers. Both checkers must agree on every
/// instance, and rejections must occur.
#[test]
fn agreement_on_scrambled_ww_histories() {
    let mut rejected = 0;
    let mut accepted = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = HistorySpec {
            processes: 3,
            ops_per_process: 4,
            num_objects: 3,
            update_fraction: 0.6,
            ..HistorySpec::default()
        };
        let h = serial_history(&spec, &mut rng);

        // Scramble: each external read re-points to a random writer of the
        // same object (or stays put).
        let mut records = h.records().to_vec();
        let writers_of = |obj: moc_core::ids::ObjectId| -> Vec<(MOpId, i64, u64)> {
            h.writers_of(obj)
                .iter()
                .map(|&w| {
                    let rec = h.record(w);
                    let wr = rec
                        .final_writes()
                        .into_iter()
                        .find(|op| op.object == obj)
                        .unwrap();
                    (rec.id, wr.value, wr.version)
                })
                .collect()
        };
        for rec in &mut records {
            let id = rec.id;
            for op in &mut rec.ops {
                if op.is_read() && op.writer != id && rng.gen_bool(0.5) {
                    let cands: Vec<_> = writers_of(op.object)
                        .into_iter()
                        .filter(|(w, _, _)| *w != id)
                        .collect();
                    if !cands.is_empty() {
                        let (w, v, ver) = cands[rng.gen_range(0..cands.len())];
                        *op = CompletedOp::read(op.object, v, w, ver);
                    }
                }
            }
        }
        let scrambled = History::new(h.num_objects(), records).unwrap();

        // WW edges: serial order restricted to updates.
        let mut rel = process_order(&scrambled).union(&reads_from(&scrambled));
        let updates: Vec<_> = scrambled
            .iter()
            .filter(|(_, r)| r.is_update())
            .map(|(i, _)| i)
            .collect();
        for pair in updates.windows(2) {
            rel.add(pair[0], pair[1]);
        }
        // Scrambling can create a cyclic relation (a later update reading
        // from an even-later one); those are trivially inadmissible and
        // outside Theorem 7's scope.
        if rel.transitive_closure().is_irreflexive() {
            if agree(&scrambled, &rel) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "scrambling should produce illegal histories");
    assert!(accepted > 0, "some scrambles stay admissible");
}

#[test]
fn mlin_histories_agree_under_real_time_and_ww() {
    for seed in 0..6u64 {
        let spec = WorkloadSpec {
            processes: 3,
            ops_per_process: 4,
            num_objects: 3,
            update_fraction: 0.5,
            ..WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scripts(&spec, &mut rng);
        let config = ClusterConfig::new(spec.num_objects, seed);
        let report = run_cluster::<MlinOverIsis>(&config, s);
        let rel = report.ww_relation().union(&real_time(&report.history));
        assert!(agree(&report.history, &rel));
    }
}
