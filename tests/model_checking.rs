//! Exhaustive verification of the protocols on small configurations
//! (experiment E6/E8 upgraded from sampled seeds to *all* interleavings).

use std::sync::Arc;

use moc_checker::conditions::Condition;
use moc_core::ids::ObjectId;
use moc_core::program::{imm, reg, ProgramBuilder};
use moc_mc::{explore, ExploreLimits};
use moc_protocol::{AggregateOverSequencer, MscOverIsis, MscOverSequencer, OpSpec};

fn wx(v: i64) -> OpSpec {
    let mut b = ProgramBuilder::new(format!("w{v}"));
    b.write(ObjectId::new(0), imm(v)).ret(vec![]);
    OpSpec::new(Arc::new(b.build().unwrap()), vec![])
}

fn rx() -> OpSpec {
    let mut b = ProgramBuilder::new("rx");
    b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
    OpSpec::new(Arc::new(b.build().unwrap()), vec![])
}

#[test]
fn msc_two_by_two_exhaustive() {
    let result = explore::<MscOverSequencer>(
        1,
        vec![vec![wx(1), rx()], vec![rx(), wx(2)]],
        Condition::MSequentialConsistency,
        ExploreLimits::default(),
    );
    assert!(!result.truncated, "config small enough to finish");
    assert!(result.schedules > 100);
    assert!(
        result.holds(),
        "Theorem 15 violated on {}/{} schedules",
        result.violations.len(),
        result.schedules
    );
}

#[test]
fn msc_over_isis_exhaustive() {
    // ISIS has more messages per broadcast, so keep the config minimal.
    let result = explore::<MscOverIsis>(
        1,
        vec![vec![wx(1)], vec![rx()]],
        Condition::MSequentialConsistency,
        ExploreLimits::default(),
    );
    assert!(!result.truncated);
    assert!(result.schedules > 5);
    assert!(result.holds());
}

#[test]
fn aggregate_exhaustive_linearizability() {
    let result = explore::<AggregateOverSequencer>(
        1,
        vec![vec![wx(1)], vec![rx()]],
        Condition::MLinearizability,
        ExploreLimits::default(),
    );
    assert!(!result.truncated);
    assert!(
        result.holds(),
        "the aggregate baseline is m-linearizable under every interleaving"
    );
}

#[test]
fn msc_counterexamples_are_stale_queries() {
    let result = explore::<MscOverSequencer>(
        1,
        vec![vec![wx(1)], vec![rx()]],
        Condition::MLinearizability,
        ExploreLimits::default(),
    );
    assert!(!result.holds());
    for v in &result.violations {
        // Every counterexample is the reader returning the initial value
        // after the writer responded.
        let reader = v
            .history
            .records()
            .iter()
            .find(|r| r.label == "rx")
            .expect("reader recorded");
        let writer = v
            .history
            .records()
            .iter()
            .find(|r| r.label == "w1")
            .expect("writer recorded");
        assert_eq!(reader.outputs, vec![0], "stale read");
        assert!(
            writer.responded_at < reader.invoked_at,
            "the write responded before the stale query began"
        );
    }
}
