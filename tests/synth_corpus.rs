//! The synthesized boundary corpus under `tests/fixtures/synth/`: every
//! specimen `moc synth --smoke` discovered is pinned here and must keep
//! regenerating bit-for-bit, verifying within its node cap, and auditing
//! cleanly — while a single mutated byte in any certificate must be
//! rejected by the independent auditor. CI runs the same gate as
//! `moc synth --smoke --verify tests/fixtures/synth`.
//!
//! Regenerate after an intentional grammar or hunt change with:
//!
//! ```text
//! moc synth --smoke --out tests/fixtures/synth
//! ```

use std::path::Path;

use moc_core::codec;
use moc_synth::{load_corpus, verify_corpus};
use moc_workload::synth::SynthFamily;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/synth"))
}

/// Golden-corpus regression gate: re-running the pinned hunt reproduces
/// every specimen (same selection, verdict, proof kind, fingerprint,
/// byte-identical history files) with fresh node counts inside the
/// pinned caps.
#[test]
fn corpus_regenerates_without_drift() {
    let problems = verify_corpus(corpus_dir()).expect("corpus manifest loads");
    assert!(
        problems.is_empty(),
        "corpus drift:\n{}",
        problems.join("\n")
    );
}

/// The manifest and the named-family registry are two views of the same
/// hunt: they must agree on names, seeds, categories and replay lines,
/// and the fingerprints must match registry regeneration.
#[test]
fn corpus_matches_the_family_registry() {
    let corpus = load_corpus(corpus_dir()).expect("corpus manifest loads");
    assert_eq!(corpus.entries.len(), SynthFamily::ALL.len());
    for (e, f) in corpus.entries.iter().zip(SynthFamily::ALL) {
        assert_eq!(e.name, f.name);
        assert_eq!(e.seed, f.seed);
        assert_eq!(e.category, f.category.tag());
        assert_eq!(e.replay, f.replay_line());
        assert_eq!(
            e.fingerprint,
            codec::fingerprint(&f.history()),
            "{}: registry regeneration drifted from the manifest",
            f.name
        );
    }
}

/// Differential audit agreement over the whole corpus: every checked-in
/// certificate is accepted against its checked-in history, and becomes
/// unacceptable after mutating a single byte (the fingerprint digit that
/// binds certificate to history).
#[test]
fn every_certificate_audits_and_rejects_one_byte_mutations() {
    let corpus = load_corpus(corpus_dir()).expect("corpus manifest loads");
    assert!(!corpus.entries.is_empty());
    for e in &corpus.entries {
        let hist = std::fs::read_to_string(corpus_dir().join(&e.history_file)).unwrap();
        let cert = std::fs::read_to_string(corpus_dir().join(&e.cert_file)).unwrap();

        moc_audit::audit_texts(&hist, &cert)
            .unwrap_or_else(|err| panic!("{}: genuine certificate rejected: {err}", e.name));

        // Flip one hex digit of the binding fingerprint. The mutated
        // certificate is well-formed JSON but names a different history,
        // so the auditor must refuse it.
        let fp = format!("{:016x}", e.fingerprint);
        assert!(cert.contains(&fp), "{}: cert lacks its fingerprint", e.name);
        let last = fp.as_bytes()[15];
        let flipped_digit = if last == b'0' { b'1' } else { b'0' };
        let mut mutated_fp = fp.clone().into_bytes();
        mutated_fp[15] = flipped_digit;
        let mutated = cert.replace(&fp, std::str::from_utf8(&mutated_fp).unwrap());
        assert_ne!(mutated, cert);
        assert!(
            moc_audit::audit_texts(&hist, &mutated).is_err(),
            "{}: auditor accepted a certificate with a mutated fingerprint",
            e.name
        );

        // Flip the verdict instead: the proof no longer matches the claim.
        let (from, to) = if e.admissible {
            ("\"verdict\":\"admissible\"", "\"verdict\":\"inadmissible\"")
        } else {
            ("\"verdict\":\"inadmissible\"", "\"verdict\":\"admissible\"")
        };
        let flipped = cert.replace(from, to);
        assert_ne!(flipped, cert, "{}: cert carries its pinned verdict", e.name);
        assert!(
            moc_audit::audit_texts(&hist, &flipped).is_err(),
            "{}: auditor accepted a verdict-flipped certificate",
            e.name
        );
    }
}

/// The ISSUE's floor on hunt yield: at least two specimens in each of
/// the legal-but-inadmissible and one-edge categories, at least two node
/// peaks, and at least ten distinct boundary specimens overall.
#[test]
fn corpus_meets_the_discovery_floor() {
    let corpus = load_corpus(corpus_dir()).expect("corpus manifest loads");
    let count = |tag: &str| corpus.entries.iter().filter(|e| e.category == tag).count();
    assert!(corpus.entries.len() >= 10);
    assert!(count("lbi") >= 2, "need >= 2 legal-but-inadmissible");
    assert!(count("edge") >= 2, "need >= 2 one-edge-from-fast-path");
    assert!(count("peak") >= 2, "need >= 2 node peaks");
    let mut seeds: Vec<u64> = corpus.entries.iter().map(|e| e.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), corpus.entries.len(), "seeds are distinct");
}
