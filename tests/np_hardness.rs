//! Experiment E4: the NP-completeness results (Theorems 1 and 2) made
//! operational.
//!
//! We cannot test NP-hardness directly, but we can exhibit its two
//! practical faces:
//!
//! 1. the *witness verifier* stays polynomial — validating a proposed
//!    legal sequential history is cheap at any size (the "in NP" half);
//! 2. the brute-force decision procedure's explored node count grows
//!    sharply on the adversarial concurrent-writers family, while the
//!    Theorem 7 fast path — when a constraint applies — stays flat.

use moc_checker::admissible::{find_legal_extension, SearchLimits};
use moc_checker::conditions::{check, Condition, Strategy};
use moc_checker::serializability::{Action, Schedule};
use moc_core::history::MOpIdx;
use moc_core::ids::ObjectId;
use moc_core::legality::sequence_witnesses_admissibility;
use moc_core::relations::{process_order, reads_from, real_time};
use moc_workload::histories::{concurrent_writers_history, serial_history, HistorySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn witness_validation_is_cheap_at_scale() {
    // A serial history with hundreds of m-operations: find the witness
    // greedily (serial histories schedule front-to-back without
    // backtracking), then validate it with the polynomial verifier.
    let mut rng = StdRng::seed_from_u64(1);
    let spec = HistorySpec {
        processes: 8,
        ops_per_process: 40,
        num_objects: 10,
        ..HistorySpec::default()
    };
    let h = serial_history(&spec, &mut rng);
    assert_eq!(h.len(), 320);
    let rel = process_order(&h)
        .union(&reads_from(&h))
        .union(&real_time(&h));
    let (outcome, stats) = find_legal_extension(&h, &rel, SearchLimits::default());
    let witness = outcome.witness().expect("serial history is admissible");
    assert!(sequence_witnesses_admissibility(&h, &rel, witness));
    // Greedy: the searcher never backtracks on a serial history.
    assert!(
        stats.nodes <= (h.len() as u64) + 1,
        "expected linear node count, got {}",
        stats.nodes
    );
}

#[test]
fn search_cost_grows_on_adversarial_family() {
    // Readers pin writer interleavings; node counts grow with k.
    let mut nodes_at = Vec::new();
    for k in [2usize, 4, 6] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let h = concurrent_writers_history(k, 3, &mut rng);
        let rel = process_order(&h).union(&reads_from(&h));
        let (outcome, stats) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert!(outcome.is_admissible());
        nodes_at.push(stats.nodes);
    }
    assert!(
        nodes_at[2] > nodes_at[0],
        "node count should grow with k: {nodes_at:?}"
    );
}

#[test]
fn refutation_cost_grows_superlinearly_on_torn_instances() {
    // Tear every reader across two writers: maximally constrained and
    // unsatisfiable; the search has to refute all interleavings. Unlike
    // witness *validation* (polynomial, see above), refutation explores
    // a node count that grows super-linearly with the number of writers
    // and dwarfs the greedy linear bound. Aggregated over seeds so no
    // single lucky draw decides the claim.
    let num_objects = 2;
    let mut totals = Vec::new();
    for k in [4usize, 6] {
        let mut total_unsat = 0u64;
        let mut total_len = 0u64;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = concurrent_writers_history(k, num_objects, &mut rng);
            let mut records = h.records().to_vec();
            for (r, rec) in records
                .iter_mut()
                .filter(|r| r.label.starts_with("reader"))
                .enumerate()
            {
                let w0 =
                    moc_core::ids::MOpId::new(moc_core::ids::ProcessId::new((r % k) as u32), 0);
                let w1 = moc_core::ids::MOpId::new(
                    moc_core::ids::ProcessId::new(((r + 1) % k) as u32),
                    0,
                );
                rec.ops[0] =
                    moc_core::op::CompletedOp::read(ObjectId::new(0), (r % k) as i64 + 1, w0, 1);
                rec.ops[1] = moc_core::op::CompletedOp::read(
                    ObjectId::new(1),
                    ((r + 1) % k) as i64 + 1,
                    w1,
                    1,
                );
            }
            let torn = moc_core::history::History::new(num_objects, records).unwrap();
            let rel = process_order(&torn).union(&reads_from(&torn));
            let (outcome, stats) = find_legal_extension(&torn, &rel, SearchLimits::default());
            assert!(!outcome.is_admissible());
            total_unsat += stats.nodes;
            total_len += torn.len() as u64;
        }
        // Refuting is never a single greedy pass: the searcher backtracks
        // well past the linear node budget a witness validation needs.
        assert!(
            total_unsat > 2 * total_len,
            "k={k}: refutation ({total_unsat} nodes) should dwarf the linear bound ({total_len})"
        );
        totals.push(total_unsat);
    }
    // Super-linear growth in k: going from 4 to 6 writers (1.5x the
    // history size) should much more than double the refutation cost.
    assert!(
        totals[1] > 4 * totals[0],
        "refutation cost should grow super-linearly: {totals:?}"
    );
}

/// The Theorem 2 reduction round trip: the schedule-level strict-view
/// question and the history-level m-linearizability question coincide.
#[test]
fn reduction_agrees_with_direct_checking() {
    let e = |i| ObjectId::new(i);
    let cases: Vec<(Schedule, bool)> = vec![
        // Strict-view violating (Figure from checker_tour).
        (
            Schedule::new(
                2,
                3,
                vec![
                    Action::read(2, e(0)),
                    Action::write(0, e(0)),
                    Action::write(1, e(1)),
                    Action::read(2, e(1)),
                ],
            )
            .unwrap(),
            false,
        ),
        // Clean sequential schedule.
        (
            Schedule::new(1, 2, vec![Action::write(0, e(0)), Action::read(1, e(0))]).unwrap(),
            true,
        ),
        // Lost update.
        (
            Schedule::new(
                1,
                2,
                vec![
                    Action::read(0, e(0)),
                    Action::write(1, e(0)),
                    Action::write(0, e(0)),
                ],
            )
            .unwrap(),
            false,
        ),
    ];
    for (s, expected) in cases {
        assert_eq!(
            s.is_strict_view_serializable(SearchLimits::default()),
            Some(expected)
        );
        // Direct check on the constructed history.
        let h = s.to_history();
        let report = check(
            &h,
            Condition::MLinearizability,
            Strategy::BruteForce(SearchLimits::default()),
        )
        .unwrap();
        // The direct condition adds process order — trivial here (one
        // m-operation per process), so the verdicts must agree.
        assert_eq!(report.satisfied, expected);
        // Sanity: history indices round-trip.
        assert!(h.len() >= 2);
        let _ = h.record(MOpIdx(0));
    }
}
